// Package spiffi is a faithful reimplementation, as a discrete-event
// simulation library, of the system described in "The SPIFFI Scalable
// Video-on-Demand System" (Freedman & DeWitt, SIGMOD 1995).
//
// The library simulates a shared-nothing video server — nodes with CPUs,
// buffer pools and disks, fully striped video placement, and a network —
// serving MPEG streams to video terminals with small playout buffers.
// It implements and compares the paper's algorithms:
//
//   - Disk scheduling: elevator, FCFS, round-robin, the group sweeping
//     scheme (GSS), and the paper's deadline-driven real-time scheduler.
//   - Page replacement: global LRU and "love prefetch" (two-chain LRU
//     protecting prefetched pages).
//   - Prefetching: basic FIFO, real-time (deadline-estimated), and
//     delayed (bounded maximum advance prefetch time).
//   - Extras: pause/resume (§8.1) and piggybacked starts (§8.2).
//
// The headline metric is the maximum number of terminals a configuration
// supports with zero glitches (§7.1), found by FindMaxTerminals.
//
// Quick start:
//
//	cfg := spiffi.DefaultConfig(200) // the paper's 16-disk base system
//	m, err := spiffi.Run(cfg)
//	fmt.Println(m.Glitches, m.DiskUtilAvg)
//
// Everything is deterministic given Config.Seed. See DESIGN.md for the
// model inventory and EXPERIMENTS.md for the reproduced paper results.
package spiffi

import (
	"io"

	"spiffi/internal/admission"
	"spiffi/internal/bufferpool"
	"spiffi/internal/cache"
	"spiffi/internal/core"
	"spiffi/internal/dsched"
	"spiffi/internal/prefetch"
	"spiffi/internal/sim"
	"spiffi/internal/stats"
	"spiffi/internal/terminal"
	"spiffi/internal/trace"
	"spiffi/internal/workload"
)

// Config is a complete simulation configuration; zero values are invalid,
// start from DefaultConfig.
type Config = core.Config

// Metrics is the result of one simulation run.
type Metrics = core.Metrics

// SearchOptions controls FindMaxTerminals.
type SearchOptions = core.SearchOptions

// SearchResult is FindMaxTerminals' outcome.
type SearchResult = core.SearchResult

// Simulation is an assembled run (NewSimulation + Run for two-phase use).
type Simulation = core.Simulation

// Runner evaluates independent simulations concurrently on a bounded
// worker pool; every result is bit-identical to sequential execution.
type Runner = core.Runner

// SchedConfig selects and parameterizes a disk scheduling algorithm.
type SchedConfig = dsched.Config

// PrefetchConfig selects and parameterizes a prefetching strategy.
type PrefetchConfig = prefetch.Config

// PauseConfig enables the pause/resume workload (§8.1).
type PauseConfig = terminal.PauseConfig

// VCRConfig enables the rewind/fast-forward workload, optionally with
// the paper's "visual search" skim scheme (§8.1).
type VCRConfig = terminal.VCRConfig

// Interval is a Student-t confidence interval (§7.1 methodology).
type Interval = stats.Interval

// TraceOptions enables the structured event recorder on Config.Trace;
// the resulting snapshot rides Metrics.Trace. See OBSERVABILITY.md.
type TraceOptions = trace.Options

// TraceData is one run's recorded trace snapshot (events, per-subsystem
// latency histograms); render it with ExportTrace.
type TraceData = trace.Data

// AdmissionAnalysis computes the §4 analytical capacity bounds
// (worst-case and expected-case) the paper contrasts simulation against.
type AdmissionAnalysis = admission.Analysis

// CacheConfig enables the per-node prefix cache and stream merging on
// Config.Cache; the zero value disables both. See CACHING.md.
type CacheConfig = cache.Config

// WorkloadConfig drives time-varying traffic scenarios (flash crowds,
// popularity churn, diurnal cycles) on Config.Workload; the zero value
// is inert and reproduces historical behavior bit-for-bit. See
// WORKLOADS.md.
type WorkloadConfig = workload.Config

// WorkloadPhase is one phase of a workload scenario.
type WorkloadPhase = workload.Phase

// Duration and Time re-export the simulation clock types.
type (
	Duration = sim.Duration
	Time     = sim.Time
)

// Time units for configurations.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
	Hour        = sim.Hour
)

// Size units for configurations.
const (
	KB = core.KB
	MB = core.MB
	GB = core.GB
)

// Disk scheduling algorithm kinds (§5.2.2).
const (
	SchedElevator   = dsched.KindElevator
	SchedFCFS       = dsched.KindFCFS
	SchedRoundRobin = dsched.KindRoundRobin
	SchedGSS        = dsched.KindGSS
	SchedRealTime   = dsched.KindRealTime
)

// Page replacement policies (§5.2.1).
const (
	ReplaceGlobalLRU    = bufferpool.PolicyGlobalLRU
	ReplaceLovePrefetch = bufferpool.PolicyLovePrefetch
)

// Prefetching strategies (§5.2.3).
const (
	PrefetchOff      = prefetch.ModeOff
	PrefetchBasic    = prefetch.ModeBasic
	PrefetchRealTime = prefetch.ModeRealTime
	PrefetchDelayed  = prefetch.ModeDelayed
)

// Prefix-cache replacement policies (CACHING.md).
const (
	CacheLRU      = cache.PolicyLRU
	CacheZipfRank = cache.PolicyZipfRank
)

// DefaultConfig returns the paper's base configuration (§7: 4 processors,
// 16 disks, 64 one-hour videos, 4 GB server memory, 512 KB stripes, 2 MB
// terminals, Zipf z=1, elevator scheduling, global LRU) with the given
// number of terminals.
func DefaultConfig(terminals int) Config { return core.DefaultConfig(terminals) }

// NewSimulation validates and assembles a simulation for one run.
func NewSimulation(cfg Config) (*Simulation, error) { return core.NewSimulation(cfg) }

// Run builds and executes one simulation, returning its metrics.
func Run(cfg Config) (Metrics, error) { return core.Run(cfg) }

// NewRunner returns a worker pool evaluating at most `workers`
// simulations concurrently (0 = GOMAXPROCS). Its FindMaxTerminals,
// GlitchCurve, ConfidentMax and RunMany methods parallelize the
// package-level functions of the same names with bit-identical results.
func NewRunner(workers int) *Runner { return core.NewRunner(workers) }

// FindMaxTerminals searches for the largest glitch-free terminal count —
// the paper's primary performance metric (§7.1).
func FindMaxTerminals(cfg Config, opt SearchOptions) (SearchResult, error) {
	return core.FindMaxTerminals(cfg, opt)
}

// GlitchCurve measures glitch counts at each terminal count (Figure 9's
// raw data).
func GlitchCurve(cfg Config, counts []int) (map[int]int64, error) {
	return core.GlitchCurve(cfg, counts)
}

// ConfidentMax repeats independent max-terminal searches across seeds
// until the paper's §7.1 stopping rule holds (confidence `level`,
// relative half-width `relWidth`), returning the interval and per-seed
// maxima.
func ConfidentMax(cfg Config, opt SearchOptions, level, relWidth float64, minSeeds, maxSeeds int) (Interval, []int, error) {
	return core.ConfidentMax(cfg, opt, level, relWidth, minSeeds, maxSeeds)
}

// RealTimeSched is a convenience constructor for the paper's tuned
// real-time scheduler configuration (3 classes, 4-second spacing by
// default in the paper's experiments).
func RealTimeSched(classes int, spacing Duration) SchedConfig {
	return SchedConfig{Kind: dsched.KindRealTime, Classes: classes, Spacing: spacing}
}

// GSSSched is a convenience constructor for group sweeping.
func GSSSched(groups int) SchedConfig {
	return SchedConfig{Kind: dsched.KindGSS, Groups: groups}
}

// ParseWorkloadSpec parses the compact workload scenario grammar
// documented in WORKLOADS.md (e.g. "think=10s; steady:60s;
// premiere:45s load=3 promote=0 share=0.7; recover:* shuffle") into a
// WorkloadConfig, normalized and validated.
func ParseWorkloadSpec(spec string) (WorkloadConfig, error) {
	return workload.ParseSpec(spec)
}

// ExportTrace renders a trace snapshot in the named format: "jsonl"
// (one self-describing JSON object per event), "chrome" (trace-event
// JSON for Perfetto or chrome://tracing), or "summary" (plain-text
// digest). The full schema is documented in OBSERVABILITY.md.
func ExportTrace(w io.Writer, d *TraceData, format string) error {
	return trace.Export(w, d, format)
}
