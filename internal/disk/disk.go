// Package disk models the magnetic disks of the SPIFFI video server.
// The model and every parameter come from Table 1 of the paper, which is
// based on the Seagate ST15150N SCSI-2 drive: an analytic seek curve
// (settle + factor·√distance milliseconds), uniformly distributed
// rotational latency, a fixed media transfer rate, constant-size
// cylinders (the paper's own simplification), and a segmented read-ahead
// cache of 8 contexts × 128 KB that lets exact sequential continuation
// reads skip the mechanical positioning delay.
package disk

import (
	"fmt"
	"math"

	"spiffi/internal/dsched"
	"spiffi/internal/rng"
	"spiffi/internal/sim"
	"spiffi/internal/trace"
)

// Params describes the simulated drive.
type Params struct {
	SeekFactorMs      float64      // seek = settle + factor*sqrt(cylinders) ms (paper: 0.283)
	SettleTime        sim.Duration // head settle time (paper: 0.75 ms)
	RotationTime      sim.Duration // full revolution (paper: 8.333 ms)
	TransferRate      float64      // media rate, bytes/second (paper: 7.4 MB/s)
	CylinderBytes     int64        // constant cylinder capacity (paper: 1.25 MB)
	CacheContexts     int          // read-ahead segments (paper: 8)
	CacheContextBytes int64        // read-ahead per segment (paper: 128 KB)
}

// DefaultParams returns the paper's Table 1 disk parameters.
func DefaultParams() Params {
	return Params{
		SeekFactorMs:      0.283,
		SettleTime:        750 * sim.Microsecond,
		RotationTime:      8333 * sim.Microsecond,
		TransferRate:      7.4 * 1024 * 1024,
		CylinderBytes:     1_250_000,
		CacheContexts:     8,
		CacheContextBytes: 128 * 1024,
	}
}

// SeekTime returns the time to move the head across `distance` cylinders.
// A zero distance needs no mechanical motion.
func (p Params) SeekTime(distance int) sim.Duration {
	if distance <= 0 {
		return 0
	}
	ms := p.SeekFactorMs * math.Sqrt(float64(distance))
	return p.SettleTime + sim.DurationOfSeconds(ms/1000)
}

// TransferTime returns the media transfer time for size bytes.
func (p Params) TransferTime(size int64) sim.Duration {
	return sim.DurationOfSeconds(float64(size) / p.TransferRate)
}

// Cylinder returns the cylinder containing a byte offset.
func (p Params) Cylinder(offset int64) int {
	return int(offset / p.CylinderBytes)
}

// cacheContext tracks one sequential read-ahead stream: the drive expects
// the next read at nextOffset and holds up to `ahead` buffered bytes.
type cacheContext struct {
	nextOffset int64
	ahead      int64
	lastUse    sim.Time
	used       bool
}

// Stats aggregates the measurement-window counters of one disk.
type Stats struct {
	Served       int64
	PrefetchOps  int64
	BusyTime     sim.Duration
	SeekTime     sim.Duration
	RotTime      sim.Duration
	TransferTime sim.Duration
	CacheHits    int64
	QueuePeak    int

	// Degraded-mode counters (fault injection).
	FailStops int64        // fail-stop events applied to this disk
	Abandoned int64        // queued requests drained and failed at fail-stop
	Rejects   int64        // requests rejected because the disk was failed
	DownTime  sim.Duration // time spent failed (completed outages only)

	// RebuildOps counts completed mirror-reconstruction transfers
	// (internal/overload rate-limited rebuild).
	RebuildOps int64
}

// Disk is one simulated drive with its own scheduler and service process.
type Disk struct {
	id     int
	k      *sim.Kernel
	params Params
	sched  dsched.Scheduler
	src    *rng.Source

	onComplete func(*dsched.Request)
	rec        *trace.Recorder // nil unless tracing is enabled

	// geo, when non-nil, replaces the constant-cylinder address and
	// transfer model with zoned-bit-recording geometry (zoned.go).
	geo *Geometry

	headCyl  int
	contexts []cacheContext

	busy        bool
	busyStart   sim.Time
	windowStart sim.Time
	stats       Stats

	idleProc *sim.Proc // service process parked waiting for work
	seq      uint64

	// Fault injection: while now < slowUntil every access is stretched
	// by slowFactor (a degraded drive — recalibration storms, vibration,
	// media retries). Used by failure-injection tests to verify the
	// system glitches under degradation and recovers afterwards.
	slowFactor float64
	slowUntil  sim.Time

	// Fail-stop state: while failed, queued requests have been drained
	// with an error, new submissions are rejected with an error, and the
	// drive sits dark until repairAt (sim.TimeInfinity = never repaired).
	failed    bool
	repairAt  sim.Time
	failStart sim.Time
	failEpoch uint64 // bumped per fail-stop; in-service requests spanning one fail

	// observer, when set, sees every demand dispatch's deadline slack
	// and queue depth (the overload controller's capacity signal).
	observer func(slack sim.Duration, qlen int)
	// repairHook, when set, fires after every completed repair with the
	// outage duration (the mirror rebuilder's trigger).
	repairHook func(downtime sim.Duration)
}

// New creates a disk and starts its service process on k. onComplete is
// invoked in simulation context when a request finishes; it must not
// block (fire an event or put to a mailbox to hand off).
func New(k *sim.Kernel, id int, params Params, sched dsched.Scheduler, src *rng.Source, onComplete func(*dsched.Request)) *Disk {
	d := &Disk{
		id:         id,
		k:          k,
		params:     params,
		sched:      sched,
		src:        src,
		onComplete: onComplete,
		contexts:   make([]cacheContext, params.CacheContexts),
	}
	k.Spawn(fmt.Sprintf("disk-%d", id), d.run)
	return d
}

// NewZoned creates a disk with zoned-bit-recording geometry instead of
// constant cylinders.
func NewZoned(k *sim.Kernel, id int, zp ZonedParams, sched dsched.Scheduler, src *rng.Source, onComplete func(*dsched.Request)) *Disk {
	d := New(k, id, zp.Params, sched, src, onComplete)
	d.geo = zp.NewGeometry()
	return d
}

// cylinderOf resolves a byte offset under the active geometry.
func (d *Disk) cylinderOf(offset int64) int {
	if d.geo != nil {
		return d.geo.Cylinder(offset)
	}
	return d.params.Cylinder(offset)
}

// transferTime resolves the media time for a transfer at an offset.
func (d *Disk) transferTime(offset, size int64) sim.Duration {
	if d.geo != nil {
		return sim.DurationOfSeconds(float64(size) / d.geo.TransferRate(offset))
	}
	return d.params.TransferTime(size)
}

// ID returns the disk's global index.
func (d *Disk) ID() int { return d.id }

// SetTrace attaches a trace recorder (nil is fine: emits become no-ops).
func (d *Disk) SetTrace(rec *trace.Recorder) { d.rec = rec }

// Params returns the drive parameters.
func (d *Disk) Params() Params { return d.params }

// SetObserver wires a dispatch observer: it is called at every demand
// (non-prefetch, finite-deadline) dispatch with the request's
// remaining deadline slack and the queue depth behind it. Must not
// block or schedule.
func (d *Disk) SetObserver(fn func(slack sim.Duration, qlen int)) { d.observer = fn }

// SetRepairHook wires a callback invoked after every completed repair
// with the outage duration just ended.
func (d *Disk) SetRepairHook(fn func(downtime sim.Duration)) { d.repairHook = fn }

// Scheduler exposes the queue discipline (used by tests and by the server
// to tighten deadlines of queued prefetches).
func (d *Disk) Scheduler() dsched.Scheduler { return d.sched }

// QueueLen reports the number of requests waiting (not in service).
func (d *Disk) QueueLen() int { return d.sched.Len() }

// Submit enqueues a request. The request's Cylinder is derived from its
// Offset here so issuers never have to know disk geometry. Submitting to a
// failed disk completes the request immediately with Failed set.
func (d *Disk) Submit(r *dsched.Request) {
	d.seq++
	r.Seq = d.seq
	r.Arrival = d.k.Now()
	r.Cylinder = d.cylinderOf(r.Offset)
	if d.failed {
		r.Failed = true
		d.stats.Rejects++
		d.rec.DiskEnqueue(d.id, r.Terminal, r.Deadline, r.Prefetch, d.sched.Len())
		d.rec.DiskComplete(d.id, r.Terminal, 0, r.Prefetch, true)
		d.onComplete(r)
		return
	}
	d.sched.Add(r)
	l := d.sched.Len()
	if l > d.stats.QueuePeak {
		d.stats.QueuePeak = l
	}
	d.rec.DiskEnqueue(d.id, r.Terminal, r.Deadline, r.Prefetch, l)
	if d.idleProc != nil {
		p := d.idleProc
		d.idleProc = nil
		d.k.Wake(p)
	}
}

// run is the drive's service loop: pick per the scheduling policy,
// position, rotate, transfer, complete, repeat.
func (d *Disk) run(p *sim.Proc) {
	for {
		r := d.sched.Next(d.k.Now(), d.headCyl)
		if r == nil {
			d.idleProc = p
			p.Block()
			continue
		}
		d.busy = true
		d.busyStart = d.k.Now()
		d.rec.DiskDispatch(d.id, r.Terminal, d.k.Now().Sub(r.Arrival), r.Prefetch, d.sched.Len())
		if d.observer != nil && !r.Prefetch && r.Deadline < sim.TimeInfinity {
			d.observer(r.Deadline.Sub(d.k.Now()), d.sched.Len())
		}

		service := d.access(r)
		if d.slowFactor > 1 && d.k.Now() < d.slowUntil {
			service = sim.Duration(float64(service) * d.slowFactor)
		}
		epoch := d.failEpoch
		p.Sleep(service)

		d.busy = false
		d.stats.BusyTime += d.k.Now().Sub(d.busyStart)
		if d.failEpoch != epoch || d.failed {
			// The drive fail-stopped while this request was on the platter:
			// it completes with an error, not data.
			r.Failed = true
			d.stats.Abandoned++
		} else {
			d.stats.Served++
			if r.Rebuild {
				d.stats.RebuildOps++
			} else if r.Prefetch {
				d.stats.PrefetchOps++
			}
		}
		d.rec.DiskComplete(d.id, r.Terminal, service, r.Prefetch, r.Failed)
		d.onComplete(r)
	}
}

// access computes the service time of one request and updates the head
// position and read-ahead cache.
func (d *Disk) access(r *dsched.Request) sim.Duration {
	var seek, rot sim.Duration
	if d.cacheHit(r.Offset) {
		// Sequential continuation: the head is already positioned and
		// read-ahead is streaming; only the transfer is charged.
		d.stats.CacheHits++
	} else {
		seek = d.params.SeekTime(absInt(r.Cylinder - d.headCyl))
		rot = sim.Duration(d.src.Float64() * float64(d.params.RotationTime))
	}
	xfer := d.transferTime(r.Offset, r.Size)

	d.stats.SeekTime += seek
	d.stats.RotTime += rot
	d.stats.TransferTime += xfer

	end := r.Offset + r.Size
	d.headCyl = d.cylinderOf(end - 1)
	d.noteReadAhead(end)
	return seek + rot + xfer
}

// cacheHit reports whether offset continues a tracked sequential stream:
// the read starts inside the window the drive has (or is) reading ahead.
func (d *Disk) cacheHit(offset int64) bool {
	for i := range d.contexts {
		c := &d.contexts[i]
		if c.used && offset >= c.nextOffset && offset <= c.nextOffset+c.ahead {
			c.lastUse = d.k.Now()
			return true
		}
	}
	return false
}

// noteReadAhead records that the drive will read ahead following a
// transfer that ended at `end`, recycling the least recently used context.
func (d *Disk) noteReadAhead(end int64) {
	if len(d.contexts) == 0 {
		return
	}
	// Reuse a context already tracking this stream if one exists.
	victim := 0
	for i := range d.contexts {
		c := &d.contexts[i]
		if c.used && end >= c.nextOffset && end <= c.nextOffset+c.ahead {
			victim = i
			break
		}
		if !c.used {
			victim = i
			break
		}
		if d.contexts[victim].used && c.lastUse < d.contexts[victim].lastUse {
			victim = i
		}
	}
	d.contexts[victim] = cacheContext{
		nextOffset: end,
		ahead:      d.params.CacheContextBytes,
		lastUse:    d.k.Now(),
		used:       true,
	}
}

// InjectFault degrades the drive: accesses starting before the deadline
// take factor times as long. A factor of 1 (or an elapsed deadline)
// restores normal service.
func (d *Disk) InjectFault(factor float64, duration sim.Duration) {
	if factor < 1 {
		panic("disk: fault factor below 1")
	}
	d.slowFactor = factor
	d.slowUntil = d.k.Now().Add(duration)
}

// Fail fail-stops the drive: every queued request is drained and completed
// with Failed set, the in-service request (if any) fails when its transfer
// would have ended, and new submissions are rejected until the repair
// completes. A repair duration <= 0 means the drive never recovers.
// Failing an already-failed drive extends the outage (repairs never move
// earlier, and a permanent failure stays permanent).
func (d *Disk) Fail(repair sim.Duration) {
	now := d.k.Now()
	d.failEpoch++
	d.stats.FailStops++
	if !d.failed {
		d.failed = true
		d.failStart = now
		d.repairAt = 0
	}
	if repair <= 0 {
		d.repairAt = sim.TimeInfinity
	} else if at := now.Add(repair); at > d.repairAt {
		d.repairAt = at
	}
	if d.repairAt < sim.TimeInfinity {
		at := d.repairAt
		d.k.At(at, func() { d.maybeRepair(at) })
	}
	for _, r := range d.sched.Drain() {
		r.Failed = true
		d.stats.Abandoned++
		d.rec.DiskComplete(d.id, r.Terminal, 0, r.Prefetch, true)
		d.onComplete(r)
	}
}

// maybeRepair restores service if this timer still corresponds to the
// latest scheduled repair (a later overlapping failure supersedes it).
func (d *Disk) maybeRepair(at sim.Time) {
	if !d.failed || d.repairAt != at {
		return
	}
	d.failed = false
	d.stats.DownTime += d.k.Now().Sub(d.failStart)
	if d.repairHook != nil {
		d.repairHook(d.k.Now().Sub(d.failStart))
	}
}

// Failed reports whether the drive is currently fail-stopped.
func (d *Disk) Failed() bool { return d.failed }

// ResetStats restarts the measurement window (discarding warm-up).
func (d *Disk) ResetStats() {
	d.stats = Stats{}
	d.windowStart = d.k.Now()
	if d.busy {
		d.busyStart = d.k.Now()
	}
}

// Stats returns a copy of the window counters.
func (d *Disk) Stats() Stats { return d.stats }

// Utilization reports the busy fraction of the measurement window.
func (d *Disk) Utilization() float64 {
	window := d.k.Now().Sub(d.windowStart)
	if window <= 0 {
		return 0
	}
	busy := d.stats.BusyTime
	if d.busy {
		busy += d.k.Now().Sub(d.busyStart)
	}
	return float64(busy) / float64(window)
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
