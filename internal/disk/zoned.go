package disk

// Zoned-bit-recording support. The real Seagate ST15150N has
// variable-capacity cylinders — outer zones pack more sectors per track
// and therefore hold more data and transfer faster at constant RPM. The
// paper simplified this away ("for simplicity and ease of
// implementation a constant cylinder size is assumed", §6.2); this file
// implements the real geometry so the simplification can be ablated
// (experiment "ablation-zoned").

// ZonedParams extends Params with a zone model: TotalCylinders are split
// into NumZones equal-cylinder zones whose per-cylinder capacity (and
// transfer rate) interpolate linearly from OuterRatio at the outermost
// zone to InnerRatio at the innermost, relative to Params.CylinderBytes
// and Params.TransferRate. Ratios should straddle 1 so total capacity is
// preserved (e.g. 1.3 and 0.7).
type ZonedParams struct {
	Params
	NumZones       int
	TotalCylinders int
	OuterRatio     float64
	InnerRatio     float64
}

// DefaultZonedParams returns an 8-zone model of the ST15150N with a
// 1.3/0.7 outer/inner ratio, matching its published ~30% zone spread.
func DefaultZonedParams() ZonedParams {
	return ZonedParams{
		Params:         DefaultParams(),
		NumZones:       8,
		TotalCylinders: 4000, // ~5 GB at a mean of 1.25 MB/cylinder
		OuterRatio:     1.3,
		InnerRatio:     0.7,
	}
}

// Geometry is the resolved zone table used for address translation.
type Geometry struct {
	zoneStartByte []int64 // first byte of each zone
	zoneStartCyl  []int   // first cylinder of each zone
	cylBytes      []int64 // per-zone cylinder capacity
	rate          []float64
	totalBytes    int64
}

// NewGeometry resolves the zone table.
func (zp ZonedParams) NewGeometry() *Geometry {
	if zp.NumZones < 1 || zp.TotalCylinders < zp.NumZones {
		panic("disk: invalid zone shape")
	}
	g := &Geometry{
		zoneStartByte: make([]int64, zp.NumZones),
		zoneStartCyl:  make([]int, zp.NumZones),
		cylBytes:      make([]int64, zp.NumZones),
		rate:          make([]float64, zp.NumZones),
	}
	cylsPerZone := zp.TotalCylinders / zp.NumZones
	var byteCursor int64
	for z := 0; z < zp.NumZones; z++ {
		frac := 0.0
		if zp.NumZones > 1 {
			frac = float64(z) / float64(zp.NumZones-1)
		}
		factor := zp.OuterRatio + (zp.InnerRatio-zp.OuterRatio)*frac
		g.zoneStartByte[z] = byteCursor
		g.zoneStartCyl[z] = z * cylsPerZone
		g.cylBytes[z] = int64(float64(zp.CylinderBytes) * factor)
		g.rate[z] = zp.TransferRate * factor
		byteCursor += g.cylBytes[z] * int64(cylsPerZone)
	}
	g.totalBytes = byteCursor
	return g
}

// TotalBytes returns the drive capacity under this geometry.
func (g *Geometry) TotalBytes() int64 { return g.totalBytes }

// zoneOf returns the zone containing a byte offset. Offsets beyond the
// physical end extend the innermost zone (the simulator permits logical
// overcommit just as the constant-cylinder model does).
func (g *Geometry) zoneOf(offset int64) int {
	for z := len(g.zoneStartByte) - 1; z >= 0; z-- {
		if offset >= g.zoneStartByte[z] {
			return z
		}
	}
	return 0
}

// Cylinder translates a byte offset to its cylinder.
func (g *Geometry) Cylinder(offset int64) int {
	z := g.zoneOf(offset)
	return g.zoneStartCyl[z] + int((offset-g.zoneStartByte[z])/g.cylBytes[z])
}

// TransferRate returns the media rate at a byte offset (bytes/second).
func (g *Geometry) TransferRate(offset int64) float64 {
	return g.rate[g.zoneOf(offset)]
}
