package disk

import (
	"testing"

	"spiffi/internal/dsched"
	"spiffi/internal/rng"
	"spiffi/internal/sim"
)

func TestGeometryZoneTable(t *testing.T) {
	zp := DefaultZonedParams()
	g := zp.NewGeometry()
	// Total capacity stays close to the constant-cylinder capacity
	// (ratios straddle 1 symmetrically).
	uniform := int64(zp.TotalCylinders) * zp.CylinderBytes
	if diff := float64(g.TotalBytes()-uniform) / float64(uniform); diff > 0.01 || diff < -0.01 {
		t.Fatalf("zoned capacity deviates %.2f%% from uniform", diff*100)
	}
	// Outer zone cylinders hold more than inner ones.
	if g.cylBytes[0] <= g.cylBytes[len(g.cylBytes)-1] {
		t.Fatal("outer zone must hold more per cylinder")
	}
	if g.rate[0] <= g.rate[len(g.rate)-1] {
		t.Fatal("outer zone must transfer faster")
	}
}

func TestGeometryCylinderMonotone(t *testing.T) {
	g := DefaultZonedParams().NewGeometry()
	last := -1
	for off := int64(0); off < g.TotalBytes(); off += 10_000_000 {
		c := g.Cylinder(off)
		if c < last {
			t.Fatalf("cylinder decreased at offset %d: %d < %d", off, c, last)
		}
		last = c
	}
	if g.Cylinder(0) != 0 {
		t.Fatal("first byte must be cylinder 0")
	}
}

func TestGeometryZoneBoundaries(t *testing.T) {
	zp := DefaultZonedParams()
	g := zp.NewGeometry()
	for z := 1; z < zp.NumZones; z++ {
		// First byte of a zone lands on that zone's first cylinder.
		if got := g.Cylinder(g.zoneStartByte[z]); got != g.zoneStartCyl[z] {
			t.Fatalf("zone %d start: cylinder %d, want %d", z, got, g.zoneStartCyl[z])
		}
		// Last byte of the previous zone is in the previous zone.
		if got := g.Cylinder(g.zoneStartByte[z] - 1); got >= g.zoneStartCyl[z] {
			t.Fatalf("zone %d boundary leaks backward", z)
		}
	}
}

func TestZonedDiskTransfersFasterOnOuterZone(t *testing.T) {
	zp := DefaultZonedParams()
	zp.CacheContexts = 0 // isolate the transfer path
	run := func(offset int64) sim.Duration {
		k := sim.NewKernel()
		defer k.Close()
		var done []*dsched.Request
		d := NewZoned(k, 0, zp, dsched.NewFCFS(), rng.New(7), func(r *dsched.Request) {
			done = append(done, r)
		})
		k.At(0, func() {
			// Position the head first so seek is identical (zero).
			d.headCyl = d.cylinderOf(offset)
			d.Submit(&dsched.Request{Offset: offset, Size: 1024 * 1024})
		})
		if err := k.Run(sim.Time(2 * sim.Second)); err != nil {
			t.Fatal(err)
		}
		return d.Stats().TransferTime
	}
	outer := run(0)
	inner := run(zp.NewGeometry().TotalBytes() - 2*1024*1024)
	ratio := float64(inner) / float64(outer)
	want := zp.OuterRatio / zp.InnerRatio // ~1.86
	if ratio < want*0.95 || ratio > want*1.05 {
		t.Fatalf("inner/outer transfer ratio = %v, want ~%v", ratio, want)
	}
}

func TestZonedShapeValidation(t *testing.T) {
	zp := DefaultZonedParams()
	zp.NumZones = 0
	defer func() {
		if recover() == nil {
			t.Fatal("invalid zone shape must panic")
		}
	}()
	zp.NewGeometry()
}
