package disk

import (
	"math"
	"testing"

	"spiffi/internal/dsched"
	"spiffi/internal/rng"
	"spiffi/internal/sim"
)

func TestSeekTimeFormula(t *testing.T) {
	p := DefaultParams()
	if p.SeekTime(0) != 0 {
		t.Fatal("zero distance must take zero time")
	}
	// settle 0.75ms + 0.283*sqrt(100) = 0.75 + 2.83 = 3.58 ms
	got := p.SeekTime(100).Seconds() * 1000
	if math.Abs(got-3.58) > 0.01 {
		t.Fatalf("seek(100) = %v ms, want 3.58", got)
	}
	if p.SeekTime(400) <= p.SeekTime(100) {
		t.Fatal("seek time must grow with distance")
	}
	// Sub-linear growth: 4x distance < 4x seek.
	r := float64(p.SeekTime(400)) / float64(p.SeekTime(100))
	if r >= 4 {
		t.Fatalf("seek growth ratio %v, want sub-linear", r)
	}
}

func TestTransferTime(t *testing.T) {
	p := DefaultParams()
	// 7.4 MB at 7.4 MB/s = 1 second.
	got := p.TransferTime(int64(p.TransferRate))
	if math.Abs(got.Seconds()-1.0) > 1e-6 {
		t.Fatalf("transfer = %v, want 1s", got)
	}
	// 512 KB ~ 69ms + positioning dominates the paper's service times.
	ms := p.TransferTime(512*1024).Seconds() * 1000
	if math.Abs(ms-67.6) > 1.0 {
		t.Fatalf("512KB transfer = %vms, want ~67.6", ms)
	}
}

func TestCylinderMapping(t *testing.T) {
	p := DefaultParams()
	if p.Cylinder(0) != 0 {
		t.Fatal("offset 0")
	}
	if p.Cylinder(1_249_999) != 0 {
		t.Fatal("end of cylinder 0")
	}
	if p.Cylinder(1_250_000) != 1 {
		t.Fatal("start of cylinder 1")
	}
}

func newTestDisk(k *sim.Kernel, sched dsched.Scheduler, done *[]*dsched.Request) *Disk {
	return New(k, 0, DefaultParams(), sched, rng.New(42).Derive("disk"), func(r *dsched.Request) {
		*done = append(*done, r)
	})
}

func TestDiskServicesSubmittedRequest(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	var done []*dsched.Request
	d := newTestDisk(k, dsched.NewFCFS(), &done)
	k.At(0, func() {
		d.Submit(&dsched.Request{Offset: 10 * 1_250_000, Size: 512 * 1024})
	})
	if err := k.Run(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 {
		t.Fatalf("completed %d requests, want 1", len(done))
	}
	if d.Stats().Served != 1 {
		t.Fatal("stats.Served")
	}
	// Service time must include seek + some rotation + transfer.
	minT := DefaultParams().SeekTime(10) + DefaultParams().TransferTime(512*1024)
	maxT := minT + DefaultParams().RotationTime
	if d.Stats().BusyTime < minT || d.Stats().BusyTime > maxT {
		t.Fatalf("busy time %v outside [%v, %v]", d.Stats().BusyTime, minT, maxT)
	}
}

func TestDiskWakesFromIdle(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	var done []*dsched.Request
	d := newTestDisk(k, dsched.NewFCFS(), &done)
	// Let the disk go idle first, then submit.
	k.At(sim.Time(sim.Second), func() {
		d.Submit(&dsched.Request{Offset: 0, Size: 1024})
	})
	if err := k.Run(sim.Time(2 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 {
		t.Fatal("request after idle was not serviced")
	}
}

func TestDiskServesInSchedulerOrder(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	var done []*dsched.Request
	d := newTestDisk(k, dsched.NewElevator(), &done)
	cyl := DefaultParams().CylinderBytes
	k.At(0, func() {
		// Head at 0: elevator should go 5, 40, 80 regardless of order.
		d.Submit(&dsched.Request{Offset: 80 * cyl, Size: 1024})
		d.Submit(&dsched.Request{Offset: 5 * cyl, Size: 1024})
		d.Submit(&dsched.Request{Offset: 40 * cyl, Size: 1024})
	})
	if err := k.Run(sim.Time(5 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if len(done) != 3 {
		t.Fatalf("completed %d", len(done))
	}
	if done[0].Cylinder != 5 || done[1].Cylinder != 40 || done[2].Cylinder != 80 {
		t.Fatalf("service order = %d,%d,%d want 5,40,80",
			done[0].Cylinder, done[1].Cylinder, done[2].Cylinder)
	}
}

func TestSequentialReadHitsCache(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	var done []*dsched.Request
	d := newTestDisk(k, dsched.NewFCFS(), &done)
	k.At(0, func() {
		d.Submit(&dsched.Request{Offset: 0, Size: 64 * 1024})
		d.Submit(&dsched.Request{Offset: 64 * 1024, Size: 64 * 1024}) // exact continuation
	})
	if err := k.Run(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().CacheHits; got != 1 {
		t.Fatalf("cache hits = %d, want 1", got)
	}
}

func TestRandomReadMissesCache(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	var done []*dsched.Request
	d := newTestDisk(k, dsched.NewFCFS(), &done)
	k.At(0, func() {
		d.Submit(&dsched.Request{Offset: 0, Size: 64 * 1024})
		d.Submit(&dsched.Request{Offset: 500 * 1_250_000, Size: 64 * 1024})
	})
	if err := k.Run(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().CacheHits; got != 0 {
		t.Fatalf("cache hits = %d, want 0", got)
	}
}

func TestCacheEvictsLRUContext(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	var done []*dsched.Request
	d := newTestDisk(k, dsched.NewFCFS(), &done)
	// Touch 9 distinct streams (more than 8 contexts), then return to the
	// first: its context must have been evicted.
	k.At(0, func() {
		for s := 0; s < 9; s++ {
			d.Submit(&dsched.Request{Offset: int64(s) * 100_000_000, Size: 64 * 1024})
		}
		// Continuation of stream 0 — would hit had it not been evicted.
		d.Submit(&dsched.Request{Offset: 64 * 1024, Size: 64 * 1024})
	})
	if err := k.Run(sim.Time(10 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().CacheHits; got != 0 {
		t.Fatalf("cache hits = %d, want 0 (context evicted)", got)
	}
}

func TestUtilizationAndReset(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	var done []*dsched.Request
	d := newTestDisk(k, dsched.NewFCFS(), &done)
	k.At(0, func() {
		d.Submit(&dsched.Request{Offset: 0, Size: 740 * 1024}) // ~100ms transfer
	})
	if err := k.Run(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	u := d.Utilization()
	if u < 0.08 || u > 0.15 {
		t.Fatalf("utilization = %v, want ~0.1", u)
	}
	d.ResetStats()
	if err := k.Run(sim.Time(2 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if got := d.Utilization(); got != 0 {
		t.Fatalf("post-reset idle utilization = %v, want 0", got)
	}
	if d.Stats().Served != 0 {
		t.Fatal("reset must clear served count")
	}
}

func TestDeterministicService(t *testing.T) {
	run := func() sim.Duration {
		k := sim.NewKernel()
		defer k.Close()
		var done []*dsched.Request
		d := newTestDisk(k, dsched.NewElevator(), &done)
		k.At(0, func() {
			for i := 0; i < 20; i++ {
				d.Submit(&dsched.Request{Offset: int64(i*37%19) * 1_250_000 * 10, Size: 256 * 1024})
			}
		})
		if err := k.Run(sim.Time(30 * sim.Second)); err != nil {
			t.Fatal(err)
		}
		return d.Stats().BusyTime
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("runs differ: %v vs %v", a, b)
	}
}

func BenchmarkDiskService(b *testing.B) {
	k := sim.NewKernel()
	defer k.Close()
	served := 0
	d := New(k, 0, DefaultParams(), dsched.NewElevator(), rng.New(1), func(r *dsched.Request) {
		served++
	})
	k.At(0, func() {
		for i := 0; i < b.N; i++ {
			d.Submit(&dsched.Request{Offset: int64(i%4000) * 1_250_000, Size: 512 * 1024})
		}
	})
	b.ResetTimer()
	if err := k.RunAll(); err != nil {
		b.Fatal(err)
	}
}

func TestFaultInjectionSlowsService(t *testing.T) {
	run := func(inject bool) sim.Duration {
		k := sim.NewKernel()
		defer k.Close()
		var done []*dsched.Request
		d := newTestDisk(k, dsched.NewFCFS(), &done)
		if inject {
			d.InjectFault(10, sim.Duration(10*sim.Second))
		}
		k.At(0, func() {
			d.Submit(&dsched.Request{Offset: 0, Size: 512 * 1024})
		})
		if err := k.Run(sim.Time(20 * sim.Second)); err != nil {
			t.Fatal(err)
		}
		return d.Stats().BusyTime
	}
	normal, degraded := run(false), run(true)
	ratio := float64(degraded) / float64(normal)
	if ratio < 9.9 || ratio > 10.1 {
		t.Fatalf("fault slowdown ratio = %v, want 10", ratio)
	}
}

func TestFaultExpires(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	var done []*dsched.Request
	d := newTestDisk(k, dsched.NewFCFS(), &done)
	d.InjectFault(10, sim.Duration(sim.Second))
	// Submit after the fault window has elapsed.
	k.At(sim.Time(2*sim.Second), func() {
		d.Submit(&dsched.Request{Offset: 0, Size: 512 * 1024})
	})
	if err := k.Run(sim.Time(10 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	// Normal 512KB access takes well under 200 ms.
	if d.Stats().BusyTime > sim.Duration(200*sim.Millisecond) {
		t.Fatalf("fault did not expire: busy=%v", d.Stats().BusyTime)
	}
}
