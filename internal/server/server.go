// Package server implements a SPIFFI video-server node (§5.2): a CPU,
// a slice of the server's memory managed as a buffer pool, a set of
// disks, and the request-handling logic. SPIFFI is decentralized —
// terminals address the owning node directly — so a node only ever
// touches its own disks and its own buffer pool.
//
// Demand flow: receive (CPU cost) → buffer pool acquire → on miss,
// start-I/O (CPU cost) and a scheduled disk read → reply (CPU send cost,
// wire delay). Every demand reference also enqueues a prefetch for the
// video's next stripe block on the same disk (§5.2.3).
package server

import (
	"fmt"

	"spiffi/internal/bufferpool"
	"spiffi/internal/cache"
	"spiffi/internal/cpu"
	"spiffi/internal/disk"
	"spiffi/internal/dsched"
	"spiffi/internal/layout"
	"spiffi/internal/network"
	"spiffi/internal/prefetch"
	"spiffi/internal/proto"
	"spiffi/internal/rng"
	"spiffi/internal/sim"
	"spiffi/internal/trace"
)

// Config carries per-node configuration.
type Config struct {
	PoolPages   int
	Replacement bufferpool.PolicyKind
	Sched       dsched.Config
	Prefetch    prefetch.Config
	MIPS        float64
	CPUCosts    cpu.Costs
	DiskParams  disk.Params

	// ZonedDisks, when non-nil, replaces constant-cylinder drives with
	// zoned-bit-recording geometry (ablation of the paper's §6.2
	// simplification).
	ZonedDisks *disk.ZonedParams
}

// Stats aggregates a node's measurement-window counters.
type Stats struct {
	Requests    int64 // demand block requests handled
	Prefetches  int64 // prefetch disk reads issued
	DeadlineUps int64 // queued prefetches tightened by a demand arrival

	// Degraded-mode counters (fault injection).
	Nacks   int64 // NACK replies for reads on fail-stopped disks
	Dropped int64 // requests+replies discarded while the node was down
	Crashes int64 // crash events applied to this node

	// Silent-drop breakdown of Dropped: a crashed node is fail-stop
	// silent, so without these a permanent crash is indistinguishable
	// from network loss in the summary output.
	DroppedReqs    int64 // incoming requests dropped on the floor
	DroppedReplies int64 // outbound replies suppressed

	// StaleNacks counts NACKs for block copies awaiting mirror rebuild
	// on a repaired disk (a subset of Nacks).
	StaleNacks int64
}

// Node is one video-server node.
type Node struct {
	id    int
	k     *sim.Kernel
	cfg   Config
	cpu   *cpu.CPU
	pool  *bufferpool.Pool
	disks []*disk.Disk
	net   *network.Network
	place *layout.Placement

	queues []prefetch.Queue // one per local disk (nil when prefetch off)

	// inflight tracks queued-or-in-service disk reads by page, so a
	// demand arrival can tighten the deadline of a pending prefetch
	// (real-time prefetching, §5.2.3).
	inflight map[bufferpool.PageID]*dsched.Request

	// stripePlayTime estimates how long one stripe block plays, for the
	// prefetch deadline estimate.
	stripePlayTime sim.Duration

	// Crash state: while down the node silently drops incoming requests
	// and suppresses outgoing replies — terminals discover the outage only
	// through timeouts, exactly like a real fail-stop machine. Handlers
	// already in flight keep running internally but produce no output.
	down      bool
	restartAt sim.Time
	downSince sim.Time

	// restartHook, when set, fires as the node comes back up with the
	// outage duration (wired by the assembly to the health tracker and
	// the overload controller's rejoin warm-up).
	restartHook func(downtime sim.Duration)

	rec *trace.Recorder // nil unless tracing is enabled

	// cache, when set, is the node's prefix cache (internal/cache):
	// primary demand requests check it before the buffer pool and are
	// served from cache memory on a hit; fetched prefix blocks are
	// inserted on the way out. Nil = caching tier disabled.
	cache *cache.Cache

	// stale, when set, marks block copies awaiting mirror rebuild on a
	// repaired disk: demand reads NACK (unless buffered) and prefetches
	// skip them until the rebuilder re-copies the data.
	stale func(video, block, copy int) bool

	stats Stats
}

// diskDone is the completion context attached to disk requests.
type diskDone struct {
	node *Node
	id   bufferpool.PageID
	done *sim.Event
}

// New builds a node with its CPU, buffer pool, disks and prefetch
// workers. net delivers replies; place resolves addresses; diskSrcs
// supplies one random stream per local disk (rotational latency draws);
// stripePlayTime is the playback duration of one full stripe block.
func New(
	k *sim.Kernel,
	id int,
	cfg Config,
	net *network.Network,
	place *layout.Placement,
	diskSrcs []*rng.Source,
	stripePlayTime sim.Duration,
) *Node {
	n := &Node{
		id:             id,
		k:              k,
		cfg:            cfg,
		cpu:            cpu.New(k, id, cfg.MIPS, cfg.CPUCosts),
		pool:           bufferpool.New(k, cfg.PoolPages, cfg.Replacement.New()),
		net:            net,
		place:          place,
		inflight:       make(map[bufferpool.PageID]*dsched.Request),
		stripePlayTime: stripePlayTime,
	}
	nd := place.DisksPerNode()
	n.disks = make([]*disk.Disk, nd)
	for i := 0; i < nd; i++ {
		global := id*nd + i
		if cfg.ZonedDisks != nil {
			n.disks[i] = disk.NewZoned(k, global, *cfg.ZonedDisks, cfg.Sched.New(),
				diskSrcs[i], n.onDiskComplete)
		} else {
			n.disks[i] = disk.New(k, global, cfg.DiskParams, cfg.Sched.New(),
				diskSrcs[i], n.onDiskComplete)
		}
	}
	if cfg.Prefetch.Mode != prefetch.ModeOff {
		n.queues = make([]prefetch.Queue, nd)
		for i := 0; i < nd; i++ {
			n.queues[i] = cfg.Prefetch.NewQueue(k)
			for w := 0; w < cfg.Prefetch.WorkersPerDisk; w++ {
				di := i
				k.Spawn(fmt.Sprintf("node-%d-disk-%d-prefetch-%d", id, i, w), func(p *sim.Proc) {
					n.prefetchWorker(p, di)
				})
			}
		}
	}
	return n
}

// ID returns the node index.
func (n *Node) ID() int { return n.id }

// CPU exposes the node CPU (utilization reporting).
func (n *Node) CPU() *cpu.CPU { return n.cpu }

// Pool exposes the node's buffer pool (statistics).
func (n *Node) Pool() *bufferpool.Pool { return n.pool }

// Disks exposes the node's disks (statistics).
func (n *Node) Disks() []*disk.Disk { return n.disks }

// Stats returns a copy of the node counters.
func (n *Node) Stats() Stats { return n.stats }

// SetTrace attaches a trace recorder (nil is fine: emits become
// no-ops).
func (n *Node) SetTrace(rec *trace.Recorder) { n.rec = rec }

// SetRestartHook wires a callback fired when a crashed node comes back
// up, with the outage duration (nil = none).
func (n *Node) SetRestartHook(fn func(downtime sim.Duration)) { n.restartHook = fn }

// SetCache attaches the node's prefix cache (nil = tier disabled). The
// cache's counters are lifetime, so ResetStats leaves it alone.
func (n *Node) SetCache(c *cache.Cache) { n.cache = c }

// ResetStats restarts the measurement window on the node and everything
// it owns.
func (n *Node) ResetStats() {
	n.stats = Stats{}
	n.cpu.ResetStats()
	n.pool.ResetStats()
	for _, d := range n.disks {
		d.ResetStats()
	}
}

// DeliverRequest accepts a block request off the network (kernel
// context) and spawns a handler process for it. A crashed node drops the
// request on the floor — the terminal's timeout is the only signal.
func (n *Node) DeliverRequest(req *proto.BlockRequest) {
	if n.down {
		n.stats.Dropped++
		n.stats.DroppedReqs++
		n.rec.NodeDrop(req.Terminal, n.id, false, n.stats.Dropped)
		return
	}
	n.k.Spawn(fmt.Sprintf("node-%d-handler", n.id), func(p *sim.Proc) {
		n.handle(p, req)
	})
}

// handle services one demand request.
func (n *Node) handle(p *sim.Proc, req *proto.BlockRequest) {
	n.cpu.Receive(p)
	n.stats.Requests++
	id := bufferpool.PageID{Video: req.Video, Block: req.Block}
	addr := n.place.LocateCopy(req.Video, req.Block, req.Copy)
	if addr.Node != n.id {
		panic("server: misrouted block request")
	}
	if n.cache != nil && req.Copy == 0 && n.cache.Lookup(req.Video, req.Block) {
		// Prefix-cache hit: served straight from cache memory — no pool
		// frame, no disk I/O, and no prefetch trigger (the pool's
		// prefetch chain starts when the stream reaches uncached blocks).
		// Like buffered data, cached data is served even off a dead disk.
		n.cpu.Send(p)
		n.reply(req, req.Size+proto.ReplyHeaderBytes)
		return
	}
	if n.disks[addr.Disk].Failed() && !n.pool.Contains(id) {
		// The copy's disk is dead and the data is not buffered: NACK
		// immediately so the terminal can fail over without waiting for
		// a timeout. (Buffered data is still served off a dead disk.)
		n.nack(p, req)
		return
	}
	if n.stale != nil && !n.pool.Contains(id) && n.stale(req.Video, req.Block, req.Copy) {
		// The copy's disk repaired but this block has not been rebuilt
		// from its mirror yet: its on-disk data is garbage. NACK so the
		// terminal fails over to the healthy copy.
		n.stats.StaleNacks++
		n.nack(p, req)
		return
	}

	pg, out := n.pool.Acquire(p, id, req.Terminal, false)
	ok := true
	switch out {
	case bufferpool.MustFetch:
		ok = n.readBlock(p, pg, addr, req.Deadline, req.Terminal, false)
	case bufferpool.InFlight:
		// A prefetch (or another terminal's fetch) is already on its
		// way; tighten its queued deadline to the real one (§5.2.3).
		if dr, found := n.inflight[id]; found && req.Deadline < dr.Deadline {
			dr.Deadline = req.Deadline
			n.stats.DeadlineUps++
		}
		pg.Ready.Wait(p)
		ok = pg.Valid() // false: the fetch we piggybacked on failed
	case bufferpool.Hit:
		// Data already buffered.
	}
	if !ok {
		n.pool.Unpin(pg) // no-op on the defunct page; kept for symmetry
		n.nack(p, req)
		return
	}

	// Every real reference triggers a prefetch of the video's next
	// stripe block on this same disk (§5.2.3). Replica reads don't: the
	// prefetch chain follows the primary placement.
	if req.Copy == 0 {
		n.triggerPrefetch(req, addr)
	}

	n.cpu.Send(p)
	n.reply(req, req.Size+proto.ReplyHeaderBytes)
	if n.cache != nil && req.Copy == 0 {
		// Fetch-through: prefix blocks enter the cache as they are
		// served, so the next viewer of this video starts from memory.
		n.cache.Insert(req.Video, req.Block, req.Size)
	}
	n.pool.Unpin(pg)
}

// nack answers a request whose data cannot be read (dead disk) with a
// header-only negative acknowledgement.
func (n *Node) nack(p *sim.Proc, req *proto.BlockRequest) {
	n.stats.Nacks++
	req.Status = proto.StatusNackDiskFailed
	n.cpu.Send(p)
	n.reply(req, proto.NackBytes)
}

// reply ships a response unless the node is down (a crashed machine sends
// nothing; in-flight work evaporates).
func (n *Node) reply(req *proto.BlockRequest, bytes int64) {
	if n.down {
		n.stats.Dropped++
		n.stats.DroppedReplies++
		n.rec.NodeDrop(req.Terminal, n.id, true, n.stats.Dropped)
		return
	}
	n.net.Send(bytes, func() { req.Deliver(req) })
}

// readBlock performs a disk read for an acquired MustFetch page and marks
// it valid, or — when the disk fail-stops before delivering — aborts the
// fetch and reports false. Caller keeps the pin either way.
func (n *Node) readBlock(p *sim.Proc, pg *bufferpool.Page, addr layout.Address, deadline sim.Time, term int, isPrefetch bool) bool {
	n.cpu.StartIO(p)
	done := sim.NewEvent(n.k)
	dr := &dsched.Request{
		Offset:   addr.Offset,
		Size:     addr.Size,
		Deadline: deadline,
		Terminal: term,
		Prefetch: isPrefetch,
		Data:     &diskDone{node: n, id: pg.ID, done: done},
	}
	n.inflight[pg.ID] = dr
	n.disks[addr.Disk].Submit(dr)
	done.Wait(p)
	if dr.Failed {
		n.pool.FetchFailed(pg)
		return false
	}
	n.pool.FetchComplete(pg)
	return true
}

// Crash fail-stops the whole node: every local disk fails (abandoning its
// queue), incoming requests are dropped, and replies are suppressed until
// the restart completes. A restart duration <= 0 means the node never
// comes back. Crashing a down node extends the outage.
func (n *Node) Crash(restart sim.Duration) {
	now := n.k.Now()
	n.stats.Crashes++
	if !n.down {
		n.down = true
		n.restartAt = 0
		n.downSince = now
	}
	if restart <= 0 {
		n.restartAt = sim.TimeInfinity
	} else if at := now.Add(restart); at > n.restartAt {
		n.restartAt = at
	}
	// Local disks fail-stop with the node and recover with it; their
	// repair events are scheduled before the node's restart event, so at
	// the restart instant the disks are already serviceable.
	for _, d := range n.disks {
		d.Fail(restart)
	}
	if n.restartAt < sim.TimeInfinity {
		at := n.restartAt
		n.k.At(at, func() { n.maybeRestart(at) })
	}
}

// maybeRestart brings the node back if this timer is still the latest
// scheduled restart (a later overlapping crash supersedes it).
func (n *Node) maybeRestart(at sim.Time) {
	if !n.down || n.restartAt != at {
		return
	}
	n.down = false
	if n.restartHook != nil {
		n.restartHook(at.Sub(n.downSince))
	}
}

// Down reports whether the node is currently crashed.
func (n *Node) Down() bool { return n.down }

// SetStaleCheck wires the mirror rebuilder's staleness predicate
// (nil = no staleness modeling).
func (n *Node) SetStaleCheck(fn func(video, block, copy int) bool) { n.stale = fn }

// RebuildIO performs one background mirror-reconstruction transfer on
// a local disk through the non-real-time queue class (infinite
// deadline, prefetch priority) and reports success. It blocks the
// calling proc for the disk service time; a failed or crashed disk
// fails the transfer immediately.
func (n *Node) RebuildIO(p *sim.Proc, diskLocal int, offset, size int64) bool {
	done := sim.NewEvent(n.k)
	dr := &dsched.Request{
		Offset:   offset,
		Size:     size,
		Deadline: sim.TimeInfinity,
		Terminal: -1,
		Prefetch: true,
		Rebuild:  true,
		// The sentinel page id never collides with inflight demand
		// fetches, so onDiskComplete just fires the event.
		Data: &diskDone{node: n, id: bufferpool.PageID{Video: -1, Block: -1}, done: done},
	}
	n.disks[diskLocal].Submit(dr)
	done.Wait(p)
	return !dr.Failed
}

// onDiskComplete runs in simulation context when a disk read finishes.
func (n *Node) onDiskComplete(r *dsched.Request) {
	ctx := r.Data.(*diskDone)
	if n.inflight[ctx.id] == r {
		delete(n.inflight, ctx.id)
	}
	ctx.done.Fire()
}

// triggerPrefetch enqueues a prefetch for the next block of req's video
// on the same disk, with an estimated deadline (§5.2.3): the real
// request's deadline plus the playback time of the intervening stripe
// blocks (one per disk in the stripe set).
func (n *Node) triggerPrefetch(req *proto.BlockRequest, addr layout.Address) {
	if n.queues == nil {
		return
	}
	next, ok := n.place.NextBlockOnSameDisk(req.Video, req.Block)
	if !ok {
		return
	}
	if n.place.Locate(req.Video, next).Node != n.id {
		// This request was served from a mirror copy: the video's primary
		// run continues on another node, so there is nothing local worth
		// prefetching (the worker reads primary addresses only).
		return
	}
	id := bufferpool.PageID{Video: req.Video, Block: next}
	if n.pool.Contains(id) {
		return
	}
	step := next - req.Block
	est := req.Deadline + sim.Time(step)*sim.Time(n.stripePlayTime)
	n.queues[addr.Disk].Put(prefetch.Job{
		Video:    req.Video,
		Block:    next,
		Deadline: est,
	})
}

// prefetchWorker drains one disk's prefetch queue (§5.2.3). The number
// of workers per disk sets prefetch aggressiveness; workers blocked on
// buffer frames throttle naturally when memory is scarce.
func (n *Node) prefetchWorker(p *sim.Proc, diskIdx int) {
	q := n.queues[diskIdx]
	for {
		job := q.Get(p)
		id := bufferpool.PageID{Video: job.Video, Block: job.Block}
		if n.pool.Contains(id) {
			continue
		}
		if n.stale != nil && n.stale(job.Video, job.Block, 0) {
			// The primary copy is awaiting rebuild; prefetching it would
			// buffer garbage.
			continue
		}
		pg, out := n.pool.Acquire(p, id, -1, true)
		if out != bufferpool.MustFetch {
			n.pool.Unpin(pg)
			continue
		}
		deadline := job.Deadline
		if !n.cfg.Sched.IsRealTime() {
			// Without deadline-aware scheduling the estimate is unused;
			// park prefetches behind everything just in case.
			deadline = sim.TimeInfinity
		}
		addr := n.place.Locate(job.Video, job.Block)
		n.stats.Prefetches++
		n.readBlock(p, pg, addr, deadline, -1, true)
		n.pool.Unpin(pg)
	}
}
