package server

import (
	"testing"

	"spiffi/internal/bufferpool"
	"spiffi/internal/cpu"
	"spiffi/internal/disk"
	"spiffi/internal/dsched"
	"spiffi/internal/layout"
	"spiffi/internal/network"
	"spiffi/internal/prefetch"
	"spiffi/internal/proto"
	"spiffi/internal/rng"
	"spiffi/internal/sim"
)

// rig builds one node serving a small striped layout.
type rig struct {
	k     *sim.Kernel
	node  *Node
	place *layout.Placement
	net   *network.Network
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	k := sim.NewKernel()
	// One node, two disks; one "video" of 64 blocks of 256 KB.
	place := layout.NewStriped([]int64{64 * 256 * 1024}, 256*1024, 1, 2)
	net := network.New(k, network.DefaultParams())
	srcs := []*rng.Source{rng.New(1), rng.New(2)}
	node := New(k, 0, cfg, net, place, srcs, sim.Duration(524*sim.Millisecond))
	return &rig{k: k, node: node, place: place, net: net}
}

func baseCfg() Config {
	return Config{
		PoolPages:   32,
		Replacement: bufferpool.PolicyLovePrefetch,
		Sched:       dsched.Config{Kind: dsched.KindElevator},
		Prefetch:    prefetch.Config{Mode: prefetch.ModeBasic, WorkersPerDisk: 1},
		MIPS:        40,
		CPUCosts:    cpu.DefaultCosts(),
		DiskParams:  disk.DefaultParams(),
	}
}

// request sends a demand request and returns a done-flag pointer.
func (r *rig) request(video, block, term int, deadline sim.Time) *bool {
	done := new(bool)
	req := &proto.BlockRequest{
		Video:    video,
		Block:    block,
		Size:     r.place.SizeOfBlock(video, block),
		Deadline: deadline,
		Terminal: term,
		Deliver:  func(*proto.BlockRequest) { *done = true },
		Issued:   r.k.Now(),
	}
	r.node.DeliverRequest(req)
	return done
}

func TestDemandRequestServed(t *testing.T) {
	r := newRig(t, baseCfg())
	defer r.k.Close()
	var done *bool
	r.k.At(0, func() { done = r.request(0, 0, 1, sim.Time(10*sim.Second)) })
	if err := r.k.Run(sim.Time(2 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if !*done {
		t.Fatal("request never answered")
	}
	if r.node.Stats().Requests != 1 {
		t.Fatalf("requests = %d", r.node.Stats().Requests)
	}
	if r.node.Pool().Stats().Misses != 1 {
		t.Fatalf("pool misses = %d, want 1", r.node.Pool().Stats().Misses)
	}
}

func TestSecondRequestHitsPool(t *testing.T) {
	r := newRig(t, baseCfg())
	defer r.k.Close()
	r.k.At(0, func() { r.request(0, 0, 1, sim.Time(10*sim.Second)) })
	var done *bool
	r.k.At(sim.Time(sim.Second), func() { done = r.request(0, 0, 2, sim.Time(10*sim.Second)) })
	if err := r.k.Run(sim.Time(3 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if !*done {
		t.Fatal("second request unanswered")
	}
	ps := r.node.Pool().Stats()
	if ps.DemandHits < 1 {
		t.Fatalf("no pool hit on re-request: %+v", ps)
	}
	if ps.SharedRefs != 1 {
		t.Fatalf("sharedRefs = %d, want 1 (different terminal)", ps.SharedRefs)
	}
	// Only one disk read happened for the block itself.
	demandReads := int64(0)
	for _, d := range r.node.Disks() {
		demandReads += d.Stats().Served - d.Stats().PrefetchOps
	}
	if demandReads != 1 {
		t.Fatalf("demand disk reads = %d, want 1", demandReads)
	}
}

func TestPrefetchTriggeredForNextBlockOnSameDisk(t *testing.T) {
	r := newRig(t, baseCfg())
	defer r.k.Close()
	// Block 0 lives on disk 0; the next block on disk 0 is block 2
	// (1 node x 2 disks).
	r.k.At(0, func() { r.request(0, 0, 1, sim.Time(10*sim.Second)) })
	if err := r.k.Run(sim.Time(3 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if r.node.Stats().Prefetches != 1 {
		t.Fatalf("prefetches = %d, want 1", r.node.Stats().Prefetches)
	}
	if !r.node.Pool().Contains(bufferpool.PageID{Video: 0, Block: 2}) {
		t.Fatal("next block on same disk was not prefetched")
	}
	if r.node.Pool().Contains(bufferpool.PageID{Video: 0, Block: 1}) {
		t.Fatal("block 1 (other disk) must not have been prefetched")
	}
}

func TestPrefetchedBlockHitsWithoutDiskRead(t *testing.T) {
	r := newRig(t, baseCfg())
	defer r.k.Close()
	r.k.At(0, func() { r.request(0, 0, 1, sim.Time(10*sim.Second)) })
	var done *bool
	// Later, request block 2 — it should be a pure pool hit.
	r.k.At(sim.Time(2*sim.Second), func() { done = r.request(0, 2, 1, sim.Time(10*sim.Second)) })
	if err := r.k.Run(sim.Time(4 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if !*done {
		t.Fatal("unanswered")
	}
	ps := r.node.Pool().Stats()
	if ps.DemandHits != 1 {
		t.Fatalf("demand hits = %d, want 1 (prefetched block)", ps.DemandHits)
	}
}

func TestDeadlineTighteningOnInflightPrefetch(t *testing.T) {
	cfg := baseCfg()
	cfg.Sched = dsched.Config{Kind: dsched.KindRealTime, Classes: 3, Spacing: 4 * sim.Second}
	cfg.Prefetch = prefetch.Config{Mode: prefetch.ModeRealTime, WorkersPerDisk: 1}
	r := newRig(t, cfg)
	defer r.k.Close()
	// Demand block 0 (spawns prefetch of block 2 with a lazy estimated
	// deadline). Immediately demand block 2 with an urgent deadline while
	// the prefetch is still queued/being serviced.
	r.k.At(0, func() { r.request(0, 0, 1, sim.Time(60*sim.Second)) })
	r.k.At(sim.Time(130*sim.Millisecond), func() {
		r.request(0, 2, 1, sim.Time(200*sim.Millisecond))
	})
	if err := r.k.Run(sim.Time(5 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if r.node.Stats().DeadlineUps == 0 {
		t.Skip("prefetch completed before the demand arrived in this timing; tightening not exercised")
	}
}

func TestMisroutedRequestPanics(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	// Two nodes' layout, but we build only node 0 and send it a block
	// belonging to node 1.
	place := layout.NewStriped([]int64{64 * 256 * 1024}, 256*1024, 2, 1)
	net := network.New(k, network.DefaultParams())
	node := New(k, 0, baseCfg(), net, place, []*rng.Source{rng.New(1)}, sim.Second)
	k.At(0, func() {
		node.DeliverRequest(&proto.BlockRequest{
			Video: 0, Block: 1, Size: 256 * 1024,
			Deliver: func(*proto.BlockRequest) {},
		})
	})
	if err := k.Run(sim.Time(sim.Second)); err == nil {
		t.Fatal("misrouted request must fail loudly")
	}
}

func TestResetStatsClearsWindow(t *testing.T) {
	r := newRig(t, baseCfg())
	defer r.k.Close()
	r.k.At(0, func() { r.request(0, 0, 1, sim.Time(10*sim.Second)) })
	if err := r.k.Run(sim.Time(2 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	r.node.ResetStats()
	if r.node.Stats().Requests != 0 || r.node.Pool().Stats().DemandRefs != 0 {
		t.Fatal("reset did not clear node counters")
	}
	for _, d := range r.node.Disks() {
		if d.Stats().Served != 0 {
			t.Fatal("reset did not clear disk counters")
		}
	}
}

func TestCPUChargedForRequestHandling(t *testing.T) {
	r := newRig(t, baseCfg())
	defer r.k.Close()
	r.k.At(0, func() { r.request(0, 0, 1, sim.Time(10*sim.Second)) })
	if err := r.k.Run(sim.Time(2 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if r.node.CPU().Utilization() <= 0 {
		t.Fatal("CPU shows zero utilization after handling a request")
	}
}

func TestAllocWaitsWhenPoolExhausted(t *testing.T) {
	cfg := baseCfg()
	cfg.PoolPages = 2 // pathological: fewer frames than concurrent work
	cfg.Prefetch.Mode = prefetch.ModeOff
	r := newRig(t, cfg)
	defer r.k.Close()
	r.k.At(0, func() {
		for b := 0; b < 6; b++ {
			r.request(0, b, b, sim.Time(10*sim.Second))
		}
	})
	if err := r.k.Run(sim.Time(10 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	ps := r.node.Pool().Stats()
	if ps.AllocWaits == 0 {
		t.Fatal("six concurrent requests on a 2-page pool never waited for frames")
	}
	// All requests must nevertheless complete (waiters are woken).
	if r.node.Stats().Requests != 6 {
		t.Fatalf("requests handled = %d, want 6", r.node.Stats().Requests)
	}
}

func TestPrefetchWorkerSkipsResidentJob(t *testing.T) {
	r := newRig(t, baseCfg())
	defer r.k.Close()
	// Demand block 0 twice in quick succession from different terminals:
	// the second demand's prefetch trigger for block 2 finds it already
	// resident (or in flight) and must not issue a second disk read.
	r.k.At(0, func() { r.request(0, 0, 1, sim.Time(10*sim.Second)) })
	r.k.At(sim.Time(2*sim.Second), func() { r.request(0, 0, 2, sim.Time(10*sim.Second)) })
	if err := r.k.Run(sim.Time(5 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if got := r.node.Stats().Prefetches; got != 1 {
		t.Fatalf("prefetch disk reads = %d, want 1 (deduplicated)", got)
	}
}

func TestSequentialStreamMostlyPoolHits(t *testing.T) {
	// Drive a whole sequential stream through one node's two disks; with
	// prefetching on, most demand requests after the first per disk
	// should hit the pool.
	r := newRig(t, baseCfg())
	defer r.k.Close()
	k := r.k
	k.Spawn("stream", func(p *sim.Proc) {
		for b := 0; b < 32; b++ {
			done := sim.NewEvent(k)
			req := &proto.BlockRequest{
				Video: 0, Block: b,
				Size:     r.place.SizeOfBlock(0, b),
				Deadline: k.Now().Add(4 * sim.Second),
				Terminal: 1,
				Deliver:  func(*proto.BlockRequest) { done.Fire() },
				Issued:   k.Now(),
			}
			r.node.DeliverRequest(req)
			done.Wait(p)
			p.Sleep(250 * sim.Millisecond) // ~steady stream pacing
		}
	})
	if err := k.Run(sim.Time(60 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	ps := r.node.Pool().Stats()
	if ps.DemandRefs != 32 {
		t.Fatalf("demand refs = %d", ps.DemandRefs)
	}
	if ps.HitFraction() < 0.8 {
		t.Fatalf("hit fraction = %.2f, want >= 0.8 with working prefetch", ps.HitFraction())
	}
}
