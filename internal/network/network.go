// Package network models the SPIFFI interconnect exactly as §6.2 of the
// paper does: a bus with unlimited aggregate bandwidth and a constant
// per-message latency of 5 µs plus 0.04 µs per byte, regardless of which
// endpoints communicate. Messages are delivered into per-endpoint queues.
// The network is explicitly not a bottleneck; what the paper reports
// (Figure 18) is the peak aggregate bandwidth the server consumes, which
// this package meters.
package network

import (
	"spiffi/internal/sim"
	"spiffi/internal/stats"
	"spiffi/internal/trace"
)

// Params describes the wire model.
type Params struct {
	FixedDelay   sim.Duration // per message (paper: 5 µs)
	PerByteDelay sim.Duration // per payload byte (paper: 0.04 µs)
	MeterWindow  float64      // seconds per bandwidth-meter window
}

// DefaultParams returns the Table 1 network parameters with a 1-second
// bandwidth metering window.
func DefaultParams() Params {
	return Params{
		FixedDelay:   5 * sim.Microsecond,
		PerByteDelay: 40 * sim.Nanosecond,
		MeterWindow:  1.0,
	}
}

// Hook intercepts messages for fault injection. Mangle is consulted once
// per Send, after metering: drop=true discards the message (the receiver
// never sees it — timeouts are the only recovery), otherwise extra is
// added to the wire delay (congestion jitter). A deterministic hook makes
// the whole network deterministic, since it is consulted in Send order.
type Hook interface {
	Mangle(size int64) (drop bool, extra sim.Duration)
}

// Network is the shared bus.
type Network struct {
	k       *sim.Kernel
	params  Params
	meter   *stats.PeakRateMeter
	sent    int64
	hook    Hook
	dropped int64
	rec     *trace.Recorder // nil unless tracing is enabled
}

// New creates the bus.
func New(k *sim.Kernel, params Params) *Network {
	return &Network{
		k:      k,
		params: params,
		meter:  stats.NewPeakRateMeter(params.MeterWindow),
	}
}

// WireDelay returns the latency for a message with `size` payload bytes.
func (n *Network) WireDelay(size int64) sim.Duration {
	return n.params.FixedDelay + sim.Duration(size)*n.params.PerByteDelay
}

// Send delivers `payload` after the wire delay by invoking deliver in
// kernel context. Bandwidth is metered at send time. deliver typically
// puts the message on the destination's mailbox. Send never blocks and
// may be called from kernel context or any process; CPU send/receive
// costs are charged by the endpoints, not here.
func (n *Network) Send(size int64, deliver func()) {
	n.meter.Record(n.k.Now().Seconds(), float64(size))
	n.sent++
	delay := n.WireDelay(size)
	if n.hook != nil {
		drop, extra := n.hook.Mangle(size)
		if drop {
			n.dropped++
			n.rec.NetSend(size, delay, true)
			return
		}
		delay += extra
	}
	n.rec.NetSend(size, delay, false)
	n.k.After(delay, deliver)
}

// SetTrace attaches a trace recorder (nil is fine: emits become no-ops).
func (n *Network) SetTrace(rec *trace.Recorder) { n.rec = rec }

// SetHook installs (or, with nil, removes) the fault-injection hook.
func (n *Network) SetHook(h Hook) { n.hook = h }

// Dropped returns the number of messages discarded by the hook.
func (n *Network) Dropped() int64 { return n.dropped }

// PeakAggregateBandwidth returns the highest windowed transfer rate seen,
// in bytes/second (Figure 18's metric).
func (n *Network) PeakAggregateBandwidth() float64 { return n.meter.PeakRate() }

// TotalBytes returns the total payload bytes carried.
func (n *Network) TotalBytes() float64 { return n.meter.Total() }

// Messages returns the number of messages carried.
func (n *Network) Messages() int64 { return n.sent }

// ResetStats restarts bandwidth metering (to discard warm-up).
func (n *Network) ResetStats() {
	n.meter.Reset()
	n.sent = 0
	n.dropped = 0
}
