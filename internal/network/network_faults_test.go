package network

import (
	"reflect"
	"testing"

	"spiffi/internal/faults"
	"spiffi/internal/rng"
	"spiffi/internal/sim"
)

// Messages sent at the same instant with the same size must be
// delivered in send order: the kernel breaks timestamp ties by event
// sequence, which is what makes seeded runs reproducible.
func TestEqualTimestampDeliveryOrder(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	n := New(k, DefaultParams())
	var order []int
	k.At(0, func() {
		for i := 0; i < 8; i++ {
			i := i
			n.Send(1000, func() { order = append(order, i) })
		}
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 2, 3, 4, 5, 6, 7}; !reflect.DeepEqual(order, want) {
		t.Fatalf("equal-timestamp delivery order = %v, want %v", order, want)
	}
}

// scriptedHook drops every third message and delays the rest by a
// fixed extra latency.
type scriptedHook struct {
	calls int
	extra sim.Duration
}

func (h *scriptedHook) Mangle(int64) (bool, sim.Duration) {
	h.calls++
	if h.calls%3 == 0 {
		return true, 0
	}
	return false, h.extra
}

func TestHookDropsAndJitters(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	n := New(k, DefaultParams())
	n.SetHook(&scriptedHook{extra: sim.Millisecond})
	var times []sim.Time
	k.At(0, func() {
		for i := 0; i < 6; i++ {
			n.Send(1000, func() { times = append(times, k.Now()) })
		}
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 4 {
		t.Fatalf("delivered %d of 6, want 4 (every third dropped)", len(times))
	}
	if n.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", n.Dropped())
	}
	want := sim.Time(0).Add(n.WireDelay(1000)).Add(sim.Millisecond)
	for _, at := range times {
		if at != want {
			t.Fatalf("jittered delivery at %v, want %v", at, want)
		}
	}
	// Dropped messages are still metered (the sender did put them on the
	// wire) but the drop counter resets with the window stats.
	if n.Messages() != 6 {
		t.Fatalf("messages = %d, want 6", n.Messages())
	}
	n.ResetStats()
	if n.Dropped() != 0 {
		t.Fatal("reset did not clear the drop counter")
	}
}

// Two identically seeded fault models must mangle an identical send
// sequence identically: same drops, same jitter, message for message.
func TestNetModelDeterminism(t *testing.T) {
	cfg := faults.Config{NetLossProb: 0.3, NetJitterMax: 2 * sim.Millisecond}
	run := func() []sim.Time {
		k := sim.NewKernel()
		defer k.Close()
		n := New(k, DefaultParams())
		n.SetHook(faults.NewNetModel(cfg, rng.New(42)))
		times := []sim.Time{}
		k.At(0, func() {
			for i := 0; i < 200; i++ {
				i := i
				n.Send(int64(100+i), func() { times = append(times, k.Now()) })
			}
		})
		if err := k.RunAll(); err != nil {
			t.Fatal(err)
		}
		return times
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical seeds mangled differently: %d vs %d deliveries", len(a), len(b))
	}
	if len(a) == 200 {
		t.Fatal("30% loss dropped nothing")
	}
	jittered := false
	for _, at := range a {
		if at.Sub(sim.Time(0)) > 50*sim.Microsecond {
			jittered = true
		}
	}
	if !jittered {
		t.Fatal("jitter never applied")
	}
}
