package network

import (
	"math"
	"testing"

	"spiffi/internal/sim"
)

func TestWireDelayFormula(t *testing.T) {
	n := New(sim.NewKernel(), DefaultParams())
	// 5 µs + 0.04 µs/byte: a 1000-byte message takes 45 µs.
	if got, want := n.WireDelay(1000), sim.Duration(45*sim.Microsecond); got != want {
		t.Fatalf("WireDelay(1000) = %v, want %v", got, want)
	}
	if got, want := n.WireDelay(0), sim.Duration(5*sim.Microsecond); got != want {
		t.Fatalf("WireDelay(0) = %v, want %v", got, want)
	}
	// A 512 KB stripe block: 5µs + 524288*0.04µs ~ 21.0ms.
	ms := n.WireDelay(512*1024).Seconds() * 1000
	if math.Abs(ms-20.98) > 0.05 {
		t.Fatalf("512KB wire delay = %vms, want ~20.98", ms)
	}
}

func TestSendDeliversAfterDelay(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	n := New(k, DefaultParams())
	var deliveredAt sim.Time = -1
	k.At(0, func() {
		n.Send(1000, func() { deliveredAt = k.Now() })
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if want := sim.Time(45 * sim.Microsecond); deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestNoQueueingUnlimitedBandwidth(t *testing.T) {
	// Two messages sent simultaneously arrive simultaneously: the bus has
	// unlimited aggregate bandwidth (§6.2).
	k := sim.NewKernel()
	defer k.Close()
	n := New(k, DefaultParams())
	var times []sim.Time
	k.At(0, func() {
		n.Send(1000, func() { times = append(times, k.Now()) })
		n.Send(1000, func() { times = append(times, k.Now()) })
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if times[0] != times[1] {
		t.Fatalf("concurrent sends serialized: %v vs %v", times[0], times[1])
	}
}

func TestBandwidthMetering(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	n := New(k, DefaultParams())
	k.At(0, func() { n.Send(1_000_000, func() {}) })
	k.At(sim.Time(2*sim.Second), func() { n.Send(3_000_000, func() {}) })
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := n.PeakAggregateBandwidth(); got != 3_000_000 {
		t.Fatalf("peak = %v, want 3e6", got)
	}
	if got := n.TotalBytes(); got != 4_000_000 {
		t.Fatalf("total = %v", got)
	}
	if n.Messages() != 2 {
		t.Fatalf("messages = %d", n.Messages())
	}
	n.ResetStats()
	if n.TotalBytes() != 0 || n.Messages() != 0 {
		t.Fatal("reset did not clear")
	}
}
