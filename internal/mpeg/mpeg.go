// Package mpeg models MPEG-compressed video streams the way the SPIFFI
// paper does (§6.1): each video is a fixed sequence of I, P and B frames
// with a 1:4:10 frequency ratio, a 10:5:2 mean-size ratio, exponentially
// distributed individual frame sizes, and an aggregate rate of
// 4 Mbits/second at ~30 frames/second. The same video always replays the
// same frame sequence (sizes are derived from the video's id), exactly as
// in the paper.
package mpeg

import (
	"fmt"
	"sort"

	"spiffi/internal/rng"
	"spiffi/internal/sim"
)

// FrameType labels the three MPEG frame kinds.
type FrameType uint8

const (
	FrameI FrameType = iota
	FrameP
	FrameB
)

func (t FrameType) String() string {
	switch t {
	case FrameI:
		return "I"
	case FrameP:
		return "P"
	default:
		return "B"
	}
}

// GOPPattern is the 15-frame group-of-pictures display pattern giving the
// paper's 1:4:10 I:P:B frequency ratio.
var GOPPattern = []FrameType{
	FrameI, FrameB, FrameB,
	FrameP, FrameB, FrameB,
	FrameP, FrameB, FrameB,
	FrameP, FrameB, FrameB,
	FrameP, FrameB, FrameB,
}

// Params describes a video stream encoding.
type Params struct {
	BitRate   int64        // compressed bits per second (paper: 4 Mbit/s)
	FrameRate float64      // frames per second (paper: 30, NTSC)
	SizeI     float64      // relative mean size of I frames (paper: 10)
	SizeP     float64      // relative mean size of P frames (paper: 5)
	SizeB     float64      // relative mean size of B frames (paper: 2)
	Length    sim.Duration // video length (paper: 60 minutes)
}

// DefaultParams returns the paper's Table 1 video parameters.
func DefaultParams() Params {
	return Params{
		BitRate:   4_000_000,
		FrameRate: 30,
		SizeI:     10,
		SizeP:     5,
		SizeB:     2,
		Length:    60 * sim.Minute,
	}
}

// MeanFrameBytes returns the mean bytes per frame implied by the bit rate.
func (p Params) MeanFrameBytes() float64 {
	return float64(p.BitRate) / 8 / p.FrameRate
}

// sizeUnit returns the byte value of one relative-size unit such that the
// GOP-average frame size matches the bit rate.
func (p Params) sizeUnit() float64 {
	var relSum float64
	for _, t := range GOPPattern {
		switch t {
		case FrameI:
			relSum += p.SizeI
		case FrameP:
			relSum += p.SizeP
		default:
			relSum += p.SizeB
		}
	}
	return p.MeanFrameBytes() * float64(len(GOPPattern)) / relSum
}

// NumFrames returns the frame count for the configured length.
func (p Params) NumFrames() int {
	return int(p.Length.Seconds() * p.FrameRate)
}

// FramePeriod returns the display time of one frame.
func (p Params) FramePeriod() sim.Duration {
	return sim.Duration(float64(sim.Second) / p.FrameRate)
}

// Video is one generated video: an immutable frame-size sequence with
// byte prefix sums for O(log n) byte<->frame<->time conversions.
type Video struct {
	id     int
	params Params
	cum    []int64 // cum[i] = total bytes of frames [0, i); len = NumFrames+1
	period sim.Duration
}

// Generate builds the deterministic frame sequence for video id. The
// sequence depends only on (seed, id, params), so every replay of a video
// is identical — the paper's §6.1 requirement.
func Generate(params Params, id int, seed uint64) *Video {
	n := params.NumFrames()
	if n <= 0 {
		panic(fmt.Sprintf("mpeg: params give %d frames", n))
	}
	unit := params.sizeUnit()
	src := rng.New(seed).DeriveIndexed("mpeg-video", id)
	cum := make([]int64, n+1)
	var total int64
	for i := 0; i < n; i++ {
		var mean float64
		switch GOPPattern[i%len(GOPPattern)] {
		case FrameI:
			mean = params.SizeI * unit
		case FrameP:
			mean = params.SizeP * unit
		default:
			mean = params.SizeB * unit
		}
		size := int64(src.Exp(mean))
		if size < 1 {
			size = 1
		}
		total += size
		cum[i+1] = total
	}
	return &Video{id: id, params: params, cum: cum, period: params.FramePeriod()}
}

// ID returns the video's identifier.
func (v *Video) ID() int { return v.id }

// Params returns the encoding parameters.
func (v *Video) Params() Params { return v.params }

// NumFrames returns the frame count.
func (v *Video) NumFrames() int { return len(v.cum) - 1 }

// TotalBytes returns the total compressed size.
func (v *Video) TotalBytes() int64 { return v.cum[len(v.cum)-1] }

// FramePeriod returns the display time of one frame.
func (v *Video) FramePeriod() sim.Duration { return v.period }

// Duration returns the total display time.
func (v *Video) Duration() sim.Duration {
	return sim.Duration(v.NumFrames()) * v.period
}

// FrameType returns the type of frame i.
func (v *Video) FrameType(i int) FrameType { return GOPPattern[i%len(GOPPattern)] }

// FrameSize returns the compressed size of frame i in bytes.
func (v *Video) FrameSize(i int) int64 { return v.cum[i+1] - v.cum[i] }

// BytesBeforeFrame returns the total bytes of frames [0, i). It accepts
// i in [0, NumFrames].
func (v *Video) BytesBeforeFrame(i int) int64 { return v.cum[i] }

// FirstIncompleteFrame returns the smallest frame index f such that
// frame f's data is NOT fully contained in the first `frontier` bytes of
// the stream; i.e. frames [0, f) are displayable. If the whole video fits,
// it returns NumFrames.
func (v *Video) FirstIncompleteFrame(frontier int64) int {
	// Find first index i with cum[i+1] > frontier.
	i := sort.Search(v.NumFrames(), func(f int) bool { return v.cum[f+1] > frontier })
	return i
}

// FramesSpanned returns how many whole frames complete within the byte
// range [lo, hi) — the frames a viewer loses when a degraded stream
// skips that range (overload load shedding).
func (v *Video) FramesSpanned(lo, hi int64) int {
	n := v.FirstIncompleteFrame(hi) - v.FirstIncompleteFrame(lo)
	if n < 0 {
		return 0
	}
	return n
}

// FramesDisplayedBy returns how many frames have *finished* displaying
// after elapsed display time e (display starts at e=0, frame k occupies
// [k*period, (k+1)*period)).
func (v *Video) FramesDisplayedBy(e sim.Duration) int {
	if e < 0 {
		return 0
	}
	f := int(e / v.period)
	if f > v.NumFrames() {
		f = v.NumFrames()
	}
	return f
}

// BytesConsumedBy returns the bytes freed from a playout buffer after
// elapsed display time e — the bytes of all fully displayed frames.
func (v *Video) BytesConsumedBy(e sim.Duration) int64 {
	return v.cum[v.FramesDisplayedBy(e)]
}
