package mpeg

import (
	"sync"
	"testing"
)

// SharedLibrary is the one piece of state simulation runs share, so it
// must be safe under concurrent sweeps (go test -race exercises this).
func TestSharedLibraryConcurrent(t *testing.T) {
	params := DefaultParams()
	params.Length = 2 * 1000 * 1000 * 1000 // 2s: tiny frame tables
	const workers = 16
	libs := make([]*Library, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			lib := SharedLibrary(params, 8, 99)
			libs[w] = lib
			for id := 0; id < 8; id++ {
				v := lib.Get(id)
				if v.TotalBytes() <= 0 {
					t.Errorf("video %d empty", id)
				}
			}
		}()
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if libs[w] != libs[0] {
			t.Fatal("SharedLibrary returned distinct instances for one identity")
		}
	}
	// Generated videos are cached: all workers saw identical objects.
	if SharedLibrary(params, 8, 99).Get(3) != libs[0].Get(3) {
		t.Fatal("Get regenerated a cached video")
	}
}
