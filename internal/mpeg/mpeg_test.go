package mpeg

import (
	"math"
	"testing"
	"testing/quick"

	"spiffi/internal/sim"
)

func shortParams() Params {
	p := DefaultParams()
	p.Length = 2 * sim.Minute
	return p
}

func TestGOPPatternRatios(t *testing.T) {
	var i, pp, b int
	for _, ft := range GOPPattern {
		switch ft {
		case FrameI:
			i++
		case FrameP:
			pp++
		default:
			b++
		}
	}
	if i != 1 || pp != 4 || b != 10 {
		t.Fatalf("GOP ratios I:P:B = %d:%d:%d, want 1:4:10", i, pp, b)
	}
}

func TestStreamRateMatchesBitRate(t *testing.T) {
	p := DefaultParams()
	v := Generate(p, 0, 42)
	gotRate := float64(v.TotalBytes()) * 8 / v.Duration().Seconds()
	if math.Abs(gotRate-float64(p.BitRate))/float64(p.BitRate) > 0.02 {
		t.Fatalf("stream rate %v bits/s, want ~%d", gotRate, p.BitRate)
	}
}

func TestFrameSizeRatios(t *testing.T) {
	v := Generate(DefaultParams(), 0, 42)
	var sums [3]float64
	var counts [3]int
	for i := 0; i < v.NumFrames(); i++ {
		ft := v.FrameType(i)
		sums[ft] += float64(v.FrameSize(i))
		counts[ft]++
	}
	meanI := sums[FrameI] / float64(counts[FrameI])
	meanP := sums[FrameP] / float64(counts[FrameP])
	meanB := sums[FrameB] / float64(counts[FrameB])
	if r := meanI / meanP; math.Abs(r-2) > 0.1 {
		t.Fatalf("I/P mean size ratio %v, want ~2", r)
	}
	if r := meanP / meanB; math.Abs(r-2.5) > 0.15 {
		t.Fatalf("P/B mean size ratio %v, want ~2.5", r)
	}
}

func TestFrameSizesExponential(t *testing.T) {
	// For an exponential distribution the coefficient of variation is 1.
	v := Generate(DefaultParams(), 3, 42)
	var sum, sumSq float64
	n := 0
	for i := 0; i < v.NumFrames(); i++ {
		if v.FrameType(i) != FrameB {
			continue
		}
		s := float64(v.FrameSize(i))
		sum += s
		sumSq += s * s
		n++
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sumSq/float64(n) - mean*mean)
	if cv := sd / mean; math.Abs(cv-1) > 0.05 {
		t.Fatalf("B-frame size CV %v, want ~1 (exponential)", cv)
	}
}

func TestSameVideoSameSequence(t *testing.T) {
	a := Generate(shortParams(), 5, 42)
	b := Generate(shortParams(), 5, 42)
	if a.TotalBytes() != b.TotalBytes() {
		t.Fatal("same video generated differently")
	}
	for i := 0; i < a.NumFrames(); i += 97 {
		if a.FrameSize(i) != b.FrameSize(i) {
			t.Fatalf("frame %d differs", i)
		}
	}
}

func TestDifferentVideosDiffer(t *testing.T) {
	a := Generate(shortParams(), 1, 42)
	b := Generate(shortParams(), 2, 42)
	if a.TotalBytes() == b.TotalBytes() {
		t.Fatal("distinct videos improbably identical")
	}
}

func TestNumFramesAndDuration(t *testing.T) {
	p := DefaultParams()
	if p.NumFrames() != 108000 {
		t.Fatalf("60min at 30fps = %d frames, want 108000", p.NumFrames())
	}
	v := Generate(shortParams(), 0, 1)
	if v.NumFrames() != 3600 {
		t.Fatalf("2min = %d frames, want 3600", v.NumFrames())
	}
}

func TestFirstIncompleteFrame(t *testing.T) {
	v := Generate(shortParams(), 0, 42)
	// Zero bytes buffered: frame 0 is incomplete.
	if got := v.FirstIncompleteFrame(0); got != 0 {
		t.Fatalf("FirstIncompleteFrame(0) = %d", got)
	}
	// Exactly the first three frames buffered.
	fr := v.BytesBeforeFrame(3)
	if got := v.FirstIncompleteFrame(fr); got != 3 {
		t.Fatalf("FirstIncompleteFrame(cum3) = %d, want 3", got)
	}
	// One byte short of frame 3's completion.
	if got := v.FirstIncompleteFrame(v.BytesBeforeFrame(4) - 1); got != 3 {
		t.Fatalf("one byte short = %d, want 3", got)
	}
	// Whole video buffered.
	if got := v.FirstIncompleteFrame(v.TotalBytes()); got != v.NumFrames() {
		t.Fatalf("whole video = %d, want %d", got, v.NumFrames())
	}
}

func TestFirstIncompleteFrameProperty(t *testing.T) {
	v := Generate(shortParams(), 7, 42)
	f := func(raw uint32) bool {
		frontier := int64(raw) % (v.TotalBytes() + 1)
		f := v.FirstIncompleteFrame(frontier)
		// All frames before f fit; frame f itself (if any) does not.
		if v.BytesBeforeFrame(f) > frontier {
			return false
		}
		if f < v.NumFrames() && v.BytesBeforeFrame(f+1) <= frontier {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestConsumptionAccounting(t *testing.T) {
	v := Generate(shortParams(), 0, 42)
	period := v.FramePeriod()
	if got := v.FramesDisplayedBy(0); got != 0 {
		t.Fatalf("t=0 displayed %d", got)
	}
	if got := v.FramesDisplayedBy(period - 1); got != 0 {
		t.Fatalf("mid-frame displayed %d", got)
	}
	if got := v.FramesDisplayedBy(period); got != 1 {
		t.Fatalf("after 1 period displayed %d", got)
	}
	if got := v.FramesDisplayedBy(10*period + period/2); got != 10 {
		t.Fatalf("10.5 periods displayed %d", got)
	}
	if got := v.BytesConsumedBy(3 * period); got != v.BytesBeforeFrame(3) {
		t.Fatalf("consumed %d, want %d", got, v.BytesBeforeFrame(3))
	}
	// Past the end, the whole video is consumed.
	if got := v.FramesDisplayedBy(v.Duration() * 2); got != v.NumFrames() {
		t.Fatalf("past end displayed %d", got)
	}
}

func TestLibraryLazyAndStable(t *testing.T) {
	lib := NewLibrary(shortParams(), 8, 42)
	if lib.Count() != 8 {
		t.Fatal("count")
	}
	a := lib.Get(3)
	b := lib.Get(3)
	if a != b {
		t.Fatal("library did not cache")
	}
	fresh := Generate(shortParams(), 3, 42)
	if a.TotalBytes() != fresh.TotalBytes() {
		t.Fatal("library video differs from direct generation")
	}
}

func TestLibraryOutOfRangePanics(t *testing.T) {
	lib := NewLibrary(shortParams(), 4, 42)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	lib.Get(4)
}

func TestSharedLibraryIdentity(t *testing.T) {
	a := SharedLibrary(shortParams(), 4, 99)
	b := SharedLibrary(shortParams(), 4, 99)
	if a != b {
		t.Fatal("shared library not shared")
	}
	c := SharedLibrary(shortParams(), 4, 100)
	if a == c {
		t.Fatal("different seeds must not share")
	}
}

func TestVideoSizeMatchesPaper(t *testing.T) {
	// §5.2.1: "2 hours equals 4 Gbytes" at 4 Mbit/s -> 1 hour ~ 1.8 GB.
	v := Generate(DefaultParams(), 0, 42)
	gb := float64(v.TotalBytes()) / 1e9
	if gb < 1.7 || gb > 1.9 {
		t.Fatalf("1-hour video is %.2f GB, want ~1.8", gb)
	}
}

func BenchmarkGenerate(b *testing.B) {
	p := DefaultParams()
	for i := 0; i < b.N; i++ {
		Generate(p, i, 42)
	}
}

func BenchmarkFirstIncompleteFrame(b *testing.B) {
	v := Generate(DefaultParams(), 0, 42)
	total := v.TotalBytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.FirstIncompleteFrame(int64(i) % total)
	}
}

func TestBytesBeforeFrameMonotone(t *testing.T) {
	v := Generate(shortParams(), 2, 42)
	prev := int64(-1)
	for i := 0; i <= v.NumFrames(); i += 13 {
		b := v.BytesBeforeFrame(i)
		if b <= prev {
			t.Fatalf("prefix sums not strictly increasing at frame %d", i)
		}
		prev = b
	}
}

func TestFramePeriodNTSC(t *testing.T) {
	p := DefaultParams()
	// 30 fps -> 33.33 ms.
	ms := p.FramePeriod().Seconds() * 1000
	if math.Abs(ms-33.333) > 0.01 {
		t.Fatalf("frame period = %vms", ms)
	}
}

func TestDurationMatchesLength(t *testing.T) {
	v := Generate(shortParams(), 0, 42)
	if got := v.Duration().Seconds(); math.Abs(got-120) > 0.1 {
		t.Fatalf("duration = %vs, want 120", got)
	}
}

func TestFrameTypeSequence(t *testing.T) {
	v := Generate(shortParams(), 0, 42)
	// Frame 0 of every GOP is an I frame; 15-frame GOPs.
	for _, i := range []int{0, 15, 30, 1500} {
		if v.FrameType(i) != FrameI {
			t.Fatalf("frame %d type = %v, want I", i, v.FrameType(i))
		}
	}
	if v.FrameType(1) != FrameB || v.FrameType(3) != FrameP {
		t.Fatal("GOP pattern misaligned")
	}
}
