package mpeg

import "sync"

// Library is a collection of generated videos sharing one Params and one
// seed. Videos are generated lazily and cached; a Library may be shared
// across simulation runs (generation is deterministic, and Video values
// are immutable after generation), which matters because experiment
// sweeps replay the same video catalog hundreds of times.
type Library struct {
	params Params
	seed   uint64
	count  int

	mu     sync.Mutex
	videos map[int]*Video
}

// NewLibrary creates a library of `count` videos.
func NewLibrary(params Params, count int, seed uint64) *Library {
	if count <= 0 {
		panic("mpeg: library needs at least one video")
	}
	return &Library{
		params: params,
		seed:   seed,
		count:  count,
		videos: make(map[int]*Video, count),
	}
}

// Count returns the number of videos in the library.
func (l *Library) Count() int { return l.count }

// Params returns the shared encoding parameters.
func (l *Library) Params() Params { return l.params }

// Get returns video id, generating it on first use.
func (l *Library) Get(id int) *Video {
	if id < 0 || id >= l.count {
		panic("mpeg: video id out of range")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	v, ok := l.videos[id]
	if !ok {
		v = Generate(l.params, id, l.seed)
		l.videos[id] = v
	}
	return v
}

// libraryCache shares generated libraries across simulation runs in one
// process, keyed by the full generation identity.
var libraryCache sync.Map // key -> *Library

type libraryKey struct {
	params Params
	count  int
	seed   uint64
}

// SharedLibrary returns a process-wide cached library for the given
// identity. Experiment sweeps use this to avoid regenerating hundreds of
// megabytes of frame tables for every simulated configuration.
func SharedLibrary(params Params, count int, seed uint64) *Library {
	key := libraryKey{params: params, count: count, seed: seed}
	if v, ok := libraryCache.Load(key); ok {
		return v.(*Library)
	}
	lib := NewLibrary(params, count, seed)
	actual, _ := libraryCache.LoadOrStore(key, lib)
	return actual.(*Library)
}
