// Package proto defines the messages exchanged between video terminals
// and video-server nodes. SPIFFI's decentralized design (§5.2) means a
// terminal computes the owning node and disk itself and sends the request
// straight there; there is no intermediary and no global page-mapping
// service, so the protocol is just a request and a data reply.
package proto

import "spiffi/internal/sim"

// RequestHeaderBytes is the wire size of a block request message.
const RequestHeaderBytes = 64

// ReplyHeaderBytes is the wire overhead of a data reply, added to the
// block payload.
const ReplyHeaderBytes = 64

// BlockRequest asks a node for one stripe block of one video.
type BlockRequest struct {
	Video    int
	Block    int
	Size     int64    // expected payload size (one stripe block)
	Deadline sim.Time // completion deadline to avoid a glitch (§5.2.2)
	Terminal int

	// Deliver is invoked in simulation context when the data reply
	// reaches the requesting terminal.
	Deliver func(*BlockRequest)

	// Issued records when the terminal sent the request (response-time
	// statistics).
	Issued sim.Time
}
