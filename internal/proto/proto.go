// Package proto defines the messages exchanged between video terminals
// and video-server nodes. SPIFFI's decentralized design (§5.2) means a
// terminal computes the owning node and disk itself and sends the request
// straight there; there is no intermediary and no global page-mapping
// service, so the protocol is just a request and a data reply.
package proto

import "spiffi/internal/sim"

// RequestHeaderBytes is the wire size of a block request message.
const RequestHeaderBytes = 64

// ReplyHeaderBytes is the wire overhead of a data reply, added to the
// block payload.
const ReplyHeaderBytes = 64

// NackBytes is the wire size of a negative acknowledgement: a header-only
// reply carrying a failure status instead of block data.
const NackBytes = 64

// Status reports how the server disposed of a block request. The zero
// value is success, so fault-free code never touches it.
type Status int

// Reply statuses.
const (
	// StatusOK: the reply carries the block data.
	StatusOK Status = iota
	// StatusNackDiskFailed: the disk holding the block is fail-stopped;
	// the terminal should retry against a replica or record a glitch.
	StatusNackDiskFailed
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusNackDiskFailed:
		return "nack-disk-failed"
	default:
		return "status-?"
	}
}

// BlockRequest asks a node for one stripe block of one video.
type BlockRequest struct {
	Video    int
	Block    int
	Size     int64    // expected payload size (one stripe block)
	Deadline sim.Time // completion deadline to avoid a glitch (§5.2.2)
	Terminal int

	// Copy selects which stored copy of the block to read: 0 is the
	// primary placement, 1 the replica (when the layout mirrors videos).
	// Retries rotate the copy to fail over around a dead disk.
	Copy int

	// Attempt numbers the terminal's delivery attempts for this block,
	// starting at 0. Replies from superseded attempts (a retry was already
	// issued after a timeout) are recognized and dropped by the terminal.
	Attempt int

	// Status distinguishes a data reply (StatusOK) from a NACK sent when
	// the block's disk is fail-stopped.
	Status Status

	// Deliver is invoked in simulation context when the data reply
	// reaches the requesting terminal.
	Deliver func(*BlockRequest)

	// Issued records when the terminal sent the request (response-time
	// statistics).
	Issued sim.Time
}
