package core

import (
	"fmt"
	"sort"

	"spiffi/internal/stats"
)

// SearchOptions controls the max-terminals search (§7.1: "increase the
// number of terminals until the number of glitches becomes non-zero").
type SearchOptions struct {
	// Lo and Hi bracket the search; Hi is a hard cap. Zero values pick
	// defaults scaled to the configuration's disk count.
	Lo, Hi int
	// Step is the search resolution in terminals (the paper quotes its
	// answers at ~5-terminal precision).
	Step int
	// Seeds are the replication seeds; a terminal count passes only if
	// every seed's run is glitch-free.
	Seeds []uint64
	// Trace, if non-nil, receives one line per evaluated run.
	Trace func(format string, args ...any)
}

// withDefaults fills unset options. The default bracket assumes roughly
// 5-20 terminals per disk, which safely covers every paper configuration.
func (o SearchOptions) withDefaults(cfg Config) SearchOptions {
	if o.Step <= 0 {
		o.Step = 5
	}
	if o.Lo <= 0 {
		o.Lo = o.Step
	}
	if o.Hi <= 0 {
		o.Hi = 40 * cfg.TotalDisks()
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{cfg.Seed}
	}
	o.Lo = o.Lo / o.Step * o.Step
	if o.Lo < o.Step {
		o.Lo = o.Step
	}
	return o
}

// SearchResult reports a search outcome.
type SearchResult struct {
	// MaxTerminals is the largest evaluated count with zero glitches in
	// every replication — the paper's headline metric.
	MaxTerminals int
	// Runs counts simulation executions performed.
	Runs int
	// AtMax holds the metrics of the passing runs at MaxTerminals, one
	// per seed (utilization figures for the scaleup experiments).
	AtMax []Metrics
}

// FindMaxTerminals binary-searches the largest glitch-free terminal
// count on the Step lattice.
func FindMaxTerminals(cfg Config, opt SearchOptions) (SearchResult, error) {
	opt = opt.withDefaults(cfg)
	res := SearchResult{}
	cache := map[int][]Metrics{} // passing runs by count; nil entry = fail

	eval := func(terminals int) (bool, error) {
		if ms, ok := cache[terminals]; ok {
			return ms != nil, nil
		}
		var ms []Metrics
		for _, seed := range opt.Seeds {
			c := cfg
			c.Seed = seed
			c.Terminals = terminals
			m, err := Run(c)
			if err != nil {
				return false, fmt.Errorf("run(terminals=%d seed=%d): %w", terminals, seed, err)
			}
			res.Runs++
			if opt.Trace != nil {
				opt.Trace("  eval terminals=%d seed=%d glitches=%d started=%v",
					terminals, seed, m.Glitches, m.Started)
			}
			if !m.GlitchFree() {
				cache[terminals] = nil
				return false, nil
			}
			ms = append(ms, m)
		}
		cache[terminals] = ms
		return true, nil
	}

	// Establish a failing upper bound and a passing lower bound.
	lo, hi := opt.Lo, opt.Hi/opt.Step*opt.Step
	okLo, err := eval(lo)
	if err != nil {
		return res, err
	}
	if !okLo {
		// Even the lower bound glitches: scan down to the floor.
		for lo > opt.Step {
			lo -= opt.Step
			ok, err := eval(lo)
			if err != nil {
				return res, err
			}
			if ok {
				break
			}
		}
		if cache[lo] == nil {
			res.MaxTerminals = 0
			return res, nil
		}
		hi = lo + opt.Step
	} else {
		// Grow exponentially until failure or cap.
		cur := lo
		for {
			next := cur * 2
			if next > hi {
				next = hi
			}
			if next == cur {
				// Passed at the cap.
				res.MaxTerminals = cur
				res.AtMax = cache[cur]
				return res, nil
			}
			ok, err := eval(next)
			if err != nil {
				return res, err
			}
			if !ok {
				lo, hi = cur, next
				break
			}
			cur = next
			if cur >= hi {
				res.MaxTerminals = cur
				res.AtMax = cache[cur]
				return res, nil
			}
		}
	}

	// Bisect (lo passes, hi fails) on the Step lattice.
	for hi-lo > opt.Step {
		mid := (lo + hi) / 2 / opt.Step * opt.Step
		if mid <= lo || mid >= hi {
			break
		}
		ok, err := eval(mid)
		if err != nil {
			return res, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	res.MaxTerminals = lo
	res.AtMax = cache[lo]
	return res, nil
}

// GlitchCurve evaluates glitch counts over a set of terminal counts —
// the raw data behind the paper's Figure 9.
func GlitchCurve(cfg Config, counts []int) (map[int]int64, error) {
	out := make(map[int]int64, len(counts))
	for _, t := range counts {
		c := cfg
		c.Terminals = t
		m, err := Run(c)
		if err != nil {
			return nil, err
		}
		g := m.Glitches
		if !m.Started {
			g = -1
		}
		out[t] = g
	}
	return out, nil
}

// ConfidentMax applies the paper's §7.1 stopping rule: independent
// per-seed searches are added until the Student-t interval of the
// per-seed maxima is within relWidth of the mean at the given confidence
// level (paper: 0.90 level, 0.05 relative width), or maxSeeds is
// reached. It returns the mean estimate, the interval, and all per-seed
// maxima.
func ConfidentMax(cfg Config, opt SearchOptions, level, relWidth float64, minSeeds, maxSeeds int) (stats.Interval, []int, error) {
	if minSeeds < 2 {
		minSeeds = 2
	}
	var maxima []float64
	var raw []int
	for s := 0; s < maxSeeds; s++ {
		o := opt
		o.Seeds = []uint64{cfg.Seed + uint64(s)*7919}
		r, err := FindMaxTerminals(cfg, o)
		if err != nil {
			return stats.Interval{}, nil, err
		}
		maxima = append(maxima, float64(r.MaxTerminals))
		raw = append(raw, r.MaxTerminals)
		if len(maxima) >= minSeeds {
			iv := stats.ConfidenceInterval(maxima, level)
			if iv.WithinRelative(relWidth) {
				sort.Ints(raw)
				return iv, raw, nil
			}
		}
	}
	iv := stats.ConfidenceInterval(maxima, level)
	sort.Ints(raw)
	return iv, raw, nil
}
