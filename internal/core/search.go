package core

import (
	"fmt"
	"sort"
	"sync"

	"spiffi/internal/stats"
)

// SearchOptions controls the max-terminals search (§7.1: "increase the
// number of terminals until the number of glitches becomes non-zero").
type SearchOptions struct {
	// Lo and Hi bracket the search; Hi is a hard cap. Zero values pick
	// defaults scaled to the configuration's disk count.
	Lo, Hi int
	// Step is the search resolution in terminals (the paper quotes its
	// answers at ~5-terminal precision).
	Step int
	// Seeds are the replication seeds; a terminal count passes only if
	// every seed's run is glitch-free.
	Seeds []uint64
	// Trace, if non-nil, receives one line per consumed run, in the
	// order the sequential search would have executed them.
	Trace func(format string, args ...any)
}

// withDefaults fills unset options. The default bracket assumes roughly
// 5-20 terminals per disk, which safely covers every paper configuration.
func (o SearchOptions) withDefaults(cfg Config) SearchOptions {
	if o.Step <= 0 {
		o.Step = 5
	}
	if o.Lo <= 0 {
		o.Lo = o.Step
	}
	if o.Hi <= 0 {
		o.Hi = 40 * cfg.TotalDisks()
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{cfg.Seed}
	}
	o.Lo = o.Lo / o.Step * o.Step
	if o.Lo < o.Step {
		o.Lo = o.Step
	}
	return o
}

// SearchResult reports a search outcome.
type SearchResult struct {
	// MaxTerminals is the largest evaluated count with zero glitches in
	// every replication — the paper's headline metric.
	MaxTerminals int
	// Runs counts the simulation executions consumed by the search's
	// decision process. The parallel search consumes evaluations in
	// exactly the sequential order, so Runs — like MaxTerminals and
	// AtMax — is identical for every worker count.
	Runs int
	// TotalRuns additionally counts speculative executions the decision
	// path never consumed: parallel probes that lost the race and seed
	// replications past a count's first failure. TotalRuns equals Runs
	// on a 1-worker runner and may exceed it otherwise.
	TotalRuns int
	// AtMax holds the metrics of the passing runs at MaxTerminals, one
	// per seed (utilization figures for the scaleup experiments).
	AtMax []Metrics
}

// evalOutcome is the cached verdict for one terminal count. The
// "consumed" view — pass/err plus the prefix of per-seed runs the
// sequential search would have executed before deciding — is fixed at
// execution time, so a count evaluated speculatively yields the same
// verdict, trace lines and Runs increment when (if ever) the decision
// path reaches it.
type evalOutcome struct {
	pass    bool
	ms      []Metrics // all-seed metrics when passing, nil otherwise
	traced  []Metrics // consumed prefix, for trace replay and Runs
	err     error     // error the sequential search would hit, if any
	counted bool      // consumed prefix already added to res.Runs
}

// searcher runs one FindMaxTerminals search: the decision logic walks
// counts strictly sequentially, while ensure() lets the phases warm the
// cache with speculative probes evaluated concurrently on the Runner.
type searcher struct {
	r        *Runner
	cfg      Config
	opt      SearchOptions
	res      SearchResult
	cache    map[int]*evalOutcome
	executed int
}

func (s *searcher) config(terminals int, seed uint64) Config {
	c := s.cfg
	c.Seed = seed
	c.Terminals = terminals
	return c
}

// fold derives a count's outcome from per-seed results supplied in seed
// order, replaying the sequential decision: stop at the first error or
// first glitching seed, pass only if every seed is glitch-free.
func (s *searcher) fold(terminals int, get func(j int) (Metrics, error)) *evalOutcome {
	out := &evalOutcome{}
	for j, seed := range s.opt.Seeds {
		m, err := get(j)
		if err != nil {
			out.err = fmt.Errorf("run(terminals=%d seed=%d): %w", terminals, seed, err)
			break
		}
		out.traced = append(out.traced, m)
		if !m.GlitchFree() {
			break
		}
		out.ms = append(out.ms, m)
	}
	out.pass = out.err == nil && len(out.ms) == len(s.opt.Seeds)
	if !out.pass {
		out.ms = nil
	}
	return out
}

// ensure evaluates every uncached count in the list, concurrently when
// the pool allows. It performs no decision-making and no accounting
// against the consumed-run trace; counts the decision path never visits
// stay speculative.
func (s *searcher) ensure(counts []int) {
	var fresh []int
	for _, t := range counts {
		if _, ok := s.cache[t]; ok {
			continue
		}
		dup := false
		for _, f := range fresh {
			if f == t {
				dup = true
				break
			}
		}
		if !dup {
			fresh = append(fresh, t)
		}
	}
	if len(fresh) == 0 {
		return
	}
	seeds := s.opt.Seeds
	if s.r.workers == 1 {
		// Execute lazily, seed by seed: fold's short-circuit then skips
		// a count's remaining seeds after its first failure, so a
		// 1-worker searcher performs exactly the sequential run set.
		for _, t := range fresh {
			s.cache[t] = s.fold(t, func(j int) (Metrics, error) {
				s.executed++
				return Run(s.config(t, seeds[j]))
			})
		}
		return
	}
	cfgs := make([]Config, 0, len(fresh)*len(seeds))
	for _, t := range fresh {
		for _, seed := range seeds {
			cfgs = append(cfgs, s.config(t, seed))
		}
	}
	ms, errs := s.r.runAll(cfgs)
	s.executed += len(cfgs)
	for i, t := range fresh {
		base := i * len(seeds)
		s.cache[t] = s.fold(t, func(j int) (Metrics, error) {
			return ms[base+j], errs[base+j]
		})
	}
}

// eval consumes the verdict for a count: on first consumption its run
// prefix is charged to Runs and traced, exactly as the sequential search
// would have done at this point in the walk.
func (s *searcher) eval(terminals int) (bool, error) {
	out, ok := s.cache[terminals]
	if !ok {
		s.ensure([]int{terminals})
		out = s.cache[terminals]
	}
	if !out.counted {
		out.counted = true
		s.res.Runs += len(out.traced)
		if s.opt.Trace != nil {
			for j, m := range out.traced {
				s.opt.Trace("  eval terminals=%d seed=%d glitches=%d started=%v",
					terminals, s.opt.Seeds[j], m.Glitches, m.Started)
			}
		}
	}
	if out.err != nil {
		return false, out.err
	}
	return out.pass, nil
}

// growChain predicts the next doubling probes assuming each one passes.
// Lookahead is capped: probes past the first failing doubling are pure
// waste, and the deeper the chain the bigger (and costlier) the runs, so
// speculating more than a few doublings ahead loses more than it wins.
func growChain(cur, hi, width int) []int {
	if width > 4 {
		width = 4
	}
	var out []int
	for len(out) < width {
		next := cur * 2
		if next > hi {
			next = hi
		}
		if next == cur {
			break
		}
		out = append(out, next)
		cur = next
	}
	return out
}

// downChain predicts the next scan-down probes assuming each one fails.
func downChain(lo, step, width int) []int {
	var out []int
	for len(out) < width && lo > step {
		lo -= step
		out = append(out, lo)
	}
	return out
}

// midTree collects the bisection decision tree: the next midpoint, then
// both midpoints that could follow it, and so on. Whichever way the
// verdicts fall, the consumed path is a root-to-leaf walk of this tree.
// Depth is capped at 2 (the midpoint plus both possible successors):
// only one root-to-leaf path is ever consumed, so a depth-d tree wastes
// 2^d-1-d of its evaluations, and past depth 2 the waste outgrows the
// extra overlap.
func midTree(lo, hi, step, budget int) []int {
	depth := 0
	for (1<<(depth+1))-1 <= budget {
		depth++
	}
	if depth > 2 {
		depth = 2
	}
	var out []int
	var collect func(lo, hi, d int)
	collect = func(lo, hi, d int) {
		if d == 0 || hi-lo <= step {
			return
		}
		mid := (lo + hi) / 2 / step * step
		if mid <= lo || mid >= hi {
			return
		}
		out = append(out, mid)
		collect(lo, mid, d-1)
		collect(mid, hi, d-1)
	}
	collect(lo, hi, depth)
	return out
}

// FindMaxTerminals binary-searches the largest glitch-free terminal
// count on the Step lattice, evaluating speculative probes concurrently
// when the pool has idle workers. The result — including Runs — is
// bit-identical for every worker count.
func (r *Runner) FindMaxTerminals(cfg Config, opt SearchOptions) (SearchResult, error) {
	opt = opt.withDefaults(cfg)
	s := &searcher{r: r, cfg: cfg, opt: opt, cache: map[int]*evalOutcome{}}
	err := s.search()
	s.res.TotalRuns = s.executed
	return s.res, err
}

func (s *searcher) search() error {
	opt := s.opt
	width := s.r.specWidth(len(opt.Seeds))

	// Establish a failing upper bound and a passing lower bound.
	lo, hi := opt.Lo, opt.Hi/opt.Step*opt.Step
	okLo, err := s.eval(lo)
	if err != nil {
		return err
	}
	if !okLo {
		// Even the lower bound glitches: scan down to the floor,
		// speculatively probing the next few lattice points down.
		for lo > opt.Step {
			if width > 1 {
				s.ensure(downChain(lo, opt.Step, width))
			}
			lo -= opt.Step
			ok, err := s.eval(lo)
			if err != nil {
				return err
			}
			if ok {
				break
			}
		}
		if !s.cache[lo].pass {
			s.res.MaxTerminals = 0
			return nil
		}
		hi = lo + opt.Step
	} else {
		// Grow exponentially until failure or cap, speculatively
		// evaluating the next few doublings.
		cur := lo
		for {
			if width > 1 {
				s.ensure(growChain(cur, hi, width))
			}
			next := cur * 2
			if next > hi {
				next = hi
			}
			if next == cur {
				// Passed at the cap.
				s.res.MaxTerminals = cur
				s.res.AtMax = s.cache[cur].ms
				return nil
			}
			ok, err := s.eval(next)
			if err != nil {
				return err
			}
			if !ok {
				lo, hi = cur, next
				break
			}
			cur = next
			if cur >= hi {
				s.res.MaxTerminals = cur
				s.res.AtMax = s.cache[cur].ms
				return nil
			}
		}
	}

	// Bisect (lo passes, hi fails) on the Step lattice, speculatively
	// evaluating the tree of midpoints the walk could visit next.
	for hi-lo > opt.Step {
		if width > 1 {
			s.ensure(midTree(lo, hi, opt.Step, width))
		}
		mid := (lo + hi) / 2 / opt.Step * opt.Step
		if mid <= lo || mid >= hi {
			break
		}
		ok, err := s.eval(mid)
		if err != nil {
			return err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	s.res.MaxTerminals = lo
	s.res.AtMax = s.cache[lo].ms
	return nil
}

// FindMaxTerminals binary-searches the largest glitch-free terminal
// count on the Step lattice, one run at a time.
func FindMaxTerminals(cfg Config, opt SearchOptions) (SearchResult, error) {
	return NewRunner(1).FindMaxTerminals(cfg, opt)
}

// GlitchCurve evaluates glitch counts over a set of terminal counts —
// the raw data behind the paper's Figure 9 — running the points
// concurrently. Results are keyed to the counts, so the curve is
// identical for every worker count.
func (r *Runner) GlitchCurve(cfg Config, counts []int) (map[int]int64, error) {
	cfgs := make([]Config, len(counts))
	for i, t := range counts {
		c := cfg
		c.Terminals = t
		cfgs[i] = c
	}
	ms, errs := r.runAll(cfgs)
	out := make(map[int]int64, len(counts))
	for i, t := range counts {
		if errs[i] != nil {
			return nil, errs[i]
		}
		g := ms[i].Glitches
		if !ms[i].Started {
			g = -1
		}
		out[t] = g
	}
	return out, nil
}

// GlitchCurve evaluates glitch counts over a set of terminal counts,
// one run at a time.
func GlitchCurve(cfg Config, counts []int) (map[int]int64, error) {
	return NewRunner(1).GlitchCurve(cfg, counts)
}

// ConfidentMax applies the paper's §7.1 stopping rule: independent
// per-seed searches are added until the Student-t interval of the
// per-seed maxima is within relWidth of the mean at the given confidence
// level (paper: 0.90 level, 0.05 relative width), or maxSeeds is
// reached. It returns the mean estimate, the interval, and all per-seed
// maxima.
//
// The first minSeeds searches — which the stopping rule always needs
// before it can first fire — run concurrently; any further seeds are
// added one at a time. The stopping decision scans seeds in order, so
// the interval and maxima match sequential execution exactly.
func (r *Runner) ConfidentMax(cfg Config, opt SearchOptions, level, relWidth float64, minSeeds, maxSeeds int) (stats.Interval, []int, error) {
	if minSeeds < 2 {
		minSeeds = 2
	}
	searchSeed := func(s int) (SearchResult, error) {
		o := opt
		o.Seeds = []uint64{cfg.Seed + uint64(s)*7919}
		return r.FindMaxTerminals(cfg, o)
	}
	prefix := 0
	var pre []SearchResult
	var preErr []error
	if r.workers > 1 {
		prefix = minSeeds
		if prefix > maxSeeds {
			prefix = maxSeeds
		}
		pre = make([]SearchResult, prefix)
		preErr = make([]error, prefix)
		var wg sync.WaitGroup
		for i := 0; i < prefix; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				pre[i], preErr[i] = searchSeed(i)
			}(i)
		}
		wg.Wait()
	}
	var maxima []float64
	var raw []int
	for s := 0; s < maxSeeds; s++ {
		var sr SearchResult
		var err error
		if s < prefix {
			sr, err = pre[s], preErr[s]
		} else {
			sr, err = searchSeed(s)
		}
		if err != nil {
			return stats.Interval{}, nil, err
		}
		maxima = append(maxima, float64(sr.MaxTerminals))
		raw = append(raw, sr.MaxTerminals)
		if len(maxima) >= minSeeds {
			iv := stats.ConfidenceInterval(maxima, level)
			if iv.WithinRelative(relWidth) {
				sort.Ints(raw)
				return iv, raw, nil
			}
		}
	}
	iv := stats.ConfidenceInterval(maxima, level)
	sort.Ints(raw)
	return iv, raw, nil
}

// ConfidentMax applies the §7.1 stopping rule one search at a time.
func ConfidentMax(cfg Config, opt SearchOptions, level, relWidth float64, minSeeds, maxSeeds int) (stats.Interval, []int, error) {
	return NewRunner(1).ConfidentMax(cfg, opt, level, relWidth, minSeeds, maxSeeds)
}
