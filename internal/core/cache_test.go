package core

import (
	"reflect"
	"testing"

	"spiffi/internal/cache"
	"spiffi/internal/sim"
	"spiffi/internal/trace"
)

// A cache config with options set but a zero budget is disabled and
// must reproduce the cache-less build bit for bit: same pool size, no
// merge coordinator, identical Metrics.
func TestCacheZeroBudgetInert(t *testing.T) {
	base := func() Config {
		cfg := DefaultConfig(8)
		cfg.Nodes = 2
		cfg.DisksPerNode = 2
		cfg.VideosPerDisk = 1
		cfg.Video.Length = sim.Minute
		cfg.ServerMemBytes = 32 * MB
		cfg.StartWindow = 10 * sim.Second
		cfg.MeasureTime = 40 * sim.Second
		return cfg
	}
	run := func(cfg Config) Metrics {
		s, err := NewSimulation(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	plain := run(base())
	cfg := base()
	cfg.Cache = cache.Config{Policy: cache.PolicyLRU, PrefixBlocks: 5, BudgetBytes: 0}
	disabled := run(cfg)
	if !reflect.DeepEqual(plain, disabled) {
		t.Fatalf("zero-budget cache config perturbed the run:\nplain:    %+v\ndisabled: %+v", plain, disabled)
	}
	if plain.CacheSeen() {
		t.Fatalf("cache counters nonzero without a cache: %+v", plain)
	}
}

// mergeConfig builds a two-terminal system where both terminals pick
// the same movie (extreme skew over two videos), so the second viewer
// merges onto the first one's in-flight stream.
func mergeConfig() Config {
	cfg := DefaultConfig(2)
	cfg.Nodes = 2
	cfg.DisksPerNode = 1
	cfg.VideosPerDisk = 1
	cfg.ZipfZ = 8
	cfg.RandomInitialPosition = false
	cfg.Video.Length = 90 * sim.Second
	cfg.ServerMemBytes = 48 * MB
	cfg.TerminalMemBytes = 8 * MB
	cfg.StartWindow = 10 * sim.Second
	cfg.MeasureTime = 150 * sim.Second
	cfg.Cache = cache.Config{BudgetBytes: 16 * MB, Policy: cache.PolicyZipfRank, PrefixBlocks: 16}
	return cfg
}

// Stream-merge correctness: the merged terminal plays every movie to
// completion without a glitch, receives no block twice (a duplicate
// would count as a stale drop), and the merged span's disk reads are
// issued once — proved from the trace: between the join and the
// follower's next session start it sends the server no block request
// for the merged video at all, so the only disk stream reading those
// blocks is the leader's.
func TestStreamMergeCorrectness(t *testing.T) {
	cfg := mergeConfig()
	cfg.Trace = trace.Options{Enabled: true, Capacity: 1 << 18}
	s, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Merges < 1 {
		t.Fatalf("no merge happened: %+v", m)
	}
	if m.Glitches != 0 {
		t.Fatalf("merged playback glitched %d times", m.Glitches)
	}
	if m.StaleDrops != 0 {
		t.Fatalf("stale drops %d: a merged follower received data twice or late", m.StaleDrops)
	}
	if m.MoviesCompleted < 2 {
		t.Fatalf("movies completed = %d, want both terminals to finish", m.MoviesCompleted)
	}
	if m.MergedBlocks < 30 {
		t.Fatalf("merged blocks = %d, want the follower fed off the leader's stream", m.MergedBlocks)
	}
	var joins int
	var join *trace.Event
	for i := range m.Trace.Events {
		if m.Trace.Events[i].Kind == trace.KindMergeJoin {
			if join == nil {
				join = &m.Trace.Events[i]
			}
			joins++
		}
	}
	if int64(joins) != m.Merges {
		t.Fatalf("trace join events = %d, metrics merges = %d", joins, m.Merges)
	}

	// The follower's ride on the first merged stream spans from the
	// join to its next session start (its first prime after the join is
	// the merged movie's own playback start; the second is the next
	// movie's). Inside that span the follower must never touch the
	// server for the merged video: its prefix plays out of the node
	// caches and everything from the join point on arrives forwarded
	// off the leader's in-flight stream, so the merged span's disk
	// reads are the leader's, issued once. A pool reference by the
	// follower would mean it fell back to fetching for itself.
	fid, video := join.Terminal, int(join.B)
	end := sim.Time(1) << 62
	primes := 0
	for _, ev := range m.Trace.Events {
		if ev.Terminal != fid || ev.T <= join.T {
			continue
		}
		if ev.Kind == trace.KindTermPrime {
			if primes++; primes == 2 {
				end = ev.T
				break
			}
		}
	}
	for _, ev := range m.Trace.Events {
		if ev.Terminal != fid || ev.T < join.T || ev.T >= end {
			continue
		}
		if (ev.Kind == trace.KindPoolHit || ev.Kind == trace.KindPoolMiss) && int(ev.B) == video {
			t.Fatalf("follower %d fetched video %d block %d from the server at %v while merged",
				fid, video, ev.C, ev.T)
		}
	}
}
