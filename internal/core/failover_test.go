package core_test

import (
	"testing"

	"spiffi/internal/core"
	"spiffi/internal/experiments"
	"spiffi/internal/sim"
)

// A crashed node with cross-node mirroring and failover enabled: every
// session the crash impacts redirects to the survivors' mirror copies
// and recovers, with its failover latency measured; nothing is lost even
// though the node never restarts.
func TestFailoverRecoversCrashedNodeSessions(t *testing.T) {
	m, err := experiments.FailoverProbe(true, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Started {
		t.Fatal("never started")
	}
	if m.Nodes.Crashes == 0 || m.Nodes.DroppedReqs == 0 {
		t.Fatalf("crashed node dropped nothing silently: crashes=%d dropped req=%d reply=%d",
			m.Nodes.Crashes, m.Nodes.DroppedReqs, m.Nodes.DroppedReplies)
	}
	if m.NodeSuspects == 0 {
		t.Fatalf("timeouts never tripped node suspicion: %+v", m)
	}
	if m.SessionsImpacted == 0 {
		t.Fatalf("crash impacted no sessions: %+v", m)
	}
	if m.SessionsRecovered != m.SessionsImpacted || m.SessionsLost != 0 {
		t.Fatalf("impacted=%d recovered=%d lost=%d, want full recovery",
			m.SessionsImpacted, m.SessionsRecovered, m.SessionsLost)
	}
	if m.FailoverRedirects == 0 {
		t.Fatal("no fetches were redirected to mirror copies")
	}
	if m.FailoverLatAvg <= 0 || m.FailoverLatMax < m.FailoverLatAvg {
		t.Fatalf("failover latency unmeasured: avg=%v max=%v", m.FailoverLatAvg, m.FailoverLatMax)
	}
}

// The same crash with failover disabled: the watchdog accounting still
// sees the impacted sessions, but nothing redirects proactively, so with
// the node never restarting every impacted session ends the run lost.
func TestFailoverDisabledReportsSessionsLost(t *testing.T) {
	m, err := experiments.FailoverProbe(true, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Started {
		t.Fatal("never started")
	}
	if m.SessionsImpacted == 0 {
		t.Fatalf("crash impacted no sessions: %+v", m)
	}
	if m.SessionsRecovered != 0 || m.SessionsLost != m.SessionsImpacted {
		t.Fatalf("impacted=%d recovered=%d lost=%d, want all lost without failover",
			m.SessionsImpacted, m.SessionsRecovered, m.SessionsLost)
	}
	if m.FailoverRedirects != 0 || m.FailoverReadmits != 0 {
		t.Fatalf("failover machinery ran while disabled: redirects=%d readmits=%d",
			m.FailoverRedirects, m.FailoverReadmits)
	}
}

// Intra-node chained mirroring is useless against a whole-node crash —
// the mirror of a dead node's disk lives on the same dead node — so
// recovery waits for the node itself to restart and rejoin.
func TestIntraNodeMirrorRecoversOnlyAfterRestart(t *testing.T) {
	m, err := experiments.FailoverProbe(false, true, 20*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Started {
		t.Fatal("never started")
	}
	if m.SessionsImpacted == 0 {
		t.Fatalf("crash impacted no sessions: %+v", m)
	}
	if m.SessionsRecovered == 0 {
		t.Fatalf("restart recovered nothing: %+v", m)
	}
	if m.NodeRejoins == 0 {
		t.Fatalf("restart never cleared suspicion: suspects=%d rejoins=%d",
			m.NodeSuspects, m.NodeRejoins)
	}
	// Recovery had to wait out the restart, not just the redirect delay.
	if m.FailoverLatMax < 10*sim.Second {
		t.Fatalf("recovery latency %v too short for a 20s restart", m.FailoverLatMax)
	}
}

// crossRebuildCfg is the satellite scenario's base: a 2-node system with
// cross-node mirroring, so a repaired disk's rebuild reads its healthy
// copies from the *other* node.
func crossRebuildCfg() core.Config {
	cfg := core.DefaultConfig(8)
	cfg.Nodes = 2
	cfg.DisksPerNode = 2
	cfg.VideosPerDisk = 1
	cfg.Video.Length = sim.Minute
	cfg.ServerMemBytes = 16 * core.MB
	cfg.StartWindow = 10 * sim.Second
	cfg.MeasureTime = 80 * sim.Second
	cfg.StartupGrace = 5 * sim.Minute
	cfg.ReplicateVideos = true
	cfg.MirrorCrossNode = true
	cfg.RequestTimeout = 2 * sim.Second
	cfg.MaxRetries = 3
	cfg.RetryBackoff = 50 * sim.Millisecond
	// Slow enough that the rebuild is still in flight when the source
	// node crashes, fast enough that the baseline finishes in-window.
	cfg.Overload.RebuildRate = 4 * core.MB
	return cfg
}

// A node crash that takes out the rebuild's source mid-rebuild: the
// rebuilder parks (every copy read fails against the dead node's disks)
// and the redundancy window stays open for the rest of the run, instead
// of a bogus "window closed" with stale blocks still unrebuilt.
func TestNodeCrashParksInProgressRebuild(t *testing.T) {
	run := func(crashSource bool) core.Metrics {
		s, err := core.NewSimulation(crossRebuildCfg())
		if err != nil {
			t.Fatal(err)
		}
		// Disk 0 (node 0) fail-stops and repairs; its stale copies rebuild
		// from disk 2 (node 1) under cross-node mirroring.
		s.ScheduleDiskFailStop(0, sim.Time(30*sim.Second), 5*sim.Second)
		if crashSource {
			s.ScheduleNodeCrash(1, sim.Time(37*sim.Second), 0)
		}
		m, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !m.Started {
			t.Fatal("never started")
		}
		return m
	}
	base := run(false)
	if base.RebuildWindows == 0 {
		t.Fatalf("baseline rebuild never closed its window: %+v", base)
	}
	crashed := run(true)
	if crashed.RebuildWindows != 0 {
		t.Fatalf("rebuild claimed %d closed windows with its source node dead",
			crashed.RebuildWindows)
	}
	if crashed.RebuiltBlocks >= base.RebuiltBlocks {
		t.Fatalf("parked rebuild copied %d blocks, baseline %d",
			crashed.RebuiltBlocks, base.RebuiltBlocks)
	}
}
