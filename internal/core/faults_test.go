package core_test

import (
	"reflect"
	"testing"

	"spiffi/internal/core"
	"spiffi/internal/sim"
)

// faultyConfig is the tiny system with every fault class enabled at
// rates high enough to fire several times inside the one-minute window.
func faultyConfig(terminals int) core.Config {
	cfg := tinyConfig(terminals)
	cfg.Faults.DiskSlowRate = 30 // per disk-hour
	cfg.Faults.DiskFailRate = 60
	cfg.Faults.DiskRepairTime = 5 * sim.Second
	cfg.Faults.NodeCrashRate = 30
	cfg.Faults.NodeRestartTime = 4 * sim.Second
	cfg.Faults.NetLossProb = 0.01
	cfg.Faults.NetJitterMax = 2 * sim.Millisecond
	cfg.ReplicateVideos = true
	return cfg
}

// A seeded run with nonzero fault rates must be bit-for-bit
// reproducible: every metric, including the kernel event count.
func TestFaultRunDeterministic(t *testing.T) {
	run := func() core.Metrics {
		m, err := core.Run(faultyConfig(24))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical faulty seeds diverged:\n%+v\n%+v", a, b)
	}
	if !a.FaultsSeen() {
		t.Fatalf("fault config injected nothing: %+v", a)
	}
}

// Arming the retry machinery without any faults must not change what
// the system does — only add (never-firing) timers. Simulated results
// are identical to the bare run except for the kernel event count.
func TestRetryMachineryIdleWithoutFaults(t *testing.T) {
	bare, err := core.Run(tinyConfig(24))
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig(24)
	cfg.RequestTimeout = 2 * sim.Second
	cfg.MaxRetries = 3
	cfg.RetryBackoff = 100 * sim.Millisecond
	armed, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if armed.Retries != 0 || armed.Timeouts != 0 || armed.Nacks != 0 || armed.LostBlocks != 0 {
		t.Fatalf("retry machinery fired without faults: %+v", armed)
	}
	// The timers add kernel events but must not perturb the simulation.
	armed.Events = bare.Events
	if !reflect.DeepEqual(bare, armed) {
		t.Fatalf("idle retry machinery changed results:\n%+v\n%+v", bare, armed)
	}
}

// A scripted fail-stop of one disk mid-window, with no replica: the
// NACK/retry path runs and gives up, every loss is attributed to the
// disk failure, and the repair restores service (nonzero downtime).
func TestScriptedDiskFailStop(t *testing.T) {
	cfg := tinyConfig(24)
	cfg.RequestTimeout = 2 * sim.Second
	cfg.MaxRetries = 2
	cfg.RetryBackoff = 50 * sim.Millisecond
	s, err := core.NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.ScheduleDiskFailStop(0, sim.Time(30*sim.Second), 10*sim.Second)
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !m.Started {
		t.Fatal("never started")
	}
	if m.DiskFailStops != 1 {
		t.Fatalf("fail-stops = %d, want 1", m.DiskFailStops)
	}
	if m.Nacks == 0 || m.Retries == 0 {
		t.Fatalf("dead disk produced no NACK/retry traffic: %+v", m)
	}
	if m.LostBlocks == 0 || m.GlitchesDiskFail == 0 {
		t.Fatalf("unmirrored failure lost nothing: lost=%d glitches=%d", m.LostBlocks, m.GlitchesDiskFail)
	}
	if m.GlitchesTimeout != 0 {
		t.Fatalf("NACKs misattributed to timeouts: %d", m.GlitchesTimeout)
	}
	if m.DiskDownTime < 9*sim.Second || m.DiskDownTime > 11*sim.Second {
		t.Fatalf("downtime = %v, want ~10s", m.DiskDownTime)
	}
}

// The same failure with a mirrored layout: retries fail over to the
// replica disk, so the viewer loses nothing.
func TestMirroredFailoverMasksDiskFailure(t *testing.T) {
	cfg := tinyConfig(24)
	cfg.ReplicateVideos = true
	cfg.RequestTimeout = 2 * sim.Second
	cfg.MaxRetries = 2
	cfg.RetryBackoff = 50 * sim.Millisecond
	s, err := core.NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.ScheduleDiskFailStop(0, sim.Time(30*sim.Second), 10*sim.Second)
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Nacks == 0 || m.Retries == 0 {
		t.Fatalf("no failover traffic: %+v", m)
	}
	if m.LostBlocks != 0 {
		t.Fatalf("mirrored layout lost %d blocks", m.LostBlocks)
	}
	if m.Glitches != 0 {
		t.Fatalf("mirrored failover glitched %d times", m.Glitches)
	}
}

// A scripted node crash: requests are dropped silently, terminals ride
// timeouts to retries, and the node's disks recover with it.
func TestScriptedNodeCrash(t *testing.T) {
	cfg := tinyConfig(24)
	cfg.ReplicateVideos = true
	cfg.RequestTimeout = 500 * sim.Millisecond
	cfg.MaxRetries = 3
	cfg.RetryBackoff = 50 * sim.Millisecond
	s, err := core.NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.ScheduleNodeCrash(0, sim.Time(30*sim.Second), 5*sim.Second)
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", m.Nodes.Crashes)
	}
	if m.Nodes.Dropped == 0 {
		t.Fatal("dead node dropped no requests")
	}
	if m.Timeouts == 0 || m.Retries == 0 {
		t.Fatalf("silence produced no timeouts/retries: %+v", m)
	}
	if m.Nacks != 0 {
		t.Fatalf("a dead node must be silent, got %d NACKs", m.Nacks)
	}
	// Both local disks fail-stop with the node and repair with it.
	if m.DiskFailStops != 2 {
		t.Fatalf("fail-stops = %d, want 2 (both local disks)", m.DiskFailStops)
	}
	if m.DiskDownTime < 9*sim.Second || m.DiskDownTime > 11*sim.Second {
		t.Fatalf("disk downtime = %v, want ~2x5s", m.DiskDownTime)
	}
}

// Underrun glitches during a stall record a recovery time once the
// stream resumes (mean time to recover). Lost blocks never stall — the
// frontier rides over the hole — so the stall must come from delayed,
// not lost, data: a deep transient slowdown.
func TestRecoveryTimeRecorded(t *testing.T) {
	cfg := tinyConfig(32)
	s, err := core.NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.ScheduleDiskFault(0, sim.Time(30*sim.Second), 10, 20*sim.Second)
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.GlitchesUnderrun == 0 {
		t.Fatalf("deep slowdown caused no underruns: %+v", m)
	}
	if m.Recoveries == 0 || m.MTTRAvg <= 0 || m.MTTRMax < m.MTTRAvg {
		t.Fatalf("recovery accounting broken: recoveries=%d avg=%v max=%v",
			m.Recoveries, m.MTTRAvg, m.MTTRMax)
	}
}

// Network loss alone — no disk or node faults — is healed by the retry
// machinery: timeouts and retries happen, NACKs never do.
func TestNetworkLossHealedByRetries(t *testing.T) {
	cfg := tinyConfig(16)
	cfg.Faults.NetLossProb = 0.02
	cfg.Faults.NetJitterMax = sim.Millisecond
	m, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.NetDropped == 0 {
		t.Fatal("lossy network dropped nothing")
	}
	if m.Timeouts == 0 || m.Retries == 0 {
		t.Fatalf("losses never timed out/retried: %+v", m)
	}
	if m.Nacks != 0 {
		t.Fatalf("loss produced NACKs: %d", m.Nacks)
	}
}

func TestFaultConfigValidation(t *testing.T) {
	bad := []func(*core.Config){
		func(c *core.Config) { c.Faults.DiskFailRate = -1 },
		func(c *core.Config) { c.Faults.NetLossProb = 1.5 },
		func(c *core.Config) { c.Faults.NetJitterMax = -sim.Second },
		func(c *core.Config) { c.Faults.DiskSlowRate = 1; c.Faults.DiskSlowFactor = 0.5 },
		func(c *core.Config) { c.RequestTimeout = sim.Second; c.MaxRetries = 2; c.RetryBackoff = 0 },
		func(c *core.Config) { c.MaxRetries = -1 },
		func(c *core.Config) { c.Nodes = 1; c.DisksPerNode = 1; c.ReplicateVideos = true },
	}
	for i, mutate := range bad {
		cfg := tinyConfig(10)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
	// A bare fault config normalizes to a valid retry setup.
	cfg := faultyConfig(10)
	if err := cfg.Normalize().Validate(); err != nil {
		t.Fatalf("faulty config invalid after Normalize: %v", err)
	}
}
