package core

import (
	"runtime"
	"sync"
)

// Runner evaluates independent simulations concurrently on a bounded
// worker pool. The paper's §7 methodology is embarrassingly parallel —
// every figure sweeps independent (config, seed) runs — and each run
// owns its own kernel and derived rng streams (the only cross-run state,
// the shared MPEG library cache, is immutable after generation), so runs
// may execute in any order on any number of OS threads.
//
// Every result a Runner produces is bit-identical to sequential
// execution: results are keyed to (config, seed) rather than completion
// order, and search decisions consume evaluations in exactly the
// sequential order. Extra workers only add *speculative* evaluations
// (parallel search probes, seed replications past a count's first
// failure) whose outcomes the decision path may discard.
//
// The pool bounds concurrent simulation executions, not goroutines:
// nested fan-out (a sweep of searches, each search probing in parallel)
// shares one semaphore, so total simulation concurrency never exceeds
// Workers however deep the nesting.
type Runner struct {
	workers int
	sem     chan struct{}
}

// NewRunner returns a pool executing at most `workers` simulations
// concurrently; workers <= 0 selects GOMAXPROCS. A 1-worker runner
// executes exactly the sequential evaluation set — no speculation.
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers, sem: make(chan struct{}, workers)}
}

// Workers returns the pool size.
func (r *Runner) Workers() int { return r.workers }

// Run executes one simulation under the pool's concurrency limit.
func (r *Runner) Run(cfg Config) (Metrics, error) {
	r.sem <- struct{}{}
	defer func() { <-r.sem }()
	return Run(cfg)
}

// runAll executes every configuration on the pool and returns results
// and errors by index. It never short-circuits: determinism requires
// consuming outcomes in a fixed order, not completion order, so error
// policy is the caller's.
func (r *Runner) runAll(cfgs []Config) ([]Metrics, []error) {
	ms := make([]Metrics, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i := range cfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ms[i], errs[i] = r.Run(cfgs[i])
		}(i)
	}
	wg.Wait()
	return ms, errs
}

// RunMany executes every configuration concurrently; out[i] is cfgs[i]'s
// metrics. On error it returns the first error in index order — the same
// error a sequential loop over cfgs would have returned.
func (r *Runner) RunMany(cfgs []Config) ([]Metrics, error) {
	ms, errs := r.runAll(cfgs)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return ms, nil
}

// specWidth returns how many search probes are worth evaluating
// speculatively: enough concurrent probes to fill the pool given that
// each probe replicates over `seeds` runs. One worker means no
// speculation, reproducing the sequential search's exact execution set.
func (r *Runner) specWidth(seeds int) int {
	if seeds < 1 {
		seeds = 1
	}
	w := r.workers / seeds
	if w < 1 {
		w = 1
	}
	return w
}
