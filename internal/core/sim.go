package core

import (
	"spiffi/internal/admission"
	"spiffi/internal/cache"
	"spiffi/internal/disk"
	"spiffi/internal/faults"
	"spiffi/internal/layout"
	"spiffi/internal/mpeg"
	"spiffi/internal/network"
	"spiffi/internal/overload"
	"spiffi/internal/proto"
	"spiffi/internal/rng"
	"spiffi/internal/server"
	"spiffi/internal/sim"
	"spiffi/internal/stats"
	"spiffi/internal/terminal"
	"spiffi/internal/trace"
	"spiffi/internal/workload"
)

// Simulation is one assembled run of the SPIFFI system.
type Simulation struct {
	cfg   Config
	k     *sim.Kernel
	lib   *mpeg.Library
	place *layout.Placement
	net   *network.Network
	nodes []*server.Node
	terms []*terminal.Terminal
	piggy *piggyCoordinator
	rec   *trace.Recorder // nil unless cfg.Trace.Enabled

	// Prefix-cache tier (CACHING.md); both nil unless cfg.Cache is
	// enabled.
	caches []*cache.Cache // one per node
	merge  *mergeCoordinator

	// Overload-control subsystem; all nil unless cfg.Overload asks for
	// the corresponding mechanism.
	adm  *admission.Controller
	over *overload.Controller
	reb  *overload.Rebuilder

	// health is the shared node-suspicion tracker; nil unless failover
	// timeouts are configured (SuspectThreshold > 0).
	health *terminal.NodeHealth

	// Workload scenario (WORKLOADS.md); wl is nil-safe and disabled
	// unless cfg.Workload has phases. phaseStats accumulates the
	// per-phase degradation surface; wlPrev is the counter snapshot at
	// the open segment's start.
	wl         *workload.Schedule
	phaseStats []PhaseMetrics
	wlPrev     wlCounters

	startedCount int
	measuring    bool
	measureStart sim.Time

	// respHist observes every measured block round trip, at millisecond
	// base resolution over 20 power-of-two buckets (1 ms .. ~17 minutes).
	respHist *stats.Histogram
}

// NewSimulation validates, normalizes and assembles a simulation.
func NewSimulation(cfg Config) (*Simulation, error) {
	cfg = cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulation{
		cfg:      cfg,
		k:        sim.NewKernel(),
		respHist: stats.NewHistogram(0.001, 20),
	}
	// nil when tracing is off; every emit below is a nil-safe no-op then.
	s.rec = trace.NewRecorder(s.k, cfg.Trace)
	root := rng.New(cfg.Seed)

	// Video library: content depends only on LibrarySeed, so every run
	// of a sweep replays the identical catalog (§6.1) and the generated
	// frame tables are shared process-wide.
	s.lib = mpeg.SharedLibrary(cfg.Video, cfg.NumVideos(), cfg.LibrarySeed)
	sizes := make([]int64, cfg.NumVideos())
	for i := range sizes {
		sizes[i] = s.lib.Get(i).TotalBytes()
	}
	if cfg.Striped {
		s.place = layout.NewStriped(sizes, cfg.StripeBytes, cfg.Nodes, cfg.DisksPerNode)
	} else {
		s.place = layout.NewNonStriped(sizes, cfg.StripeBytes, cfg.Nodes, cfg.DisksPerNode,
			root.Derive("placement"))
	}
	if cfg.ReplicateVideos {
		if cfg.MirrorCrossNode {
			s.place.MirrorWith(layout.MirrorCrossNode)
		} else {
			s.place.Mirror()
		}
	}

	s.net = network.New(s.k, cfg.NetParams)
	s.net.SetTrace(s.rec)

	nodeCfg := server.Config{
		PoolPages:   cfg.PoolPagesPerNode(),
		Replacement: cfg.Replacement,
		Sched:       cfg.Sched,
		Prefetch:    cfg.Prefetch,
		MIPS:        cfg.MIPS,
		CPUCosts:    cfg.CPUCosts,
		DiskParams:  cfg.DiskParams,
	}
	if cfg.ZonedDisks {
		zp := disk.DefaultZonedParams()
		zp.Params = cfg.DiskParams
		nodeCfg.ZonedDisks = &zp
	}
	s.nodes = make([]*server.Node, cfg.Nodes)
	for n := 0; n < cfg.Nodes; n++ {
		srcs := make([]*rng.Source, cfg.DisksPerNode)
		for d := range srcs {
			srcs[d] = root.DeriveIndexed("disk", n*cfg.DisksPerNode+d)
		}
		s.nodes[n] = server.New(s.k, n, nodeCfg, s.net, s.place, srcs, cfg.StripePlayTime())
		s.nodes[n].SetTrace(s.rec)
		s.nodes[n].Pool().SetTrace(s.rec, n)
		for _, d := range s.nodes[n].Disks() {
			d.SetTrace(s.rec)
		}
	}
	if cfg.Cache.Enabled() {
		s.caches = make([]*cache.Cache, cfg.Nodes)
		perNode := cfg.Cache.BudgetBytes / int64(cfg.Nodes)
		for n := range s.nodes {
			s.caches[n] = cache.New(cfg.Cache, perNode, cfg.NumVideos())
			s.caches[n].SetTrace(s.rec, n)
			s.nodes[n].SetCache(s.caches[n])
		}
	}

	if cfg.Faults.Enabled() {
		// The fault plan is drawn from derived streams and scheduled up
		// front, so a run with a given (seed, fault config) is exactly
		// reproducible and the fault-free streams are untouched.
		horizon := sim.Time(0).Add(cfg.StartWindow).Add(cfg.StartupGrace).Add(cfg.MeasureTime)
		s.applyFaultPlan(faults.NewPlan(cfg.Faults, cfg.Nodes, cfg.DisksPerNode, horizon, root))
		if hook := faults.NewNetModel(cfg.Faults, root); hook != nil {
			s.net.SetHook(hook)
		}
	}

	if cfg.SuspectThreshold > 0 && cfg.RequestTimeout > 0 {
		s.health = terminal.NewNodeHealth(s.k, cfg.Nodes, cfg.SuspectThreshold)
		s.health.SetTrace(s.rec)
	}

	ov := cfg.Overload
	if ov.AdmitLimit > 0 {
		s.adm = admission.NewController(s.k, ov.AdmitLimit)
		s.adm.SetPatience(ov.Patience)
		s.adm.SetTrace(s.rec)
		if ov.Adaptive || ov.Shed {
			s.over = overload.NewController(s.k, ov, cfg.TotalDisks())
			s.over.SetLimiter(s.adm)
			s.over.SetTrace(s.rec)
			s.over.SetRejoinWarmup(cfg.RejoinWarmup)
			for g := 0; g < cfg.TotalDisks(); g++ {
				g := g
				s.diskByGlobal(g).SetObserver(func(slack sim.Duration, qlen int) {
					s.over.ObserveDispatch(g, slack, qlen)
				})
			}
		}
	}
	if ov.RebuildRate > 0 {
		s.reb = overload.NewRebuilder(s.k, s.place, ov.RebuildRate,
			func(p *sim.Proc, g int, offset, size int64) bool {
				return s.nodes[g/cfg.DisksPerNode].RebuildIO(p, g%cfg.DisksPerNode, offset, size)
			})
		s.reb.SetTrace(s.rec)
		for _, n := range s.nodes {
			n.SetStaleCheck(s.reb.IsStale)
		}
		for g := 0; g < cfg.TotalDisks(); g++ {
			g := g
			s.diskByGlobal(g).SetRepairHook(func(downtime sim.Duration) {
				s.reb.OnRepair(g, downtime)
			})
		}
	}

	if s.health != nil || s.over != nil {
		// A restarted node clears its suspicion directly (redirected
		// terminals stop sending it requests, so they would never observe
		// the OK that normally clears it) and opens the overload
		// controller's rejoin warm-up window.
		for n, nd := range s.nodes {
			n, nd := n, nd
			nd.SetRestartHook(func(downtime sim.Duration) {
				s.health.NoteRestart(n, downtime)
				if s.over != nil {
					s.over.NoteRejoin()
				}
			})
		}
	}

	if cfg.PiggybackDelay > 0 {
		s.piggy = newPiggyCoordinator(s.k, cfg.PiggybackDelay)
	}
	if cfg.Cache.Enabled() {
		s.merge = newMergeCoordinator(
			cfg.Cache.PrefixBlocks,
			cfg.TerminalMemBytes, s.place.BlockSize(),
			s.place.NumBlocks,
			s.place.SizeOfBlock,
			s.cachedPrefix,
			s.forwardMerged,
			s.rec,
		)
	}

	if cfg.Workload.Enabled() {
		// Compiled once from a dedicated derived stream: the churn draws
		// never touch the base streams, so enabling a workload cannot
		// perturb placement, disks or terminal randomness elsewhere.
		s.wl = workload.Compile(cfg.Workload, cfg.NumVideos(), cfg.ZipfZ,
			root.Derive("workload"))
	}

	zipf := rng.NewZipf(cfg.NumVideos(), cfg.ZipfZ)
	instr := func(n int64) sim.Duration {
		return sim.DurationOfSeconds(float64(n) / (cfg.MIPS * 1e6))
	}
	tcfg := terminal.Config{
		MemBytes:              cfg.TerminalMemBytes,
		SendLatency:           instr(cfg.CPUCosts.Send),
		RecvLatency:           instr(cfg.CPUCosts.Receive),
		Pause:                 cfg.Pause,
		VCR:                   cfg.VCR,
		RandomInitialPosition: cfg.RandomInitialPosition,
		RequestTimeout:        cfg.RequestTimeout,
		MaxRetries:            cfg.MaxRetries,
		RetryBackoff:          cfg.RetryBackoff,
		RetryBackoffCap:       cfg.RetryBackoffCap,
		OnRespTime: func(d sim.Duration) {
			if s.measuring {
				s.respHist.Add(d.Seconds())
			}
		},
	}
	tcfg.RetryJitter = cfg.RetryJitter
	tcfg.Failover = cfg.Failover
	tcfg.Health = s.health // nil is fine: every method is a nil-safe no-op
	if s.adm != nil {
		// Assigned only when non-nil: a typed-nil *Controller in the
		// interface field would pass the != nil checks in the terminal.
		tcfg.Admission = s.adm
		tcfg.AdmitRetryDelay = ov.RetryDelay
	}
	if s.piggy != nil {
		tcfg.Gate = s.piggy
	}
	if s.merge != nil {
		// Assigned only when non-nil (same typed-nil caution as
		// Admission above).
		tcfg.Merger = s.merge
	}
	startSrc := root.Derive("starts")
	s.terms = make([]*terminal.Terminal, cfg.Terminals)
	for i := 0; i < cfg.Terminals; i++ {
		tsrc := root.DeriveIndexed("terminal", i)
		tc := tcfg
		selectVideo := func() int { return zipf.Draw(tsrc) }
		if s.wl.Enabled() {
			// Workload-driven behavior draws from a dedicated per-terminal
			// stream, leaving tsrc's consumption pattern (and with it every
			// workload-free run) untouched.
			wsrc := root.DeriveIndexed("workload", i)
			selectVideo = func() int { return s.wl.SelectVideo(s.k.Now(), wsrc) }
			tc.Think = func() sim.Duration { return s.wl.ThinkTime(s.k.Now(), wsrc) }
			tc.SeekBoost = func() float64 { return s.wl.SeekBoost(s.k.Now()) }
		}
		t := terminal.New(
			s.k, i, tc, s.lib, s.place, tsrc,
			s.sendRequest,
			selectVideo,
			func() bool { return s.measuring },
			s.onTerminalStarted,
		)
		s.terms[i] = t
		t.SetTrace(s.rec)
		t.Start(sim.Duration(startSrc.Float64() * float64(cfg.StartWindow)))
	}
	if s.over != nil {
		streams := make([]overload.Stream, len(s.terms))
		for i, t := range s.terms {
			streams[i] = t
		}
		s.over.SetStreams(streams, ov.ProtectedCount(cfg.Terminals))
	}
	if s.wl.Enabled() {
		// One kernel event per phase entry over the run's whole horizon:
		// it closes the previous accounting segment, snapshots the
		// degradation counters and announces the phase on the trace.
		horizon := cfg.StartWindow + cfg.StartupGrace + cfg.MeasureTime
		for _, b := range s.wl.Boundaries(horizon) {
			b := b
			s.k.At(b.At, func() { s.enterPhase(b) })
		}
	}
	return s, nil
}

// wlCounters is a cumulative snapshot of the counters the workload layer
// buckets per phase. All of them are lifetime (since simulation start),
// so segment deltas are exact no matter where the measurement window
// lies relative to the phase timeline.
type wlCounters struct {
	glitches, underrun, diskfail, timeout int64
	sheds, admRejected                    int64
	cacheHits, cacheMisses                int64
	movies                                int64
}

func (s *Simulation) wlCountersNow() wlCounters {
	var c wlCounters
	for _, t := range s.terms {
		st := t.Stats()
		c.glitches += st.GlitchesTotal
		c.underrun += st.GlitchesUnderrunTotal
		c.diskfail += st.GlitchesDiskFailTotal
		c.timeout += st.GlitchesTimeoutTotal
		c.movies += st.MoviesStarted
	}
	if s.over != nil {
		c.sheds = s.over.Stats().Sheds
	}
	if s.adm != nil {
		c.admRejected = s.adm.Rejected
	}
	for _, ch := range s.caches {
		cs := ch.Stats()
		c.cacheHits += cs.Hits
		c.cacheMisses += cs.Misses
	}
	return c
}

// enterPhase runs (in simulation context) at each phase boundary.
func (s *Simulation) enterPhase(b workload.Boundary) {
	now := s.k.Now()
	s.closePhaseSegment(now)
	s.phaseStats = append(s.phaseStats, PhaseMetrics{
		Name:  b.Phase.Name,
		Index: b.Index,
		Cycle: b.Cycle,
		Start: now,
		Load:  b.Phase.Load,
	})
	promote := int64(-1)
	if b.Phase.Promote {
		promote = int64(b.Phase.PromoteVideo)
	}
	s.rec.WlPhase(b.Index, b.Cycle, int64(b.Phase.Load*1000), promote)
}

// closePhaseSegment finalizes the open phase segment (if any) with the
// counter deltas accumulated since it began.
func (s *Simulation) closePhaseSegment(now sim.Time) {
	cur := s.wlCountersNow()
	if n := len(s.phaseStats); n > 0 {
		ps := &s.phaseStats[n-1]
		ps.End = now
		ps.Glitches = cur.glitches - s.wlPrev.glitches
		ps.GlitchesUnderrun = cur.underrun - s.wlPrev.underrun
		ps.GlitchesDiskFail = cur.diskfail - s.wlPrev.diskfail
		ps.GlitchesTimeout = cur.timeout - s.wlPrev.timeout
		ps.Sheds = cur.sheds - s.wlPrev.sheds
		ps.AdmRejected = cur.admRejected - s.wlPrev.admRejected
		ps.CacheHits = cur.cacheHits - s.wlPrev.cacheHits
		ps.CacheMisses = cur.cacheMisses - s.wlPrev.cacheMisses
		ps.MoviesStarted = cur.movies - s.wlPrev.movies
	}
	s.wlPrev = cur
}

// sendRequest routes a terminal's block request over the network to the
// owning node.
func (s *Simulation) sendRequest(node int, req *proto.BlockRequest) {
	n := s.nodes[node]
	s.net.Send(proto.RequestHeaderBytes, func() { n.DeliverRequest(req) })
}

// cachedPrefix reports whether blocks [0, upto) of video are all
// resident in their owning nodes' prefix caches — the merge
// coordinator's join feasibility check (the follower's catch-up gap
// must be servable without disk I/O).
func (s *Simulation) cachedPrefix(video, upto int) bool {
	for b := 0; b < upto; b++ {
		if !s.caches[s.place.Locate(video, b).Node].Contains(video, b) {
			return false
		}
	}
	return true
}

// forwardMerged ships one block of a merged stream to a follower. The
// transfer is metered on the interconnect like any reply; no server CPU
// is charged — the read was already served once for the leader, and the
// forward models the multicast fan-out of that same buffer.
func (s *Simulation) forwardMerged(fol *terminal.Terminal, video, block int, size int64) {
	s.net.Send(size+proto.ReplyHeaderBytes, func() { fol.DeliverMerged(video, block, size) })
}

// onTerminalStarted is invoked (in simulation context) the first time
// each terminal begins display; once all have, the measurement window
// opens: statistics reset, glitch counting begins (§6).
func (s *Simulation) onTerminalStarted() {
	s.startedCount++
	if s.startedCount < s.cfg.Terminals {
		return
	}
	s.measuring = true
	s.measureStart = s.k.Now()
	s.net.ResetStats()
	for _, n := range s.nodes {
		n.ResetStats()
	}
	for _, t := range s.terms {
		t.ResetWindowStats()
	}
	if s.over != nil {
		// The estimator starts with the measurement window: warm-up
		// slack (every stream priming at once) would read as overload.
		s.over.Start()
	}
}

// Run executes the simulation and collects metrics. The kernel is closed
// before returning; a Simulation runs once.
func (s *Simulation) Run() (Metrics, error) {
	defer s.k.Close()
	m := Metrics{Terminals: s.cfg.Terminals}

	// Phase 1: wait (in chunks) for every terminal to begin viewing.
	startDeadline := sim.Time(0).Add(s.cfg.StartWindow).Add(s.cfg.StartupGrace)
	for !s.measuring && s.k.Now() < startDeadline {
		if err := s.k.Run(s.k.Now().Add(sim.Second)); err != nil {
			return m, err
		}
	}
	if !s.measuring {
		// Startup never completed: hopeless overload. Report a failing,
		// unstarted run rather than simulating forever.
		m.Started = false
		m.Glitches = -1
		return m, nil
	}

	// Phase 2: the measured window.
	end := s.measureStart.Add(s.cfg.MeasureTime)
	if err := s.k.Run(end); err != nil {
		return m, err
	}

	m.Started = true
	m.MeasureStart = s.measureStart
	m.MeasureEnd = s.k.Now()
	m.Events = s.k.Events()

	if s.wl.Enabled() {
		s.closePhaseSegment(s.k.Now())
		m.PhaseStats = s.phaseStats
	}

	var seekLatSum, recoverySum, failoverLatSum sim.Duration
	m.ProtectedTerminals = s.cfg.Overload.ProtectedCount(s.cfg.Terminals)
	for i, t := range s.terms {
		// Sessions still impacted when the window closes count as lost.
		t.CloseSessionAccounting()
		st := t.Stats()
		m.Glitches += st.Glitches
		if st.Glitches > 0 {
			m.GlitchTerminals++
		}
		if i < m.ProtectedTerminals {
			m.GlitchesProtected += st.Glitches
		}
		m.DegradedBlocks += st.DegradedBlocks
		m.DegradedFrames += st.DegradedFrames
		if i < m.ProtectedTerminals {
			m.DegradedBlocksProtected += st.DegradedBlocks
		}
		m.BlocksServed += st.BlocksReceived
		m.MoviesCompleted += st.MoviesCompleted
		m.Seeks += st.Seeks
		m.SkimBlocks += st.SkimBlocks
		m.StaleDrops += st.StaleDrops
		seekLatSum += st.SeekRePrimeSum
		if st.SeekRePrimeMax > m.SeekRePrimeMax {
			m.SeekRePrimeMax = st.SeekRePrimeMax
		}
		m.GlitchesUnderrun += st.GlitchesUnderrun
		m.GlitchesDiskFail += st.GlitchesDiskFail
		m.GlitchesTimeout += st.GlitchesTimeout
		m.Nacks += st.Nacks
		m.Retries += st.Retries
		m.Timeouts += st.Timeouts
		m.LostBlocks += st.LostBlocks
		m.Recoveries += st.Recoveries
		recoverySum += st.RecoverySum
		if st.RecoveryMax > m.MTTRMax {
			m.MTTRMax = st.RecoveryMax
		}
		m.SessionsImpacted += st.SessionsImpacted
		m.SessionsRecovered += st.SessionsRecovered
		m.SessionsLost += st.SessionsLost
		m.FailoverRedirects += st.FailoverRedirects
		m.FailoverReadmits += st.FailoverReadmits
		failoverLatSum += st.FailoverLatSum
		if st.FailoverLatMax > m.FailoverLatMax {
			m.FailoverLatMax = st.FailoverLatMax
		}
		m.MergeDetaches += st.MergeDetaches
		m.RespTimeSumAdd(st)
	}
	if m.Seeks > 0 {
		m.SeekRePrimeAvg = seekLatSum / sim.Duration(m.Seeks)
	}
	if m.Recoveries > 0 {
		m.MTTRAvg = recoverySum / sim.Duration(m.Recoveries)
	}
	if m.SessionsRecovered > 0 {
		m.FailoverLatAvg = failoverLatSum / sim.Duration(m.SessionsRecovered)
	}
	m.NodeSuspects = s.health.Suspects()
	m.NodeRejoins = s.health.Rejoins()

	if s.adm != nil {
		m.Admitted = s.adm.Admitted
		m.AdmWaited = s.adm.Waited
		m.AdmRejected = s.adm.Rejected
		m.FailoverAdmitted = s.adm.FailoverAdmitted
		m.FailoverRejected = s.adm.FailoverRejected
		if s.adm.Waited > 0 {
			m.AdmWaitAvg = s.adm.WaitSum / sim.Duration(s.adm.Waited)
		}
		m.AdmLimit = s.cfg.Overload.AdmitLimit
		m.AdmLimitMin = s.adm.Limit()
	}
	if s.over != nil {
		os := s.over.Stats()
		m.Sheds = os.Sheds
		m.Restores = os.Restores
		m.ShedPeak = os.ShedPeak
		m.AdmLimitMin = os.LimitMin
	}
	if s.reb != nil {
		rs := s.reb.Stats()
		m.RebuildWindows = rs.Windows
		if rs.Windows > 0 {
			m.RebuildWindowAvg = rs.WindowSum / sim.Duration(rs.Windows)
		}
		m.RebuildWindowMax = rs.WindowMax
		m.RebuiltBlocks = rs.Rebuilt
	}

	m.DiskUtilMin = 2
	for _, n := range s.nodes {
		ns := n.Stats()
		m.Nodes.Requests += ns.Requests
		m.Nodes.Prefetches += ns.Prefetches
		m.Nodes.DeadlineUps += ns.DeadlineUps
		m.Nodes.Nacks += ns.Nacks
		m.Nodes.Dropped += ns.Dropped
		m.Nodes.DroppedReqs += ns.DroppedReqs
		m.Nodes.DroppedReplies += ns.DroppedReplies
		m.Nodes.Crashes += ns.Crashes
		m.StaleNacks += ns.StaleNacks
		ps := n.Pool().Stats()
		m.Pool.DemandRefs += ps.DemandRefs
		m.Pool.DemandHits += ps.DemandHits
		m.Pool.InFlightHits += ps.InFlightHits
		m.Pool.Misses += ps.Misses
		m.Pool.SharedRefs += ps.SharedRefs
		m.Pool.PrefetchSkip += ps.PrefetchSkip
		m.Pool.Evictions += ps.Evictions
		m.Pool.AllocWaits += ps.AllocWaits
		cu := n.CPU().Utilization()
		m.CPUUtilAvg += cu
		if cu > m.CPUUtilMax {
			m.CPUUtilMax = cu
		}
		for _, d := range n.Disks() {
			du := d.Utilization()
			m.DiskUtilAvg += du
			if du < m.DiskUtilMin {
				m.DiskUtilMin = du
			}
			if du > m.DiskUtilMax {
				m.DiskUtilMax = du
			}
			ds := d.Stats()
			m.DiskFailStops += ds.FailStops
			m.DiskAbandoned += ds.Abandoned
			m.DiskRejects += ds.Rejects
			m.DiskDownTime += ds.DownTime
			m.RebuildIOs += ds.RebuildOps
			m.DiskReads += ds.Served
		}
	}
	for _, c := range s.caches {
		cs := c.Stats()
		m.CacheHits += cs.Hits
		m.CacheMisses += cs.Misses
		m.CacheInserts += cs.Inserts
		m.CacheEvictions += cs.Evictions
	}
	if s.merge != nil {
		m.Merges = s.merge.Merges
		m.MergedBlocks = s.merge.MergedBlocks
	}
	m.CPUUtilAvg /= float64(len(s.nodes))
	m.DiskUtilAvg /= float64(s.cfg.TotalDisks())
	if m.DiskUtilMin > 1 {
		m.DiskUtilMin = 0
	}
	m.PeakNetBandwidth = s.net.PeakAggregateBandwidth()
	m.NetTotalBytes = s.net.TotalBytes()
	m.NetDropped = s.net.Dropped()
	m.RespTimeP50 = sim.DurationOfSeconds(s.respHist.Quantile(0.50))
	m.RespTimeP99 = sim.DurationOfSeconds(s.respHist.Quantile(0.99))
	m.Trace = s.rec.Snapshot()
	return m, nil
}

// RespTimeSumAdd folds one terminal's response-time stats into the
// metrics (average finalized lazily).
func (m *Metrics) RespTimeSumAdd(st terminal.Stats) {
	if st.BlocksReceived > 0 {
		// Accumulate a weighted average incrementally.
		total := m.RespTimeAvg*sim.Duration(m.respBlocks) + st.RespTimeSum
		m.respBlocks += st.BlocksReceived
		m.RespTimeAvg = total / sim.Duration(m.respBlocks)
	}
	if st.RespTimeMax > m.RespTimeMax {
		m.RespTimeMax = st.RespTimeMax
	}
}

// Run builds and runs a configuration in one call.
func Run(cfg Config) (Metrics, error) {
	s, err := NewSimulation(cfg)
	if err != nil {
		return Metrics{}, err
	}
	return s.Run()
}

// applyFaultPlan schedules every planned fault as a kernel event.
func (s *Simulation) applyFaultPlan(plan []faults.Event) {
	for _, ev := range plan {
		ev := ev
		switch ev.Kind {
		case faults.KindDiskSlow:
			d := s.diskByGlobal(ev.Index)
			s.k.At(ev.At, func() { d.InjectFault(ev.Factor, ev.Duration) })
		case faults.KindDiskFail:
			d := s.diskByGlobal(ev.Index)
			s.k.At(ev.At, func() { d.Fail(ev.Duration) })
		case faults.KindNodeCrash:
			n := s.nodes[ev.Index]
			s.k.At(ev.At, func() { n.Crash(ev.Duration) })
		}
	}
}

// diskByGlobal resolves a server-wide disk index.
func (s *Simulation) diskByGlobal(g int) *disk.Disk {
	return s.nodes[g/s.cfg.DisksPerNode].Disks()[g%s.cfg.DisksPerNode]
}

// ScheduleDiskFailStop arranges (before Run) for one disk to fail-stop at
// absolute simulated time `at`, repaired after `repair` (<= 0: never).
func (s *Simulation) ScheduleDiskFailStop(diskGlobal int, at sim.Time, repair sim.Duration) {
	d := s.diskByGlobal(diskGlobal)
	s.k.At(at, func() { d.Fail(repair) })
}

// ScheduleNodeCrash arranges (before Run) for one node to crash at
// absolute simulated time `at`, restarting after `restart` (<= 0: never).
func (s *Simulation) ScheduleNodeCrash(node int, at sim.Time, restart sim.Duration) {
	n := s.nodes[node]
	s.k.At(at, func() { n.Crash(restart) })
}

// ScheduleDiskFault arranges (before Run) for one disk to degrade by
// `factor` for `duration`, starting at absolute simulated time `at`.
// Failure-injection tests use it to verify that the closed-loop system
// glitches under degradation and restabilizes afterwards.
func (s *Simulation) ScheduleDiskFault(diskGlobal int, at sim.Time, factor float64, duration sim.Duration) {
	node := diskGlobal / s.cfg.DisksPerNode
	local := diskGlobal % s.cfg.DisksPerNode
	d := s.nodes[node].Disks()[local]
	s.k.At(at, func() { d.InjectFault(factor, duration) })
}

// Terminals exposes the simulation's terminals so invariant tests (the
// chaos soak) can audit per-terminal state after a run.
func (s *Simulation) Terminals() []*terminal.Terminal { return s.terms }

// Admission exposes the admission controller (nil when ungated), for the
// same audits: slot conservation against the terminals holding slots.
func (s *Simulation) Admission() *admission.Controller { return s.adm }

// PiggybackStats reports (batches, riders) after a piggybacked run.
func (s *Simulation) PiggybackStats() (batches, riders int64) {
	if s.piggy == nil {
		return 0, 0
	}
	return s.piggy.Batches, s.piggy.Riders
}
