package core_test

import (
	"reflect"
	"testing"

	"spiffi/internal/core"
	"spiffi/internal/sim"
)

// An admission limit no stream ever queues against is inert: every
// Admit succeeds immediately (no kernel events, no RNG), so the run is
// identical to the ungated run except for the admission bookkeeping.
func TestAdmissionInertAtHighLimit(t *testing.T) {
	bare, err := core.Run(tinyConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig(16)
	cfg.Overload.AdmitLimit = 16
	gated, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gated.AdmWaited != 0 || gated.AdmRejected != 0 {
		t.Fatalf("nothing should queue at limit >= terminals: waited=%d rejected=%d",
			gated.AdmWaited, gated.AdmRejected)
	}
	if gated.Admitted < 16 {
		t.Fatalf("admitted = %d, want >= one per terminal", gated.Admitted)
	}
	gated.Admitted = 0
	gated.AdmLimit = 0
	gated.AdmLimitMin = 0
	if !reflect.DeepEqual(bare, gated) {
		t.Fatalf("inert admission gate changed the run:\n%+v\n%+v", bare, gated)
	}
}

// A disk fail-stop at full load collapses the measured slack: the
// estimator must shed streams and pull the admission limit down, then
// restore the shed streams and raise the limit once the repair heals
// the system — convergence in both directions.
func TestEstimatorShedsAndRestores(t *testing.T) {
	// Slightly above the tiny system's ~40-stream capacity: healthy
	// disks hold the load, but a dead disk's failover traffic pushes
	// its mirror neighbor over the edge.
	cfg := tinyConfig(44)
	cfg.ReplicateVideos = true
	cfg.RequestTimeout = 2 * sim.Second
	cfg.MaxRetries = 3
	cfg.RetryBackoff = 50 * sim.Millisecond
	cfg.MeasureTime = 90 * sim.Second
	cfg.Overload.AdmitLimit = 44
	cfg.Overload.Adaptive = true
	cfg.Overload.Shed = true
	s, err := core.NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.ScheduleDiskFailStop(0, sim.Time(30*sim.Second), 10*sim.Second)
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !m.Started {
		t.Fatal("never started")
	}
	if m.Sheds == 0 || m.ShedPeak == 0 {
		t.Fatalf("failure pressure shed nothing: %+v", m)
	}
	if m.AdmLimitMin >= cfg.Overload.AdmitLimit {
		t.Fatalf("adaptive limit never moved: min=%d limit=%d", m.AdmLimitMin, cfg.Overload.AdmitLimit)
	}
	if m.Restores == 0 {
		t.Fatalf("recovery after repair restored nothing: sheds=%d restores=%d", m.Sheds, m.Restores)
	}
	if m.DegradedBlocks == 0 || m.DegradedFrames == 0 {
		t.Fatalf("shed streams skipped nothing: blocks=%d frames=%d", m.DegradedBlocks, m.DegradedFrames)
	}
	if m.ProtectedTerminals != 22 {
		t.Fatalf("protected terminals = %d, want the default half", m.ProtectedTerminals)
	}
}

// rebuildProbeCfg is the small mirrored system the redundancy-window
// tests script: disk 0's primaries keep their replicas on disk 1.
func rebuildProbeCfg() core.Config {
	cfg := core.DefaultConfig(8)
	cfg.Nodes = 2
	cfg.DisksPerNode = 2
	cfg.VideosPerDisk = 1
	cfg.Video.Length = sim.Minute
	cfg.ServerMemBytes = 16 * core.MB
	cfg.StartWindow = 10 * sim.Second
	cfg.MeasureTime = 80 * sim.Second
	cfg.StartupGrace = 5 * sim.Minute
	cfg.ReplicateVideos = true
	cfg.RequestTimeout = 2 * sim.Second
	cfg.MaxRetries = 3
	cfg.RetryBackoff = 50 * sim.Millisecond
	cfg.Overload.RebuildRate = 16 * core.MB
	return cfg
}

// During the window of vulnerability — disk 0 repaired but its copies
// not yet rebuilt — a second failure of the neighbor holding the only
// healthy copies loses blocks: both LocateCopy addresses are
// unavailable (one stale, one dead).
func TestSecondFailureDuringRebuildLosesBlocks(t *testing.T) {
	s, err := core.NewSimulation(rebuildProbeCfg())
	if err != nil {
		t.Fatal(err)
	}
	s.ScheduleDiskFailStop(0, sim.Time(30*sim.Second), 5*sim.Second)
	s.ScheduleDiskFailStop(1, sim.Time(37*sim.Second), 5*sim.Second)
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.StaleNacks == 0 {
		t.Fatalf("repaired disk served stale copies without a NACK: %+v", m)
	}
	if m.LostBlocks == 0 {
		t.Fatalf("overlapping failures inside the window lost nothing: %+v", m)
	}
	if m.RebuiltBlocks == 0 {
		t.Fatal("rebuild never progressed")
	}
}

// After the rebuild closes the window, every stale copy has been
// re-copied from its mirror: the same second failure loses nothing,
// because LocateCopy's replica addresses are all readable again.
func TestRebuildClosesRedundancyWindow(t *testing.T) {
	s, err := core.NewSimulation(rebuildProbeCfg())
	if err != nil {
		t.Fatal(err)
	}
	s.ScheduleDiskFailStop(0, sim.Time(30*sim.Second), 5*sim.Second)
	s.ScheduleDiskFailStop(1, sim.Time(75*sim.Second), 5*sim.Second)
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.RebuildWindows == 0 || m.RebuiltBlocks == 0 {
		t.Fatalf("rebuild never completed: windows=%d rebuilt=%d", m.RebuildWindows, m.RebuiltBlocks)
	}
	if m.RebuildWindowMax <= 5*sim.Second {
		t.Fatalf("window %v must include the downtime plus the paced rebuild", m.RebuildWindowMax)
	}
	if m.LostBlocks != 0 {
		t.Fatalf("post-rebuild failure lost %d blocks; the redundancy window should be closed", m.LostBlocks)
	}
	if m.RebuildIOs == 0 {
		t.Fatal("no disk transfers were attributed to the rebuild class")
	}
}

// Mirror rebuild configured without replication is rejected: there is
// no healthy copy to rebuild from.
func TestRebuildRequiresMirroring(t *testing.T) {
	cfg := rebuildProbeCfg()
	cfg.ReplicateVideos = false
	if err := cfg.Validate(); err == nil {
		t.Fatal("rebuild without replicas validated")
	}
}
