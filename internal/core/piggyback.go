package core

import (
	"spiffi/internal/sim"
)

// piggyCoordinator implements §8.2 piggybacking: the first terminal to
// request a video opens a batch that closes after the configured delay
// ("playing a few commercials"); terminals requesting the same video
// meanwhile join the batch. When the batch closes, its first member
// leads (actually streams) and the rest ride along, placing no demands
// on the server.
type piggyCoordinator struct {
	k     *sim.Kernel
	delay sim.Duration
	open  map[int]*piggyBatch

	// Batches and Riders count completed batches and total members, for
	// the experiment's "effective multiplier" statistic.
	Batches int64
	Riders  int64
}

type piggyBatch struct {
	leader  int
	closed  *sim.Event
	members int
}

func newPiggyCoordinator(k *sim.Kernel, delay sim.Duration) *piggyCoordinator {
	return &piggyCoordinator{k: k, delay: delay, open: make(map[int]*piggyBatch)}
}

// JoinOrLead implements terminal.StartCoordinator.
func (c *piggyCoordinator) JoinOrLead(p *sim.Proc, term, video int) bool {
	b, ok := c.open[video]
	if !ok {
		b = &piggyBatch{leader: term, closed: sim.NewEvent(c.k)}
		c.open[video] = b
		c.k.After(c.delay, func() {
			delete(c.open, video)
			c.Batches++
			c.Riders += int64(b.members)
			b.closed.Fire()
		})
	}
	b.members++
	b.closed.Wait(p)
	return term == b.leader
}
