package core_test

import (
	"sync"
	"testing"

	"spiffi/internal/core"
)

// Concurrent simulations share one cached video library (and nothing
// else); running several small systems in parallel under -race proves
// the sharing is sound and each run stays deterministic regardless of
// what its neighbors do.
func TestConcurrentRunsIndependent(t *testing.T) {
	const workers = 4
	results := make([]core.Metrics, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[w], errs[w] = core.Run(tinyConfig(16))
		}()
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if results[w].Events != results[0].Events ||
			results[w].BlocksServed != results[0].BlocksServed ||
			results[w].Glitches != results[0].Glitches {
			t.Fatalf("concurrent identical runs diverged:\n%+v\n%+v", results[0], results[w])
		}
	}
}
