package core

import (
	"spiffi/internal/terminal"
	"spiffi/internal/trace"
)

// mergeLeadMargin is how many blocks ahead of the leader's play position
// the coordinator forwards, giving followers a small buffer cushion
// against forwarding jitter. It is part of the join feasibility check:
// a follower's steady-state occupancy is join-gap + margin blocks.
const mergeLeadMargin = 2

// mergeCoordinator generalizes piggybacking (piggyback.go) into true
// stream merging (CACHING.md): a viewer whose video's prefix is resident
// in the node caches starts playing the cached blocks and merges onto
// the in-flight disk stream of a leader already playing that video, so
// one sequence of disk reads feeds N terminals.
//
// The join horizon paces at the leader's *play* position: a newcomer
// may join at gap q = fwd, where fwd trails the leader's contiguous
// frontier by K - mergeLeadMargin blocks (K = TerminalMemBytes /
// blockSize) — the span of blocks still guaranteed resident in the
// leader's playout buffer. The join test is the patching-window
// feasibility of the VoD literature: q + mergeLeadMargin + 2 blocks
// must fit in terminal memory, the gap must not exceed the cacheable
// prefix, and blocks [0, q) must all be cache-resident.
//
// Forwarding itself is paced per follower, not at the leader's play
// position: each follower receives blocks from its join point up to
// the leader's frontier as fast as its own buffer has room, tracked
// with an in-flight byte count so delivery latency cannot overshoot.
// A follower therefore carries the same ~K-block read-ahead cushion a
// self-fetching terminal does — pacing every follower at the leader's
// play point would leave joiners at small q only a couple of buffered
// blocks, and any transient dip in the leader's frontier (a busy disk
// queue) would glitch them long before it threatened the leader.
//
// Determinism: streams are keyed by video and terminals by pointer, but
// no map is ever iterated — followers live in an append-ordered slice,
// and every decision reads scalar state. The coordinator draws no
// randomness and arms no timers.
type mergeCoordinator struct {
	maxJoin  int   // deepest allowed join gap (Cache.PrefixBlocks)
	pace     int   // frontier lead required to forward: max(1, K - mergeLeadMargin)
	memBytes int64 // follower playout-buffer size
	nblocks  func(video int) int
	sizeOf   func(video, block int) int64
	prefixOK func(video, upto int) bool // blocks [0, upto) all cache-resident
	forward  func(fol *terminal.Terminal, video, block int, size int64)
	rec      *trace.Recorder

	streams map[int]*mergeStream // in-flight lead streams by video
	lead    map[*terminal.Terminal]*mergeStream
	ride    map[*terminal.Terminal]*mergeStream

	blockSize int64

	// Merges counts successful joins; MergedBlocks counts forwarded
	// block deliveries (lifetime, like the cache counters).
	Merges       int64
	MergedBlocks int64
}

type mergeStream struct {
	video     int
	leader    *terminal.Terminal
	frontier  int // leader's contiguous blocks received
	fwd       int // join horizon: oldest block still in the leader's buffer
	followers []*mergeFollower
}

type mergeFollower struct {
	t        *terminal.Terminal
	from     int   // first forwarded block; earlier blocks came from cache
	next     int   // next block to forward to this follower
	inflight int64 // forwarded bytes not yet admitted into its buffer
}

func newMergeCoordinator(
	maxJoin int,
	memBytes, blockSize int64,
	nblocks func(video int) int,
	sizeOf func(video, block int) int64,
	prefixOK func(video, upto int) bool,
	forward func(fol *terminal.Terminal, video, block int, size int64),
	rec *trace.Recorder,
) *mergeCoordinator {
	pace := int(memBytes/blockSize) - mergeLeadMargin
	if pace < 1 {
		pace = 1
	}
	return &mergeCoordinator{
		maxJoin:   maxJoin,
		pace:      pace,
		memBytes:  memBytes,
		blockSize: blockSize,
		nblocks:   nblocks,
		sizeOf:    sizeOf,
		prefixOK:  prefixOK,
		forward:   forward,
		rec:       rec,
		streams:   make(map[int]*mergeStream),
		lead:      make(map[*terminal.Terminal]*mergeStream),
		ride:      make(map[*terminal.Terminal]*mergeStream),
	}
}

// Lead registers t as a merge leader for video: it is streaming the
// whole movie from block 0. The first leader per video wins; later
// full-movie starters of the same video simply stream unmerged (they
// could not be offered a join — their start is what Offer handles).
func (mc *mergeCoordinator) Lead(t *terminal.Terminal, video int) {
	if mc.streams[video] != nil || mc.lead[t] != nil {
		return
	}
	st := &mergeStream{video: video, leader: t}
	mc.streams[video] = st
	mc.lead[t] = st
}

// Offer asks to merge t onto an in-flight stream of video. On success
// the follower plays [0, from) out of the node caches and receives
// every block from `from` on via forward.
func (mc *mergeCoordinator) Offer(t *terminal.Terminal, video int) (from int, ok bool) {
	st := mc.streams[video]
	if st == nil || mc.ride[t] != nil || mc.lead[t] != nil {
		return 0, false
	}
	q := st.fwd
	if q > mc.maxJoin || q >= mc.nblocks(video) {
		return 0, false // too far behind to catch up from the prefix
	}
	if int64(q+mergeLeadMargin+2)*mc.blockSize > mc.memBytes {
		return 0, false // the catch-up gap cannot fit in the playout buffer
	}
	if !mc.prefixOK(video, q) {
		return 0, false // some prefix block would still need a disk read
	}
	st.followers = append(st.followers, &mergeFollower{t: t, from: q, next: q})
	mc.ride[t] = st
	mc.Merges++
	mc.rec.MergeJoin(t.ID(), st.leader.ID(), video, q)
	return q, true
}

// Advance reports a terminal's contiguous frontier passing block. From
// the leader it moves the stream frontier (and the join horizon) and
// lets every follower pull newly-read blocks; from a follower it
// retires in-flight bytes, freeing buffer room for further forwards.
func (mc *mergeCoordinator) Advance(t *terminal.Terminal, video, block int) {
	if st := mc.lead[t]; st != nil && st.video == video {
		if block+1 > st.frontier {
			st.frontier = block + 1
		}
		for st.fwd+mc.pace <= st.frontier {
			st.fwd++
		}
		for _, f := range st.followers {
			mc.drainFollower(st, f)
		}
		return
	}
	if st := mc.ride[t]; st != nil && st.video == video {
		for _, f := range st.followers {
			if f.t == t {
				if block >= f.from {
					f.inflight -= mc.sizeOf(video, block)
				}
				mc.drainFollower(st, f)
				return
			}
		}
	}
}

// Pull forwards more blocks to a riding follower whose buffer has
// room again (its fetcher calls this as display frees space), and
// reports whether anything moved. Without it the pump would stall at
// end of stream: once the leader has read the whole video its frontier
// never advances again, so leader-side drains stop firing while the
// follower still has the tail to receive.
func (mc *mergeCoordinator) Pull(t *terminal.Terminal) bool {
	st := mc.ride[t]
	if st == nil {
		return false
	}
	for _, f := range st.followers {
		if f.t == t {
			before := mc.MergedBlocks
			mc.drainFollower(st, f)
			return mc.MergedBlocks != before
		}
	}
	return false
}

// drainFollower forwards blocks to one follower up to the leader's
// frontier, as far as the follower's playout buffer has room. Buffered
// bytes, the follower's own outstanding prefix fetches, and forwarded
// bytes still in flight all count against the buffer, so delivery
// latency never overshoots it.
func (mc *mergeCoordinator) drainFollower(st *mergeStream, f *mergeFollower) {
	for f.next < st.frontier {
		sz := mc.sizeOf(st.video, f.next)
		if f.t.BufferedBytes()+f.t.Outstanding()+f.inflight+sz > mc.memBytes {
			return
		}
		mc.forward(f.t, st.video, f.next, sz)
		f.inflight += sz
		f.next++
		mc.MergedBlocks++
	}
}

// Leave removes t from any stream it leads or rides. A departing leader
// dissolves the stream: its followers are unmerged and resume fetching
// for themselves (the tail they self-fetch was just read by the leader,
// so it is typically still pool-resident).
func (mc *mergeCoordinator) Leave(t *terminal.Terminal) {
	if st := mc.lead[t]; st != nil {
		delete(mc.lead, t)
		delete(mc.streams, st.video)
		for _, f := range st.followers {
			delete(mc.ride, f.t)
			f.t.Unmerge()
		}
		st.followers = nil
		return
	}
	if st := mc.ride[t]; st != nil {
		delete(mc.ride, t)
		for i := range st.followers {
			if st.followers[i].t == t {
				st.followers = append(st.followers[:i], st.followers[i+1:]...)
				break
			}
		}
	}
}
