package core

import (
	"fmt"
	"strings"

	"spiffi/internal/bufferpool"
	"spiffi/internal/server"
	"spiffi/internal/sim"
	"spiffi/internal/trace"
)

// Metrics is the result of one simulation run, measured over the window
// that begins when every terminal is actively viewing (§6).
type Metrics struct {
	Terminals int

	// Started reports whether measurement began; false means the
	// configuration was so overloaded that terminals never all primed
	// within the startup grace period (treated as failing).
	Started      bool
	MeasureStart sim.Time
	MeasureEnd   sim.Time

	Glitches        int64 // total glitches in the window (the paper's pass/fail signal)
	GlitchTerminals int   // terminals that glitched at least once

	DiskUtilAvg float64
	DiskUtilMin float64
	DiskUtilMax float64
	CPUUtilAvg  float64
	CPUUtilMax  float64

	// PeakNetBandwidth is Figure 18's metric, bytes/second.
	PeakNetBandwidth float64
	NetTotalBytes    float64

	Pool  bufferpool.Stats // aggregated over nodes
	Nodes server.Stats     // aggregated over nodes

	BlocksServed    int64
	MoviesCompleted int64
	RespTimeAvg     sim.Duration
	RespTimeMax     sim.Duration
	RespTimeP50     sim.Duration // histogram upper-edge estimate
	RespTimeP99     sim.Duration // histogram upper-edge estimate
	respBlocks      int64        // weight of RespTimeAvg during accumulation

	// Interactive-operation aggregates (§8.1 workloads).
	Seeks          int64
	SkimBlocks     int64
	StaleDrops     int64
	SeekRePrimeAvg sim.Duration
	SeekRePrimeMax sim.Duration

	// Degraded-mode aggregates (fault injection). The per-cause glitch
	// counters partition Glitches by what the viewer experienced: a
	// frozen picture (underrun) versus data played over a hole left by a
	// dead disk or lost messages.
	GlitchesUnderrun int64
	GlitchesDiskFail int64
	GlitchesTimeout  int64
	Nacks            int64 // NACKs received by terminals
	Retries          int64 // requests re-issued by terminals
	Timeouts         int64 // request timeouts fired
	LostBlocks       int64 // blocks abandoned after the final retry
	NetDropped       int64 // messages discarded by network fault injection
	DiskFailStops    int64 // fail-stop events across all disks
	DiskAbandoned    int64 // disk requests drained/killed by fail-stops
	DiskRejects      int64 // submissions rejected by failed disks
	DiskDownTime     sim.Duration
	MTTRAvg          sim.Duration // mean glitch-to-resume recovery
	MTTRMax          sim.Duration
	Recoveries       int64

	// Failover aggregates (node crash → mirror redirection). A session is
	// impacted when a timeout trips node suspicion while it plays; it is
	// recovered once a first-attempt fetch of one of the dead node's
	// primary blocks succeeds again (via a mirror or the restarted node),
	// and lost otherwise (aborted by failover re-admission rejection, or
	// still unresolved at session/run end). Impacted = Recovered + Lost
	// after CloseSessionAccounting. FailoverLat* measure suspicion-to-
	// recovery per session. Redirects count proactively re-resolved
	// fetches; Readmits count failover-priority re-admission attempts,
	// with the Admitted/Rejected pair their outcomes at the controller.
	SessionsImpacted  int64
	SessionsRecovered int64
	SessionsLost      int64
	FailoverLatAvg    sim.Duration
	FailoverLatMax    sim.Duration
	FailoverRedirects int64
	FailoverReadmits  int64
	FailoverAdmitted  int64
	FailoverRejected  int64
	NodeSuspects      int64 // suspicion episodes opened
	NodeRejoins       int64 // suspicion episodes cleared

	// Overload-control aggregates (internal/overload). Admission
	// counters come from the admission controller; shed/restore and
	// the limit floor from the capacity estimator; rebuild counters
	// from the mirror rebuilder. GlitchesProtected restricts Glitches
	// to the protected terminals (ids below ProtectedTerminals) — with
	// no overload config every terminal is protected and it equals
	// Glitches.
	Admitted           int64
	AdmWaited          int64
	AdmRejected        int64
	AdmWaitAvg         sim.Duration
	AdmLimit           int // configured admission limit (0 = off)
	AdmLimitMin        int // lowest adaptive limit reached
	Sheds              int64
	Restores           int64
	ShedPeak           int
	DegradedBlocks     int64
	DegradedFrames     int64
	ProtectedTerminals int
	GlitchesProtected  int64
	// DegradedBlocksProtected restricts DegradedBlocks to the protected
	// terminals; shedding must never pick them, so it stays zero however
	// hard the shed machinery works (the chaos-soak invariant).
	DegradedBlocksProtected int64
	RebuildWindows          int64 // completed rebuilds (closed redundancy windows)
	RebuildWindowAvg        sim.Duration
	RebuildWindowMax        sim.Duration
	RebuiltBlocks           int64
	RebuildIOs              int64 // disk transfers spent on reconstruction
	StaleNacks              int64 // demand reads NACKed awaiting rebuild

	// Prefix-cache and stream-merge aggregates (internal/cache,
	// core/merge.go, CACHING.md). Cache counters sum over node caches
	// and are lifetime (hit ratio is a property of the cache, not of the
	// measurement window); merge counters likewise span the run.
	// DiskReads counts completed disk service operations inside the
	// window — the caching experiment's disk-I/O-per-terminal metric.
	CacheHits      int64
	CacheMisses    int64
	CacheInserts   int64
	CacheEvictions int64
	Merges         int64 // successful stream-merge joins
	MergedBlocks   int64 // block deliveries forwarded off merged streams
	MergeDetaches  int64 // mid-stream exits from merged streams
	DiskReads      int64

	// PhaseStats is the phase-resolved degradation surface, one entry per
	// phase segment entered, populated only when Config.Workload drives
	// the run (WORKLOADS.md).
	PhaseStats []PhaseMetrics `json:",omitempty"`

	Events uint64 // kernel events dispatched (simulator cost)

	// Trace is the structured event snapshot when Config.Trace.Enabled
	// was set, nil otherwise. It rides the Metrics so parallel sweeps
	// surface traces only through consumed results — the same discipline
	// that keeps every other metric bit-identical across worker counts.
	// Excluded from JSON results (experiments marshal a separate view).
	Trace *trace.Data `json:"-"`
}

// PhaseMetrics is one segment of the phase-resolved degradation surface
// produced by a workload scenario. Counters are deltas over [Start, End)
// and are lifetime-based — they accumulate from simulation start rather
// than the measurement window, so phases overlapping startup are covered
// too (the window-relative aggregates remain in the top-level fields).
type PhaseMetrics struct {
	Name  string
	Index int // phase index within the cycle
	Cycle int // 0-based cycle count (always 0 unless the workload repeats)
	Start sim.Time
	End   sim.Time
	Load  float64 // the phase's arrival-rate multiplier

	Glitches         int64
	GlitchesUnderrun int64
	GlitchesDiskFail int64
	GlitchesTimeout  int64
	Sheds            int64
	AdmRejected      int64
	CacheHits        int64
	CacheMisses      int64
	MoviesStarted    int64
}

// CacheHitRate returns the phase's prefix-cache hit fraction (0 when the
// phase saw no cache traffic).
func (p PhaseMetrics) CacheHitRate() float64 {
	if p.CacheHits+p.CacheMisses == 0 {
		return 0
	}
	return float64(p.CacheHits) / float64(p.CacheHits+p.CacheMisses)
}

// GlitchFree reports the paper's pass criterion.
func (m Metrics) GlitchFree() bool { return m.Started && m.Glitches == 0 }

// String renders a compact human-readable report.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "terminals=%d started=%v glitches=%d (terminals=%d)\n",
		m.Terminals, m.Started, m.Glitches, m.GlitchTerminals)
	fmt.Fprintf(&b, "disk util avg/min/max = %.1f%%/%.1f%%/%.1f%%  cpu util avg/max = %.1f%%/%.1f%%\n",
		m.DiskUtilAvg*100, m.DiskUtilMin*100, m.DiskUtilMax*100,
		m.CPUUtilAvg*100, m.CPUUtilMax*100)
	fmt.Fprintf(&b, "net peak = %.1f MB/s  pool hits = %.1f%%  shared refs = %.2f%%\n",
		m.PeakNetBandwidth/1e6, m.Pool.HitFraction()*100, m.Pool.SharedFraction()*100)
	fmt.Fprintf(&b, "blocks=%d movies=%d resp avg/max = %v/%v\n",
		m.BlocksServed, m.MoviesCompleted, m.RespTimeAvg, m.RespTimeMax)
	if m.FaultsSeen() {
		fmt.Fprintf(&b, "faults: glitch causes underrun/diskfail/timeout = %d/%d/%d  nacks=%d retries=%d timeouts=%d lost=%d\n",
			m.GlitchesUnderrun, m.GlitchesDiskFail, m.GlitchesTimeout,
			m.Nacks, m.Retries, m.Timeouts, m.LostBlocks)
		fmt.Fprintf(&b, "faults: disk failstops=%d abandoned=%d rejects=%d downtime=%v  node crashes=%d drops=%d (req=%d reply=%d)  netdrop=%d  mttr avg/max = %v/%v\n",
			m.DiskFailStops, m.DiskAbandoned, m.DiskRejects, m.DiskDownTime,
			m.Nodes.Crashes, m.Nodes.Dropped, m.Nodes.DroppedReqs, m.Nodes.DroppedReplies,
			m.NetDropped, m.MTTRAvg, m.MTTRMax)
	}
	if m.FailoverSeen() {
		fmt.Fprintf(&b, "failover: impacted=%d recovered=%d lost=%d lat avg/max = %v/%v  redirects=%d readmits=%d (ok=%d rej=%d)  suspects=%d rejoins=%d\n",
			m.SessionsImpacted, m.SessionsRecovered, m.SessionsLost,
			m.FailoverLatAvg, m.FailoverLatMax,
			m.FailoverRedirects, m.FailoverReadmits, m.FailoverAdmitted, m.FailoverRejected,
			m.NodeSuspects, m.NodeRejoins)
	}
	if m.OverloadSeen() {
		fmt.Fprintf(&b, "overload: admitted=%d waited=%d rejected=%d waitavg=%v limit=%d min=%d\n",
			m.Admitted, m.AdmWaited, m.AdmRejected, m.AdmWaitAvg, m.AdmLimit, m.AdmLimitMin)
		fmt.Fprintf(&b, "overload: sheds=%d restores=%d peak=%d degraded blocks/frames=%d/%d  protected glitches=%d over %d terminals\n",
			m.Sheds, m.Restores, m.ShedPeak, m.DegradedBlocks, m.DegradedFrames,
			m.GlitchesProtected, m.ProtectedTerminals)
		if m.RebuildWindows > 0 || m.RebuiltBlocks > 0 || m.StaleNacks > 0 {
			fmt.Fprintf(&b, "rebuild: windows=%d avg/max=%v/%v blocks=%d ios=%d stalenacks=%d\n",
				m.RebuildWindows, m.RebuildWindowAvg, m.RebuildWindowMax,
				m.RebuiltBlocks, m.RebuildIOs, m.StaleNacks)
		}
	}
	if m.CacheSeen() {
		fmt.Fprintf(&b, "cache: hits=%d misses=%d inserts=%d evictions=%d  merges=%d forwarded=%d detaches=%d  diskreads=%d\n",
			m.CacheHits, m.CacheMisses, m.CacheInserts, m.CacheEvictions,
			m.Merges, m.MergedBlocks, m.MergeDetaches, m.DiskReads)
	}
	if m.WorkloadSeen() {
		for _, p := range m.PhaseStats {
			fmt.Fprintf(&b, "phase %d.%d %-10s [%v..%v) load=%.2f: glitches=%d (u/d/t=%d/%d/%d) sheds=%d rejects=%d cache=%d/%d movies=%d\n",
				p.Cycle, p.Index, p.Name, p.Start, p.End, p.Load,
				p.Glitches, p.GlitchesUnderrun, p.GlitchesDiskFail, p.GlitchesTimeout,
				p.Sheds, p.AdmRejected, p.CacheHits, p.CacheMisses, p.MoviesStarted)
		}
	}
	if t := m.Trace; t != nil {
		fmt.Fprintf(&b, "trace: %d events (%d retained)\n", t.Total, len(t.Events))
		if t.DiskWait != nil && t.DiskWait.Count() > 0 {
			fmt.Fprintf(&b, "trace disk wait (s):    %s\n", t.DiskWait)
		}
		if t.DiskService != nil && t.DiskService.Count() > 0 {
			fmt.Fprintf(&b, "trace disk service (s): %s\n", t.DiskService)
		}
		if t.NetDelay != nil && t.NetDelay.Count() > 0 {
			fmt.Fprintf(&b, "trace net delay (s):    %s\n", t.NetDelay)
		}
	}
	return b.String()
}

// FaultsSeen reports whether any degraded-mode activity occurred.
func (m Metrics) FaultsSeen() bool {
	return m.DiskFailStops > 0 || m.Nodes.Crashes > 0 || m.NetDropped > 0 ||
		m.Nacks > 0 || m.Retries > 0 || m.Timeouts > 0 || m.LostBlocks > 0
}

// FailoverSeen reports whether any node-suspicion or session-failover
// activity occurred.
func (m Metrics) FailoverSeen() bool {
	return m.SessionsImpacted > 0 || m.NodeSuspects > 0 || m.FailoverRedirects > 0
}

// OverloadSeen reports whether the overload-control subsystem was
// active (admission gating, shedding, or rebuild).
func (m Metrics) OverloadSeen() bool {
	return m.AdmLimit > 0 || m.Sheds > 0 || m.DegradedBlocks > 0 ||
		m.RebuiltBlocks > 0 || m.StaleNacks > 0 || m.RebuildWindows > 0
}

// WorkloadSeen reports whether a workload scenario drove the run.
func (m Metrics) WorkloadSeen() bool { return len(m.PhaseStats) > 0 }

// CacheSeen reports whether the prefix-cache tier saw any activity.
func (m Metrics) CacheSeen() bool {
	return m.CacheHits > 0 || m.CacheMisses > 0 || m.CacheInserts > 0 ||
		m.Merges > 0 || m.MergedBlocks > 0
}
