package core

import (
	"reflect"
	"testing"

	"spiffi/internal/sim"
	"spiffi/internal/trace"
	"spiffi/internal/workload"
)

// workloadConfig builds a small system driven by a three-phase scenario:
// steady viewing, a premiere flash crowd concentrated on video 0 with a
// VCR storm, then an open-ended recovery with reshuffled popularity.
func workloadConfig(t *testing.T) Config {
	t.Helper()
	cfg := DefaultConfig(6)
	cfg.Nodes = 2
	cfg.DisksPerNode = 2
	cfg.VideosPerDisk = 1
	cfg.Video.Length = sim.Minute
	cfg.ServerMemBytes = 32 * MB
	cfg.StartWindow = 10 * sim.Second
	cfg.MeasureTime = 90 * sim.Second
	wl, err := workload.ParseSpec(
		"think=5s; steady:30s; premiere:30s load=3 promote=0 share=0.8 seekboost=2; recover:* shuffle")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workload = wl
	return cfg
}

// A workload-free run must surface no phase data at all.
func TestWorkloadAbsentLeavesNoPhaseStats(t *testing.T) {
	cfg := workloadConfig(t)
	cfg.Workload = workload.Config{}
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.WorkloadSeen() || m.PhaseStats != nil {
		t.Fatalf("phase stats without a workload: %+v", m.PhaseStats)
	}
}

// A workload-driven run produces one contiguous phase segment per phase
// entered, bucketed counters that reconcile with the lifetime totals,
// and one wl.phase trace event per segment.
func TestWorkloadPhaseStats(t *testing.T) {
	cfg := workloadConfig(t)
	cfg.Trace = trace.Options{Enabled: true, Capacity: 1 << 16}
	s, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !m.Started {
		t.Fatal("run never started")
	}
	if !m.WorkloadSeen() || len(m.PhaseStats) != 3 {
		t.Fatalf("want 3 phase segments, got %+v", m.PhaseStats)
	}
	wantNames := []string{"steady", "premiere", "recover"}
	var movies, glitches int64
	for i, ps := range m.PhaseStats {
		if ps.Name != wantNames[i] || ps.Index != i || ps.Cycle != 0 {
			t.Fatalf("segment %d = %+v, want name %q index %d", i, ps, wantNames[i], i)
		}
		if ps.End <= ps.Start {
			t.Fatalf("segment %d empty or unclosed: %+v", i, ps)
		}
		if i > 0 && ps.Start != m.PhaseStats[i-1].End {
			t.Fatalf("segments not contiguous at %d: %v != %v", i, ps.Start, m.PhaseStats[i-1].End)
		}
		movies += ps.MoviesStarted
		glitches += ps.Glitches
	}
	if m.PhaseStats[0].Start != 0 {
		t.Fatalf("first segment starts at %v, want 0", m.PhaseStats[0].Start)
	}
	if m.PhaseStats[2].End != m.MeasureEnd {
		t.Fatalf("last segment ends at %v, want run end %v", m.PhaseStats[2].End, m.MeasureEnd)
	}
	if movies < int64(cfg.Terminals) {
		t.Fatalf("phase-bucketed movies started = %d, want at least one per terminal", movies)
	}
	// Phase counters are lifetime-based; the window total is a subset.
	if glitches < m.Glitches {
		t.Fatalf("phase glitches %d < window glitches %d", glitches, m.Glitches)
	}
	var phaseEvents int
	for _, ev := range m.Trace.Events {
		if ev.Kind == trace.KindWlPhase {
			phaseEvents++
		}
	}
	if phaseEvents != len(m.PhaseStats) {
		t.Fatalf("trace wl.phase events = %d, segments = %d", phaseEvents, len(m.PhaseStats))
	}
}

// The same seed must reproduce a workload-driven run exactly, and a
// different seed must change it (the scenario is seeded, not wall-new).
func TestWorkloadDeterminism(t *testing.T) {
	run := func(seed uint64) Metrics {
		cfg := workloadConfig(t)
		cfg.Seed = seed
		m, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	c := run(8)
	if reflect.DeepEqual(a.PhaseStats, c.PhaseStats) && a.BlocksServed == c.BlocksServed {
		t.Fatal("different seed reproduced the identical run")
	}
}
