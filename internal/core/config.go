// Package core assembles the full SPIFFI video-on-demand simulation: the
// video library, striped (or non-striped) placement, server nodes with
// buffer pools, disks and prefetch workers, the network, and the video
// terminals. It runs the paper's methodology (§6, §7.1): terminals start
// at random intervals, measurement begins once every terminal is actively
// viewing, runs for a fixed simulated time, and the headline metric is
// the maximum number of terminals supported with zero glitches.
//
// Beyond single runs, the package provides the measurement machinery the
// experiments are built from: FindMaxTerminals implements the paper's
// capacity search (doubling ascent plus bisection, all seeds must pass),
// and Runner fans independent simulations — sweep points, search probes,
// seed replications — across a bounded worker pool with bit-identical
// results for every worker count (see runner.go and search.go for the
// ordering discipline that makes that hold). Observability rides along:
// when Config.Trace is enabled each run's Metrics carries a structured
// event trace (internal/trace, see OBSERVABILITY.md) that follows the
// same consumed-results discipline, so traces are as deterministic as
// the metrics they accompany.
package core

import (
	"fmt"

	"spiffi/internal/bufferpool"
	"spiffi/internal/cache"
	"spiffi/internal/cpu"
	"spiffi/internal/disk"
	"spiffi/internal/dsched"
	"spiffi/internal/faults"
	"spiffi/internal/mpeg"
	"spiffi/internal/network"
	"spiffi/internal/overload"
	"spiffi/internal/prefetch"
	"spiffi/internal/sim"
	"spiffi/internal/terminal"
	"spiffi/internal/trace"
	"spiffi/internal/workload"
)

// KB and MB are byte-size helpers used throughout configurations.
const (
	KB int64 = 1024
	MB int64 = 1024 * 1024
	GB int64 = 1024 * 1024 * 1024
)

// Config is a complete simulation configuration. DefaultConfig returns
// the paper's base system (§7: 4 processors, 16 disks, 64 videos, 4 GB of
// server memory, 512 KB stripes, 2 MB terminals, Zipf z=1, elevator disk
// scheduling, global LRU replacement).
type Config struct {
	Seed        uint64 // run seed (replication variable)
	LibrarySeed uint64 // video-content seed, fixed across a sweep

	Nodes         int
	DisksPerNode  int
	VideosPerDisk int

	MIPS       float64
	CPUCosts   cpu.Costs
	DiskParams disk.Params
	// ZonedDisks switches the drives to zoned-bit-recording geometry
	// (8 zones, 1.3/0.7 outer/inner spread) instead of the paper's
	// constant-cylinder simplification.
	ZonedDisks bool
	NetParams  network.Params
	Video      mpeg.Params

	StripeBytes int64
	Striped     bool

	ServerMemBytes   int64 // aggregate across nodes
	TerminalMemBytes int64

	Terminals int
	ZipfZ     float64 // 0 selects the uniform distribution

	Sched       dsched.Config
	Replacement bufferpool.PolicyKind
	Prefetch    prefetch.Config // zero WorkersPerDisk picks a per-scheduler default

	Pause          *terminal.PauseConfig
	VCR            *terminal.VCRConfig // §8.1 rewind/fast-forward workload
	PiggybackDelay sim.Duration        // >0 enables §8.2 piggybacking

	// RandomInitialPosition starts every terminal's first movie at a
	// uniformly random position, putting the snapshot directly in the
	// steady state the paper measures (§6: "the results represent a
	// snapshot of the system's performance with all the terminals
	// active"). Defaults to true in DefaultConfig.
	RandomInitialPosition bool

	// StartWindow staggers terminal start times uniformly over [0, w).
	StartWindow sim.Duration
	// MeasureTime is the measured simulated duration after warm-up.
	MeasureTime sim.Duration
	// StartupGrace bounds how long after StartWindow the simulator waits
	// for every terminal to begin display before declaring the
	// configuration overloaded.
	StartupGrace sim.Duration

	// Faults configures fault injection (disk slowdowns and fail-stops,
	// node crashes, network loss/jitter). The zero value injects nothing
	// and reproduces fault-free runs bit for bit.
	Faults faults.Config

	// ReplicateVideos stores a second, declustered copy of every video
	// (each block's replica on the next disk), letting terminals fail
	// over around a dead disk. Doubles per-disk space.
	ReplicateVideos bool

	// MirrorCrossNode places every replica on a *different node* than
	// its primary (layout.MirrorCrossNode) instead of the chained-disk
	// default, so a whole-node crash leaves every block reachable.
	// Requires ReplicateVideos and at least two nodes.
	MirrorCrossNode bool

	// Failover enables session continuity across node crashes: blocks
	// homed on a suspect node are proactively resolved to their mirror
	// copy and impacted sessions re-admit through the failover-priority
	// path. Requires ReplicateVideos; Normalize fills SuspectThreshold
	// and RejoinWarmup when set.
	Failover bool

	// SuspectThreshold is the consecutive-timeout count (across all
	// terminals) at which a node is marked suspect. 0 disables the
	// health tracker unless Failover is set (Normalize then fills 2).
	// Setting it without Failover still runs suspicion tracking and
	// recovered/lost session accounting — the comparison baseline.
	SuspectThreshold int

	// RejoinWarmup holds the adaptive admission limit down for this
	// long after a crashed node restarts, so the rejoining node is not
	// instantly re-saturated (0 = none; Normalize fills 30s with
	// Failover set).
	RejoinWarmup sim.Duration

	// RequestTimeout/MaxRetries/RetryBackoff configure the terminals'
	// degraded-mode retry machinery. A zero RequestTimeout disables it
	// entirely (no timers are armed); Normalize fills all three with
	// defaults whenever fault injection is enabled. RetryBackoffCap
	// clamps the exponential backoff growth (zero = 64x RetryBackoff) so
	// large retry budgets cannot overflow the backoff into a negative
	// duration.
	RequestTimeout  sim.Duration
	MaxRetries      int
	RetryBackoff    sim.Duration
	RetryBackoffCap sim.Duration

	// RetryJitter adds a uniform draw from a derived per-terminal
	// stream on top of each retry backoff, breaking up retry
	// synchronization storms after a node restart. Strictly opt-in:
	// zero (the default) draws nothing, so fault-injection runs
	// without it reproduce earlier builds bit for bit.
	RetryJitter sim.Duration

	// Cache configures the popularity-aware prefix-cache tier
	// (internal/cache, CACHING.md): each node keeps the first
	// PrefixBlocks blocks of popular videos in a budget carved from the
	// buffer pool, and viewers whose prefix is resident merge onto
	// in-flight disk streams (core/merge.go). The zero value disables
	// the tier entirely — no caches are built, the pool keeps its full
	// size, and runs reproduce cache-less builds bit for bit.
	Cache cache.Config

	// Overload configures the adaptive overload-control subsystem:
	// measurement-based admission, QoS load shedding, and rate-limited
	// mirror rebuild (internal/overload). The zero value arms no
	// timers and consumes no randomness, reproducing runs without the
	// subsystem bit for bit.
	Overload overload.Config

	// Workload configures the scenario generator (internal/workload,
	// WORKLOADS.md): time-varying phases driving video selection
	// (Zipf-with-churn, premieres), session arrivals (binge think time
	// scaled by phase load), and VCR storm intensity, with phase entries
	// traced as wl.phase events and degradation counters bucketed per
	// phase in Metrics.PhaseStats. The zero value is strictly inert —
	// no schedule is compiled, no streams are derived, and every
	// existing run reproduces bit for bit.
	Workload workload.Config

	// Trace enables the structured event recorder (internal/trace). The
	// zero value records nothing and costs only nil-receiver checks on
	// the hot paths; enabling it never perturbs the simulation — traced
	// and untraced runs produce identical Metrics.
	Trace trace.Options
}

// DefaultConfig returns the paper's base configuration at a given
// terminal count.
func DefaultConfig(terminals int) Config {
	return Config{
		Seed:                  1,
		LibrarySeed:           1,
		Nodes:                 4,
		DisksPerNode:          4,
		VideosPerDisk:         4,
		MIPS:                  40,
		CPUCosts:              cpu.DefaultCosts(),
		DiskParams:            disk.DefaultParams(),
		NetParams:             network.DefaultParams(),
		Video:                 mpeg.DefaultParams(),
		StripeBytes:           512 * KB,
		Striped:               true,
		ServerMemBytes:        4 * GB,
		TerminalMemBytes:      2 * MB,
		Terminals:             terminals,
		ZipfZ:                 1.0,
		Sched:                 dsched.Config{Kind: dsched.KindElevator},
		Replacement:           bufferpool.PolicyGlobalLRU,
		Prefetch:              prefetch.Config{Mode: prefetch.ModeBasic},
		RandomInitialPosition: true,
		StartWindow:           60 * sim.Second,
		MeasureTime:           10 * sim.Minute,
		StartupGrace:          10 * sim.Minute,
	}
}

// TotalDisks returns Nodes*DisksPerNode.
func (c Config) TotalDisks() int { return c.Nodes * c.DisksPerNode }

// NumVideos returns the library size.
func (c Config) NumVideos() int { return c.VideosPerDisk * c.TotalDisks() }

// PoolPagesPerNode returns each node's buffer-pool frame count. An
// enabled prefix cache carves its budget out of the same server memory,
// shrinking the pool — the comparison against a cache-less run is at
// equal total hardware.
func (c Config) PoolPagesPerNode() int {
	mem := c.ServerMemBytes
	if c.Cache.Enabled() {
		mem -= c.Cache.BudgetBytes
	}
	return int(mem / int64(c.Nodes) / c.StripeBytes)
}

// StripePlayTime returns how long one full stripe block plays at the
// configured bit rate (the prefetch deadline-estimation unit).
func (c Config) StripePlayTime() sim.Duration {
	return sim.DurationOfSeconds(float64(c.StripeBytes) * 8 / float64(c.Video.BitRate))
}

// Normalize fills derived defaults: the prefetch strategy and worker
// count are chosen to suit the disk scheduler, as the paper does
// ("the prefetching mechanism was configured to maximize the performance
// of the disk scheduling algorithm in use", §5.2.3).
func (c Config) Normalize() Config {
	if c.Prefetch.Mode == "" {
		c.Prefetch.Mode = prefetch.ModeBasic
	}
	if c.Prefetch.Mode != prefetch.ModeOff {
		if c.Sched.IsRealTime() {
			// Real-time scheduling benefits from aggressive, deadline-
			// aware prefetching; it can always skip lazy prefetches.
			if c.Prefetch.Mode == prefetch.ModeBasic {
				c.Prefetch.Mode = prefetch.ModeRealTime
			}
			if c.Prefetch.WorkersPerDisk == 0 {
				c.Prefetch.WorkersPerDisk = 4
			}
		} else {
			// Non-real-time schedulers cannot tell prefetches from
			// urgent demand reads, so prefetching is kept timid.
			if c.Prefetch.WorkersPerDisk == 0 {
				c.Prefetch.WorkersPerDisk = 1
			}
		}
	}
	c.Faults.Normalize()
	if c.Failover && c.SuspectThreshold == 0 {
		c.SuspectThreshold = 2
	}
	if c.Failover && c.RejoinWarmup == 0 {
		c.RejoinWarmup = 30 * sim.Second
	}
	if c.Faults.Enabled() || c.SuspectThreshold > 0 {
		// Degraded-mode operation needs the retry machinery; fill
		// defaults so a bare fault config behaves sensibly. With faults
		// disabled RequestTimeout stays zero and no timers are armed —
		// that keeps fault-free runs event-identical to builds predating
		// fault injection.
		if c.RequestTimeout == 0 {
			c.RequestTimeout = 2 * sim.Second
		}
		if c.MaxRetries == 0 {
			c.MaxRetries = 3
		}
		if c.RetryBackoff == 0 {
			c.RetryBackoff = 200 * sim.Millisecond
		}
	}
	c.Overload = c.Overload.Normalize(c.StripePlayTime())
	c.Cache = c.Cache.Normalize()
	c.Workload = c.Workload.Normalize()
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Nodes < 1 || c.DisksPerNode < 1 {
		return fmt.Errorf("core: need nodes >= 1 and disks >= 1")
	}
	if c.VideosPerDisk < 1 {
		return fmt.Errorf("core: need at least one video per disk")
	}
	if c.StripeBytes < 1 {
		return fmt.Errorf("core: non-positive stripe size")
	}
	if c.TerminalMemBytes < c.StripeBytes {
		return fmt.Errorf("core: terminal memory %d below one stripe block %d",
			c.TerminalMemBytes, c.StripeBytes)
	}
	if c.PoolPagesPerNode() < 1 {
		return fmt.Errorf("core: server memory %d gives an empty buffer pool", c.ServerMemBytes)
	}
	if c.Terminals < 1 {
		return fmt.Errorf("core: need at least one terminal")
	}
	if c.ZipfZ < 0 {
		return fmt.Errorf("core: negative zipf skew")
	}
	if c.MeasureTime <= 0 {
		return fmt.Errorf("core: non-positive measure time")
	}
	if err := c.Sched.Validate(); err != nil {
		return err
	}
	if c.Prefetch.Mode == prefetch.ModeDelayed && c.Prefetch.MaxAdvance <= 0 {
		return fmt.Errorf("core: delayed prefetching needs MaxAdvance > 0")
	}
	if (c.Prefetch.Mode == prefetch.ModeDelayed || c.Prefetch.Mode == prefetch.ModeRealTime) && !c.Sched.IsRealTime() {
		return fmt.Errorf("core: %s prefetching requires the real-time disk scheduler", c.Prefetch.Mode)
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if c.RequestTimeout < 0 || c.MaxRetries < 0 || c.RetryBackoff < 0 || c.RetryBackoffCap < 0 || c.RetryJitter < 0 {
		return fmt.Errorf("core: negative retry parameter")
	}
	if err := c.Overload.Validate(); err != nil {
		return err
	}
	if err := c.Cache.Validate(); err != nil {
		return err
	}
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if c.Cache.Enabled() && c.Cache.BudgetBytes/int64(c.Nodes) < c.StripeBytes {
		return fmt.Errorf("core: cache budget %d below one block per node", c.Cache.BudgetBytes)
	}
	if c.Overload.RebuildRate > 0 && !c.ReplicateVideos {
		return fmt.Errorf("core: mirror rebuild needs ReplicateVideos (no healthy copy to rebuild from)")
	}
	if c.RequestTimeout > 0 && c.MaxRetries > 0 && c.RetryBackoff <= 0 {
		return fmt.Errorf("core: retries need a positive backoff")
	}
	if c.ReplicateVideos && c.TotalDisks() < 2 {
		return fmt.Errorf("core: replication needs at least two disks")
	}
	if c.MirrorCrossNode && !c.ReplicateVideos {
		return fmt.Errorf("core: cross-node mirroring needs ReplicateVideos")
	}
	if c.MirrorCrossNode && c.Nodes < 2 {
		return fmt.Errorf("core: cross-node mirroring needs at least two nodes")
	}
	if c.Failover && !c.ReplicateVideos {
		return fmt.Errorf("core: failover needs ReplicateVideos (no mirror to redirect to)")
	}
	if c.SuspectThreshold < 0 || c.RejoinWarmup < 0 {
		return fmt.Errorf("core: negative failover parameter")
	}
	if v := c.VCR; v != nil {
		if v.MeanSeeksPerMovie < 0 || v.MeanDistanceFrac <= 0 ||
			v.ForwardProb < 0 || v.ForwardProb > 1 {
			return fmt.Errorf("core: invalid VCR config %+v", *v)
		}
		if v.Skim && (v.SkimStrideBlocks < 1 || v.SkimSegmentFrames < 1) {
			return fmt.Errorf("core: skim needs positive stride and segment length")
		}
	}
	return nil
}
