package core_test

import (
	"fmt"
	"testing"

	"spiffi/internal/core"
	"spiffi/internal/faults"
	"spiffi/internal/sim"
)

// chaosConfig is the chaos-soak scenario: a mid-size cross-node-mirrored
// system with failover, adaptive admission, shedding and rebuild all
// armed, soaked in a seeded randomized fault schedule (disk slowdowns,
// disk fail-stops, node crashes, network loss and jitter) on top of one
// pinned node crash so every seed exercises the failover path.
func chaosConfig(seed uint64) core.Config {
	cfg := core.DefaultConfig(22)
	cfg.Seed = seed
	cfg.Nodes = 4
	cfg.DisksPerNode = 2
	cfg.VideosPerDisk = 2
	cfg.Video.Length = 2 * sim.Minute
	cfg.ServerMemBytes = 64 * core.MB
	cfg.StartWindow = 10 * sim.Second
	cfg.MeasureTime = 2 * sim.Minute
	cfg.StartupGrace = 5 * sim.Minute
	cfg.ReplicateVideos = true
	cfg.MirrorCrossNode = true
	cfg.Failover = true
	cfg.Overload.AdmitLimit = 20
	cfg.Overload.Adaptive = true
	cfg.Overload.Shed = true
	cfg.Overload.RebuildRate = 8 * core.MB
	cfg.Faults = faults.Config{
		DiskSlowRate:    4,
		DiskFailRate:    2,
		DiskRepairTime:  10 * sim.Second,
		NodeCrashRate:   4,
		NodeRestartTime: 15 * sim.Second,
		NetLossProb:     0.002,
		NetJitterMax:    2 * sim.Millisecond,
	}
	return cfg
}

// runChaos runs one seeded soak and audits the invariants that must hold
// whatever the fault schedule did.
func runChaos(t *testing.T, seed uint64) core.Metrics {
	t.Helper()
	s, err := core.NewSimulation(chaosConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	s.ScheduleNodeCrash(1, sim.Time(60*sim.Second), 15*sim.Second)
	m, err := s.Run()
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if !m.Started {
		t.Fatalf("seed %d: never reached steady state", seed)
	}
	if m.BlocksServed == 0 || m.MoviesCompleted == 0 {
		t.Fatalf("seed %d: no progress: blocks=%d movies=%d", seed, m.BlocksServed, m.MoviesCompleted)
	}

	// Admission slot conservation: the controller's active count must
	// equal the number of terminals actually holding a slot — a crash,
	// shed, abort or failover re-admission that leaked or double-counted
	// a slot breaks this.
	holders := 0
	for _, term := range s.Terminals() {
		if term.HoldsSlot() {
			holders++
		}
		// A deadlocked terminal would strand issued-but-unresolved
		// requests; outstanding counts must stay sane.
		if o := term.Outstanding(); o < 0 {
			t.Fatalf("seed %d: negative outstanding requests: %d", seed, o)
		}
	}
	adm := s.Admission()
	if adm.Active() != holders {
		t.Fatalf("seed %d: admission says %d active, %d terminals hold slots",
			seed, adm.Active(), holders)
	}
	if adm.Active() < 0 || adm.Waiting() < 0 {
		t.Fatalf("seed %d: negative admission state: active=%d waiting=%d",
			seed, adm.Active(), adm.Waiting())
	}

	// Every impacted session must terminate as recovered or accounted
	// lost — none may vanish.
	if m.SessionsImpacted != m.SessionsRecovered+m.SessionsLost {
		t.Fatalf("seed %d: session accounting leaked: impacted=%d recovered=%d lost=%d",
			seed, m.SessionsImpacted, m.SessionsRecovered, m.SessionsLost)
	}
	if m.NodeRejoins > m.NodeSuspects {
		t.Fatalf("seed %d: more rejoins than suspicion episodes: %d > %d",
			seed, m.NodeRejoins, m.NodeSuspects)
	}

	// Shedding must only ever degrade unprotected streams.
	if m.DegradedBlocksProtected != 0 {
		t.Fatalf("seed %d: shed degraded %d protected blocks", seed, m.DegradedBlocksProtected)
	}

	// The glitch post-mortem partitions every glitch by cause, and a
	// crashed node's silent drops split exactly into requests and replies.
	if m.GlitchesUnderrun+m.GlitchesDiskFail+m.GlitchesTimeout != m.Glitches {
		t.Fatalf("seed %d: glitch causes %d+%d+%d don't partition %d glitches",
			seed, m.GlitchesUnderrun, m.GlitchesDiskFail, m.GlitchesTimeout, m.Glitches)
	}
	if m.Nodes.DroppedReqs+m.Nodes.DroppedReplies != m.Nodes.Dropped {
		t.Fatalf("seed %d: drop accounting leaked: req=%d reply=%d total=%d",
			seed, m.Nodes.DroppedReqs, m.Nodes.DroppedReplies, m.Nodes.Dropped)
	}
	return m
}

// TestChaosSoak soaks seeded randomized fault schedules with every
// robustness mechanism armed and asserts the invariants, plus that each
// seed replays bit-identically (`make chaos-soak` runs this under
// -race; -short trims to one seed for the verify budget).
func TestChaosSoak(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			first := runChaos(t, seed)
			if first.Nodes.Crashes == 0 || first.SessionsImpacted == 0 {
				t.Fatalf("soak exercised no failover: crashes=%d impacted=%d",
					first.Nodes.Crashes, first.SessionsImpacted)
			}
			again := runChaos(t, seed)
			if fmt.Sprintf("%+v", first) != fmt.Sprintf("%+v", again) {
				t.Fatalf("seed %d not reproducible:\n%+v\n%+v", seed, first, again)
			}
		})
	}
}
