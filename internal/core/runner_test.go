package core_test

import (
	"fmt"
	"reflect"
	"testing"

	"spiffi/internal/core"
)

// searchOpts brackets the tiny system's ~40-60 terminal capacity tightly
// enough that a search costs a handful of runs.
func searchOpts() core.SearchOptions {
	return core.SearchOptions{Lo: 10, Hi: 160, Step: 10, Seeds: []uint64{1, 2}}
}

// tracedSearch runs one search capturing its trace lines, and strips the
// worker-dependent TotalRuns so results can be compared directly.
func tracedSearch(t *testing.T, workers int, opt core.SearchOptions) (core.SearchResult, []string) {
	t.Helper()
	var lines []string
	opt.Trace = func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	res, err := core.NewRunner(workers).FindMaxTerminals(tinyConfig(1), opt)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	if res.TotalRuns < res.Runs {
		t.Fatalf("workers=%d: TotalRuns=%d < consumed Runs=%d", workers, res.TotalRuns, res.Runs)
	}
	if workers == 1 && res.TotalRuns != res.Runs {
		t.Fatalf("1-worker search speculated: TotalRuns=%d Runs=%d", res.TotalRuns, res.Runs)
	}
	res.TotalRuns = 0
	return res, lines
}

// The parallel search must be bit-identical to sequential execution:
// same MaxTerminals, same AtMax metrics, same consumed-run count, and
// the same trace lines in the same order, whatever the worker count.
func TestSearchParityAcrossWorkers(t *testing.T) {
	seqRes, seqTrace := tracedSearch(t, 1, searchOpts())
	if seqRes.MaxTerminals == 0 {
		t.Fatal("tiny system found no capacity; bracket is wrong")
	}
	for _, workers := range []int{2, 8} {
		res, trace := tracedSearch(t, workers, searchOpts())
		if !reflect.DeepEqual(res, seqRes) {
			t.Errorf("workers=%d diverged:\nseq: %+v\npar: %+v", workers, seqRes, res)
		}
		if !reflect.DeepEqual(trace, seqTrace) {
			t.Errorf("workers=%d trace diverged:\nseq: %q\npar: %q", workers, seqTrace, trace)
		}
	}
}

// Same parity through the scan-down phase (lower bound already
// glitching), which speculates downward instead of doubling.
func TestSearchParityScanDown(t *testing.T) {
	opt := searchOpts()
	opt.Lo = 150 // far above capacity: Lo itself fails
	seqRes, seqTrace := tracedSearch(t, 1, opt)
	res, trace := tracedSearch(t, 8, opt)
	if !reflect.DeepEqual(res, seqRes) {
		t.Errorf("scan-down diverged:\nseq: %+v\npar: %+v", seqRes, res)
	}
	if !reflect.DeepEqual(trace, seqTrace) {
		t.Errorf("scan-down trace diverged:\nseq: %q\npar: %q", seqTrace, trace)
	}
}

// GlitchCurve results are keyed to terminal counts, never completion
// order, so the curve must match sequential exactly.
func TestGlitchCurveParityAcrossWorkers(t *testing.T) {
	counts := []int{10, 30, 60, 90, 120}
	seq, err := core.NewRunner(1).GlitchCurve(tinyConfig(1), counts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.NewRunner(8).GlitchCurve(tinyConfig(1), counts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("glitch curves diverged:\nseq: %v\npar: %v", seq, par)
	}
}

// The §7.1 stopping rule scans per-seed maxima in seed order, so the
// interval and the raw maxima must not depend on the worker count.
func TestConfidentMaxParityAcrossWorkers(t *testing.T) {
	opt := searchOpts()
	opt.Seeds = nil // ConfidentMax assigns one seed per search
	run := func(workers int) (iv interface{}, raw []int) {
		i, r, err := core.NewRunner(workers).ConfidentMax(tinyConfig(1), opt, 0.90, 0.5, 2, 3)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return i, r
	}
	seqIv, seqRaw := run(1)
	parIv, parRaw := run(8)
	if !reflect.DeepEqual(seqIv, parIv) || !reflect.DeepEqual(seqRaw, parRaw) {
		t.Fatalf("ConfidentMax diverged:\nseq: %+v %v\npar: %+v %v", seqIv, seqRaw, parIv, parRaw)
	}
}

// RunMany must return results by input index, identical to calling Run
// on each configuration in a loop.
func TestRunManyMatchesIndividualRuns(t *testing.T) {
	cfgs := []core.Config{tinyConfig(8), tinyConfig(24), tinyConfig(8)}
	cfgs[2].Seed = 77
	got, err := core.NewRunner(8).RunMany(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		want, err := core.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("RunMany[%d] diverged from Run:\ngot:  %+v\nwant: %+v", i, got[i], want)
		}
	}
}

// A worker count of zero selects GOMAXPROCS; negative likewise.
func TestRunnerDefaultWorkers(t *testing.T) {
	if core.NewRunner(0).Workers() < 1 || core.NewRunner(-3).Workers() < 1 {
		t.Fatal("defaulted worker count below 1")
	}
	if core.NewRunner(6).Workers() != 6 {
		t.Fatal("explicit worker count not honored")
	}
}
