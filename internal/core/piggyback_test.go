package core

import (
	"testing"

	"spiffi/internal/sim"
)

func TestPiggyBatchLeaderAndRiders(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	c := newPiggyCoordinator(k, 10*sim.Second)
	type outcome struct {
		term   int
		leader bool
		at     sim.Time
	}
	var got []outcome
	// Terminals 0 and 1 ask for video 7 within the window; terminal 2
	// asks for a different video.
	for _, tc := range []struct {
		term, video int
		at          sim.Time
	}{
		{0, 7, 0},
		{1, 7, sim.Time(3 * sim.Second)},
		{2, 9, sim.Time(1 * sim.Second)},
	} {
		tc := tc
		k.SpawnAt(tc.at, "t", func(p *sim.Proc) {
			leader := c.JoinOrLead(p, tc.term, tc.video)
			got = append(got, outcome{tc.term, leader, p.Now()})
		})
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("outcomes = %d", len(got))
	}
	for _, o := range got {
		switch o.term {
		case 0:
			if !o.leader || o.at != sim.Time(10*sim.Second) {
				t.Fatalf("terminal 0: leader=%v at=%v, want leader at batch close (10s)", o.leader, o.at)
			}
		case 1:
			if o.leader || o.at != sim.Time(10*sim.Second) {
				t.Fatalf("terminal 1: leader=%v at=%v, want rider released with batch", o.leader, o.at)
			}
		case 2:
			if !o.leader || o.at != sim.Time(11*sim.Second) {
				t.Fatalf("terminal 2: leader=%v at=%v, want own batch's leader at 11s", o.leader, o.at)
			}
		}
	}
	if c.Batches != 2 || c.Riders != 3 {
		t.Fatalf("batches=%d riders=%d, want 2/3", c.Batches, c.Riders)
	}
}

func TestPiggyNewBatchAfterClose(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	c := newPiggyCoordinator(k, 5*sim.Second)
	var leaders int
	for _, at := range []sim.Time{0, sim.Time(20 * sim.Second)} {
		at := at
		k.SpawnAt(at, "t", func(p *sim.Proc) {
			if c.JoinOrLead(p, int(at), 3) {
				leaders++
			}
		})
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if leaders != 2 {
		t.Fatalf("leaders = %d, want 2 (separate batches for the same video)", leaders)
	}
}
