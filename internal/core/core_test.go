package core_test

import (
	"testing"

	"spiffi/internal/bufferpool"
	"spiffi/internal/core"
	"spiffi/internal/dsched"
	"spiffi/internal/prefetch"
	"spiffi/internal/sim"
	"spiffi/internal/terminal"
)

// tinyConfig is a 2-node/4-disk system with 2-minute videos, sized so a
// full run takes tens of milliseconds. Its glitch-free capacity is
// around 40 terminals.
func tinyConfig(terminals int) core.Config {
	cfg := core.DefaultConfig(terminals)
	cfg.Nodes = 2
	cfg.DisksPerNode = 2
	cfg.VideosPerDisk = 4
	cfg.Video.Length = 2 * sim.Minute
	// Small enough that the library (16 videos x ~60 MB) cannot be
	// cached outright; the disks must carry the steady-state load.
	cfg.ServerMemBytes = 64 * core.MB
	cfg.StartWindow = 10 * sim.Second
	cfg.MeasureTime = 60 * sim.Second
	cfg.StartupGrace = 5 * sim.Minute
	return cfg
}

func TestLightLoadGlitchFree(t *testing.T) {
	m, err := core.Run(tinyConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Started {
		t.Fatal("simulation never reached steady state")
	}
	if m.Glitches != 0 {
		t.Fatalf("light load glitched %d times", m.Glitches)
	}
	if m.BlocksServed == 0 {
		t.Fatal("no blocks served")
	}
	if m.DiskUtilAvg <= 0 || m.DiskUtilAvg > 0.7 {
		t.Fatalf("light-load disk utilization %v implausible", m.DiskUtilAvg)
	}
}

func TestOverloadGlitches(t *testing.T) {
	// ~3x the tiny system's capacity must glitch.
	m, err := core.Run(tinyConfig(120))
	if err != nil {
		t.Fatal(err)
	}
	if m.GlitchFree() {
		t.Fatal("gross overload ran glitch-free; the model cannot be load-sensitive")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() core.Metrics {
		m, err := core.Run(tinyConfig(30))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a.Glitches != b.Glitches || a.BlocksServed != b.BlocksServed ||
		a.Events != b.Events || a.PeakNetBandwidth != b.PeakNetBandwidth {
		t.Fatalf("identical seeds diverged:\n%+v\n%+v", a, b)
	}
}

func TestSeedChangesOutcomeDetails(t *testing.T) {
	cfg := tinyConfig(30)
	a, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99
	b, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Events == b.Events && a.BlocksServed == b.BlocksServed {
		t.Fatal("different seeds produced identical event counts; seeding is broken")
	}
}

func TestMeasurementGatesGlitches(t *testing.T) {
	// Same overload, but with a measurement window so tiny that the
	// warm-up absorbs most glitching: measured glitches must not exceed
	// a long window's.
	cfg := tinyConfig(100)
	cfg.MeasureTime = time1
	short, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MeasureTime = 60 * sim.Second
	long, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if short.Started && long.Started && short.Glitches > long.Glitches {
		t.Fatalf("short window recorded more glitches (%d) than long (%d)",
			short.Glitches, long.Glitches)
	}
}

const time1 = 1 * sim.Second

func TestStripedOutperformsNonStriped(t *testing.T) {
	// §7.4: at a load the striped layout handles, the non-striped layout
	// glitches badly (the disks holding popular videos overload).
	// Measured tiny-system capacities: striped ~60, non-striped ~40.
	cfg := tinyConfig(52)
	cfg.Replacement = bufferpool.PolicyLovePrefetch
	striped, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Striped = false
	non, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !striped.GlitchFree() {
		t.Fatalf("striped layout glitched at moderate load: %d", striped.Glitches)
	}
	if non.GlitchFree() {
		t.Fatal("non-striped layout matched striped at a load that should overload hot disks")
	}
}

func TestRealTimeSchedulerRuns(t *testing.T) {
	cfg := tinyConfig(24)
	cfg.Sched = dsched.Config{Kind: dsched.KindRealTime, Classes: 3, Spacing: 4 * sim.Second}
	cfg.Replacement = bufferpool.PolicyLovePrefetch
	m, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !m.GlitchFree() {
		t.Fatalf("real-time scheduling glitched at light load: %d", m.Glitches)
	}
	if m.Nodes.Prefetches == 0 {
		t.Fatal("real-time prefetching issued no prefetches")
	}
}

func TestDelayedPrefetchingRuns(t *testing.T) {
	cfg := tinyConfig(24)
	cfg.Sched = dsched.Config{Kind: dsched.KindRealTime, Classes: 3, Spacing: 4 * sim.Second}
	cfg.Replacement = bufferpool.PolicyLovePrefetch
	cfg.Prefetch = prefetch.Config{Mode: prefetch.ModeDelayed, MaxAdvance: 8 * sim.Second}
	m, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !m.GlitchFree() {
		t.Fatalf("delayed prefetching glitched at light load: %d", m.Glitches)
	}
}

func TestGSSAndRoundRobinRun(t *testing.T) {
	for _, sc := range []dsched.Config{
		{Kind: dsched.KindGSS, Groups: 1},
		{Kind: dsched.KindRoundRobin},
	} {
		cfg := tinyConfig(16)
		cfg.Sched = sc
		m, err := core.Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", sc, err)
		}
		if !m.Started || m.BlocksServed == 0 {
			t.Fatalf("%v: no progress", sc)
		}
	}
}

func TestPauseExperimentRuns(t *testing.T) {
	cfg := tinyConfig(24)
	cfg.Pause = &terminal.PauseConfig{MeanPauses: 4, MeanDuration: 10 * sim.Second}
	m, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Started {
		t.Fatal("paused system never started")
	}
	// §8.1: pausing should not cause glitches at a supportable load.
	if m.Glitches != 0 {
		t.Fatalf("pausing caused %d glitches at light load", m.Glitches)
	}
}

func TestPiggybackReducesServerLoad(t *testing.T) {
	base := tinyConfig(40)
	base.ZipfZ = 1.5 // strong skew: batching collapses most starts
	base.Video.Length = 90 * sim.Second
	mBase, err := core.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	pig := base
	pig.PiggybackDelay = 60 * sim.Second
	pig.StartupGrace = 10 * sim.Minute
	s, err := core.NewSimulation(pig)
	if err != nil {
		t.Fatal(err)
	}
	mPig, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	batches, riders := s.PiggybackStats()
	if batches == 0 || riders <= batches {
		t.Fatalf("piggybacking formed no multi-terminal batches: batches=%d riders=%d", batches, riders)
	}
	if !mPig.Started {
		t.Fatal("piggybacked system never started")
	}
	// Server block traffic per started terminal must drop.
	if mBase.Started && mPig.Nodes.Requests >= mBase.Nodes.Requests {
		t.Fatalf("piggybacking did not reduce server requests: %d vs %d",
			mPig.Nodes.Requests, mBase.Nodes.Requests)
	}
}

func TestFindMaxTerminalsBracketsCapacity(t *testing.T) {
	res, err := core.FindMaxTerminals(tinyConfig(0), core.SearchOptions{
		Lo: 8, Hi: 120, Step: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxTerminals < 16 || res.MaxTerminals > 96 {
		t.Fatalf("max terminals = %d, expected within (16, 96) for the tiny system", res.MaxTerminals)
	}
	if res.Runs == 0 || len(res.AtMax) == 0 {
		t.Fatal("search reported no runs or no passing metrics")
	}
	// The reported max passes and max+step fails (by search invariant).
	if !res.AtMax[0].GlitchFree() {
		t.Fatal("metrics at max are not glitch-free")
	}
}

func TestGlitchCurveMonotoneTail(t *testing.T) {
	curve, err := core.GlitchCurve(tinyConfig(0), []int{16, 120})
	if err != nil {
		t.Fatal(err)
	}
	if curve[16] != 0 {
		t.Fatalf("16 terminals glitched: %d", curve[16])
	}
	if curve[120] == 0 {
		t.Fatal("120 terminals did not glitch")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*core.Config){
		func(c *core.Config) { c.Nodes = 0 },
		func(c *core.Config) { c.StripeBytes = 0 },
		func(c *core.Config) { c.TerminalMemBytes = 1 },
		func(c *core.Config) { c.ServerMemBytes = 0 },
		func(c *core.Config) { c.Terminals = 0 },
		func(c *core.Config) { c.ZipfZ = -1 },
		func(c *core.Config) { c.MeasureTime = 0 },
		func(c *core.Config) { c.Sched = dsched.Config{Kind: "nope"} },
		func(c *core.Config) {
			c.Prefetch = prefetch.Config{Mode: prefetch.ModeDelayed, MaxAdvance: sim.Second}
			// delayed prefetching without the real-time scheduler
		},
	}
	for i, mutate := range bad {
		cfg := tinyConfig(10)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
	if err := tinyConfig(10).Normalize().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestNormalizePrefetchDefaults(t *testing.T) {
	cfg := tinyConfig(10)
	cfg.Sched = dsched.Config{Kind: dsched.KindRealTime, Classes: 3, Spacing: 4 * sim.Second}
	n := cfg.Normalize()
	if n.Prefetch.Mode != prefetch.ModeRealTime {
		t.Fatalf("real-time scheduler should default to real-time prefetching, got %v", n.Prefetch.Mode)
	}
	if n.Prefetch.WorkersPerDisk != 4 {
		t.Fatalf("real-time prefetch workers = %d, want aggressive default 4", n.Prefetch.WorkersPerDisk)
	}
	cfg.Sched = dsched.Config{Kind: dsched.KindElevator}
	n = cfg.Normalize()
	if n.Prefetch.Mode != prefetch.ModeBasic || n.Prefetch.WorkersPerDisk != 1 {
		t.Fatalf("elevator should default to timid basic prefetching, got %+v", n.Prefetch)
	}
}

func TestDerivedConfigValues(t *testing.T) {
	cfg := core.DefaultConfig(100)
	if cfg.TotalDisks() != 16 || cfg.NumVideos() != 64 {
		t.Fatalf("base system: %d disks %d videos", cfg.TotalDisks(), cfg.NumVideos())
	}
	if got := cfg.PoolPagesPerNode(); got != 2048 {
		t.Fatalf("pool pages per node = %d, want 2048 (1GB / 512KB)", got)
	}
	// One 512 KB stripe block at 4 Mbit/s plays for ~1.049 s.
	if got := cfg.StripePlayTime().Seconds(); got < 1.04 || got > 1.06 {
		t.Fatalf("stripe play time = %v", got)
	}
}

// Failure injection: degrading one disk mid-measurement must cause
// glitches in an otherwise comfortable configuration — striping puts
// every stream on every disk, so one bad disk hurts everyone (the flip
// side of §7.4's load balancing).
func TestFailureInjectionCausesGlitches(t *testing.T) {
	cfg := tinyConfig(32)
	cfg.Replacement = bufferpool.PolicyLovePrefetch
	healthy, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !healthy.GlitchFree() {
		t.Fatalf("baseline glitched: %d", healthy.Glitches)
	}
	s, err := core.NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Degrade disk 0 by 8x for 30 simulated seconds, starting after the
	// start window (inside or near the measured region).
	s.ScheduleDiskFault(0, sim.Time(30*sim.Second), 8, 30*sim.Second)
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !m.Started {
		t.Fatal("faulted system never started")
	}
	if m.Glitches == 0 && m.GlitchTerminals == 0 {
		t.Fatal("an 8x disk degradation produced no glitches at near-capacity load")
	}
}

// After the fault clears, the system must recover: a fault confined to
// the warm-up leaves the measured window glitch-free.
func TestFailureRecovery(t *testing.T) {
	cfg := tinyConfig(24) // comfortably below capacity
	cfg.Replacement = bufferpool.PolicyLovePrefetch
	cfg.StartWindow = 5 * sim.Second
	cfg.StartupGrace = 10 * sim.Minute
	s, err := core.NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A degradation shorter than the terminals' ~4-second playout buffer:
	// streams ride through it on buffered data and the backlog drains
	// during warm-up, so the measured window stays clean.
	s.ScheduleDiskFault(1, sim.Time(sim.Second), 6, 3*sim.Second)
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !m.Started {
		t.Fatal("system never recovered to steady state")
	}
	if m.Glitches != 0 {
		t.Fatalf("glitches persisted after the fault cleared: %d", m.Glitches)
	}
}

// When even the lower bound glitches, the search must descend and still
// return a meaningful answer (possibly zero).
func TestSearchDescendsWhenLoFails(t *testing.T) {
	res, err := core.FindMaxTerminals(tinyConfig(0), core.SearchOptions{
		Lo: 112, Hi: 120, Step: 8, // tiny system's capacity is ~40-60
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxTerminals < 8 || res.MaxTerminals > 104 {
		t.Fatalf("descending search returned %d", res.MaxTerminals)
	}
	if !res.AtMax[0].GlitchFree() {
		t.Fatal("result not glitch-free")
	}
}

// A capacity beyond Hi is reported as Hi (the cap), not an error.
func TestSearchCapsAtHi(t *testing.T) {
	res, err := core.FindMaxTerminals(tinyConfig(0), core.SearchOptions{
		Lo: 8, Hi: 16, Step: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxTerminals != 16 {
		t.Fatalf("capped search = %d, want 16", res.MaxTerminals)
	}
}

func TestConfidentMaxStopsOnAgreement(t *testing.T) {
	// The deterministic tiny system gives near-identical per-seed maxima,
	// so the §7.1 stopping rule should fire at the minimum seed count.
	iv, maxima, err := core.ConfidentMax(tinyConfig(0), core.SearchOptions{
		Lo: 16, Hi: 96, Step: 16,
	}, 0.90, 0.25, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(maxima) < 2 {
		t.Fatalf("maxima = %v", maxima)
	}
	if iv.Mean < 16 || iv.Mean > 96 {
		t.Fatalf("interval mean = %v", iv.Mean)
	}
}

// Zoned disks must behave like a real system: same order of capacity as
// constant cylinders (the §6.2 ablation's premise).
func TestZonedDisksRun(t *testing.T) {
	cfg := tinyConfig(24)
	cfg.ZonedDisks = true
	m, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !m.GlitchFree() {
		t.Fatalf("zoned geometry glitched at light load: %d", m.Glitches)
	}
}

// VCR workloads integrate end to end: seeks happen, no deadlock, and the
// response-time histogram percentiles are populated.
func TestVCRWorkloadIntegration(t *testing.T) {
	cfg := tinyConfig(24)
	cfg.Replacement = bufferpool.PolicyLovePrefetch
	cfg.VCR = &terminal.VCRConfig{
		MeanSeeksPerMovie: 3,
		MeanDistanceFrac:  0.25,
		ForwardProb:       0.5,
		Skim:              true,
		SkimStrideBlocks:  4,
		SkimSegmentFrames: 15,
	}
	m, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Started {
		t.Fatal("never started")
	}
	if m.Seeks == 0 {
		t.Fatal("no seeks executed")
	}
	if m.SkimBlocks == 0 {
		t.Fatal("no skim blocks fetched")
	}
	if m.RespTimeP50 <= 0 || m.RespTimeP99 < m.RespTimeP50 {
		t.Fatalf("histogram percentiles wrong: p50=%v p99=%v", m.RespTimeP50, m.RespTimeP99)
	}
}
