package cpu

import (
	"math"
	"testing"

	"spiffi/internal/sim"
)

func TestInstructionTiming(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	c := New(k, 0, 40, DefaultCosts())
	var doneAt sim.Time
	k.Spawn("w", func(p *sim.Proc) {
		c.StartIO(p) // 20000 instrs at 40 MIPS = 500 µs
		doneAt = p.Now()
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if want := sim.Time(500 * sim.Microsecond); doneAt != want {
		t.Fatalf("StartIO finished at %v, want %v", doneAt, want)
	}
}

func TestSendReceiveCosts(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	c := New(k, 0, 40, DefaultCosts())
	var doneAt sim.Time
	k.Spawn("w", func(p *sim.Proc) {
		c.Send(p)    // 6800/40e6 = 170 µs
		c.Receive(p) // 2200/40e6 = 55 µs
		doneAt = p.Now()
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if want := sim.Time(225 * sim.Microsecond); doneAt != want {
		t.Fatalf("send+receive = %v, want %v", doneAt, want)
	}
}

func TestFCFSContention(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	c := New(k, 0, 40, DefaultCosts())
	var ends []sim.Time
	for i := 0; i < 3; i++ {
		k.Spawn("w", func(p *sim.Proc) {
			c.StartIO(p)
			ends = append(ends, p.Now())
		})
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, want := range []sim.Time{
		sim.Time(500 * sim.Microsecond),
		sim.Time(1000 * sim.Microsecond),
		sim.Time(1500 * sim.Microsecond),
	} {
		if ends[i] != want {
			t.Fatalf("completion %d at %v, want %v (FCFS serialization)", i, ends[i], want)
		}
	}
}

func TestUtilization(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	c := New(k, 0, 40, DefaultCosts())
	k.Spawn("w", func(p *sim.Proc) {
		c.Execute(p, 20_000_000) // 0.5s of work
	})
	if err := k.Run(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	if got := c.Utilization(); math.Abs(got-0.5) > 0.01 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
}

func TestZeroInstructionsFree(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	c := New(k, 0, 40, DefaultCosts())
	var doneAt sim.Time = -1
	k.Spawn("w", func(p *sim.Proc) {
		c.Execute(p, 0)
		doneAt = p.Now()
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 0 {
		t.Fatalf("zero-instruction execute took time: %v", doneAt)
	}
}
