// Package cpu models the video-server node processors: a FCFS-scheduled
// CPU at a fixed MIPS rating (Table 1: 40 MIPS, FCFS scheduling) that is
// charged fixed instruction counts for the operations the paper costs —
// starting an I/O (20000 instructions), sending a message (6800) and
// receiving one (2200), values measured on the Intel Paragon.
package cpu

import (
	"fmt"

	"spiffi/internal/sim"
)

// Costs holds instruction counts for the charged operations.
type Costs struct {
	StartIO int64 // instructions to initiate a disk I/O
	Send    int64 // instructions to send a message
	Receive int64 // instructions to receive a message
}

// DefaultCosts returns the Table 1 instruction counts.
func DefaultCosts() Costs {
	return Costs{StartIO: 20000, Send: 6800, Receive: 2200}
}

// CPU is one node processor.
type CPU struct {
	fac   *sim.Facility
	mips  float64
	costs Costs
}

// New creates a CPU with the given MIPS rating (paper: 40).
func New(k *sim.Kernel, id int, mips float64, costs Costs) *CPU {
	if mips <= 0 {
		panic("cpu: non-positive MIPS")
	}
	return &CPU{
		fac:   sim.NewFacility(k, fmt.Sprintf("cpu-%d", id)),
		mips:  mips,
		costs: costs,
	}
}

// instrTime converts an instruction count into execution time.
func (c *CPU) instrTime(instrs int64) sim.Duration {
	return sim.DurationOfSeconds(float64(instrs) / (c.mips * 1e6))
}

// Execute charges `instrs` instructions, queueing FCFS behind other work.
func (c *CPU) Execute(p *sim.Proc, instrs int64) {
	if instrs <= 0 {
		return
	}
	c.fac.Use(p, c.instrTime(instrs))
}

// StartIO charges the I/O initiation cost.
func (c *CPU) StartIO(p *sim.Proc) { c.Execute(p, c.costs.StartIO) }

// Send charges the message send cost.
func (c *CPU) Send(p *sim.Proc) { c.Execute(p, c.costs.Send) }

// Receive charges the message receive cost.
func (c *CPU) Receive(p *sim.Proc) { c.Execute(p, c.costs.Receive) }

// Utilization reports the busy fraction of the measurement window.
func (c *CPU) Utilization() float64 { return c.fac.Utilization() }

// ResetStats restarts the measurement window.
func (c *CPU) ResetStats() { c.fac.ResetStats() }

// Costs returns the configured instruction costs.
func (c *CPU) Costs() Costs { return c.costs }
