package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"spiffi/internal/sim"
)

// newTestRecorder returns a recorder whose kernel clock can be stepped
// with the returned advance func.
func newTestRecorder(t *testing.T, capacity int) (*Recorder, func(sim.Time)) {
	t.Helper()
	k := sim.NewKernel()
	t.Cleanup(k.Close)
	r := NewRecorder(k, Options{Enabled: true, Capacity: capacity})
	advance := func(to sim.Time) {
		k.At(to, func() {})
		if err := k.Run(to); err != nil {
			t.Fatal(err)
		}
	}
	return r, advance
}

func TestRecorderDisabled(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	if r := NewRecorder(k, Options{}); r != nil {
		t.Fatalf("disabled options must yield a nil recorder, got %v", r)
	}
	// Every emit method and Snapshot must be safe on nil.
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports Enabled")
	}
	r.DiskEnqueue(1, 2, 3, false, 4)
	r.DiskDispatch(1, 2, 3, true, 4)
	r.DiskComplete(1, 2, 3, false, true)
	r.PoolHit(1, 2, 3, 4, false)
	r.PoolMiss(1, 2, 3, 4)
	r.PoolPrefetch(1, 2, 3, 4)
	r.PoolProtect(1, 2, 3, 4)
	r.PoolEvict(1, 2, 3, true)
	r.NetSend(100, 5, false)
	r.AdmWait(1, 2, 3)
	r.AdmAdmit(1, 2, 3)
	r.AdmRelease(1, 2, 3)
	r.TermBuffer(1, 2, 3, 4)
	r.TermGlitch(1, CauseTimeout, 2, 3, 4)
	r.TermPrime(1, 2, 3, 4)
	r.TermSeek(1, 2, 3)
	if d := r.Snapshot(); d != nil {
		t.Fatalf("nil recorder Snapshot = %v, want nil", d)
	}
}

func TestRecorderRecordsInOrder(t *testing.T) {
	r, advance := newTestRecorder(t, 16)
	r.DiskEnqueue(3, 7, sim.Time(5*sim.Second), false, 2)
	advance(sim.Time(1 * sim.Second))
	r.DiskDispatch(3, 7, 200*sim.Microsecond, false, 1)
	advance(sim.Time(2 * sim.Second))
	r.DiskComplete(3, 7, 15*sim.Millisecond, false, false)

	d := r.Snapshot()
	if d.Total != 3 || len(d.Events) != 3 || d.Dropped() != 0 {
		t.Fatalf("snapshot totals = %d/%d/%d, want 3/3/0", d.Total, len(d.Events), d.Dropped())
	}
	want := []Kind{KindDiskEnqueue, KindDiskDispatch, KindDiskComplete}
	for i, ev := range d.Events {
		if ev.Kind != want[i] {
			t.Errorf("event %d kind = %s, want %s", i, ev.Kind.Name(), want[i].Name())
		}
		if ev.Terminal != 7 || ev.A != 3 {
			t.Errorf("event %d terminal/disk = %d/%d, want 7/3", i, ev.Terminal, ev.A)
		}
	}
	if d.Events[0].T != 0 || d.Events[1].T != sim.Time(sim.Second) || d.Events[2].T != sim.Time(2*sim.Second) {
		t.Errorf("timestamps = %v %v %v", d.Events[0].T, d.Events[1].T, d.Events[2].T)
	}
	// Histograms see the dispatch wait and the service time.
	if n := d.DiskWait.Count(); n != 1 {
		t.Errorf("DiskWait count = %d, want 1", n)
	}
	if n := d.DiskService.Count(); n != 1 {
		t.Errorf("DiskService count = %d, want 1", n)
	}
}

func TestRecorderInfiniteDeadline(t *testing.T) {
	r, _ := newTestRecorder(t, 4)
	r.DiskEnqueue(0, -1, sim.TimeInfinity, true, 0)
	ev := r.Snapshot().Events[0]
	if ev.C != NoDeadline {
		t.Fatalf("infinite deadline recorded as %d, want %d", ev.C, NoDeadline)
	}
	if ev.D != 1 {
		t.Fatalf("prefetch flag = %d, want 1", ev.D)
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	r, _ := newTestRecorder(t, 4)
	for i := 0; i < 10; i++ {
		r.PoolMiss(0, i, 0, i)
	}
	d := r.Snapshot()
	if d.Total != 10 || len(d.Events) != 4 || d.Dropped() != 6 {
		t.Fatalf("totals = %d/%d/%d, want 10/4/6", d.Total, len(d.Events), d.Dropped())
	}
	for i, ev := range d.Events {
		if want := int64(6 + i); ev.C != want {
			t.Errorf("retained event %d block = %d, want %d (newest must win)", i, ev.C, want)
		}
	}
}

// TestEmitNoAlloc pins the zero-allocation hot-path contract, for both
// the enabled and the disabled (nil receiver) recorder.
func TestEmitNoAlloc(t *testing.T) {
	r, _ := newTestRecorder(t, 1024)
	if n := testing.AllocsPerRun(1000, func() {
		r.DiskEnqueue(1, 2, sim.Time(3), false, 4)
		r.TermBuffer(1, 1<<20, 2, 3)
		r.NetSend(4096, 5*sim.Microsecond, false)
	}); n != 0 {
		t.Fatalf("enabled emit allocates %v per call, want 0", n)
	}
	var nilRec *Recorder
	if n := testing.AllocsPerRun(1000, func() {
		nilRec.DiskEnqueue(1, 2, sim.Time(3), false, 4)
	}); n != 0 {
		t.Fatalf("disabled emit allocates %v per call, want 0", n)
	}
}

func TestCountByKindAndGlitches(t *testing.T) {
	r, _ := newTestRecorder(t, 16)
	r.PoolHit(0, 1, 2, 3, false)
	r.PoolHit(0, 1, 2, 4, true)
	r.TermGlitch(9, CauseDiskFail, 2, 100, 777)
	d := r.Snapshot()
	counts := d.CountByKind()
	if counts[KindPoolHit] != 2 || counts[KindTermGlitch] != 1 {
		t.Fatalf("counts = hit:%d glitch:%d, want 2/1", counts[KindPoolHit], counts[KindTermGlitch])
	}
	gs := d.Glitches()
	if len(gs) != 1 || gs[0].Terminal != 9 || gs[0].A != CauseDiskFail || gs[0].D != 777 {
		t.Fatalf("glitches = %+v", gs)
	}
}

func TestPostMortemFiltersTerminalAndTime(t *testing.T) {
	r, advance := newTestRecorder(t, 32)
	for i := 0; i < 5; i++ {
		advance(sim.Time(i+1) * sim.Time(sim.Second))
		r.TermBuffer(1, int64(i), 0, i) // terminal 1: the victim
		r.TermBuffer(2, 100, 0, 0)      // terminal 2: noise
	}
	advance(sim.Time(6 * sim.Second))
	r.TermGlitch(1, CauseUnderrun, 0, 42, 0)
	advance(sim.Time(7 * sim.Second))
	r.TermBuffer(1, 999, 0, 0) // after the glitch: must be excluded

	d := r.Snapshot()
	glitch := d.Glitches()[0]
	pm := d.PostMortem(glitch.Terminal, glitch.T, 3)
	if len(pm) != 3 {
		t.Fatalf("post-mortem has %d events, want 3", len(pm))
	}
	// Chronological, terminal 1 only, ending at the glitch.
	if pm[len(pm)-1].Kind != KindTermGlitch {
		t.Errorf("last event = %s, want the glitch", pm[len(pm)-1].Kind.Name())
	}
	for i, ev := range pm {
		if ev.Terminal != 1 {
			t.Errorf("event %d terminal = %d, want 1", i, ev.Terminal)
		}
		if i > 0 && ev.T < pm[i-1].T {
			t.Errorf("events out of order at %d", i)
		}
	}
}

func TestWriteJSONLSchemaAndDeterminism(t *testing.T) {
	r, advance := newTestRecorder(t, 16)
	advance(sim.Time(412*sim.Second + 123))
	r.DiskDispatch(3, 17, 250*sim.Microsecond, true, 5)
	r.NetSend(65536, 7620*sim.Nanosecond, false)
	r.TermGlitch(17, CauseTimeout, 4, 1200, 4096)
	d := r.Snapshot()

	var a, b bytes.Buffer
	if err := WriteJSONL(&a, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b, d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two JSONL exports of the same data differ")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), a.String())
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &obj); err != nil {
		t.Fatalf("line 0 is not valid JSON: %v", err)
	}
	for _, field := range []string{"t_ns", "kind", "terminal", "disk", "qlen", "wait_ns", "prefetch"} {
		if _, ok := obj[field]; !ok {
			t.Errorf("disk.dispatch line missing field %q: %s", field, lines[0])
		}
	}
	if obj["kind"] != "disk.dispatch" || obj["wait_ns"] != float64(250000) {
		t.Errorf("disk.dispatch fields wrong: %v", obj)
	}
	// net.send is not terminal-attributable.
	obj = nil // Unmarshal merges into a non-nil map; start fresh
	if err := json.Unmarshal([]byte(lines[1]), &obj); err != nil {
		t.Fatal(err)
	}
	if _, ok := obj["terminal"]; ok {
		t.Errorf("net.send must not carry a terminal field: %s", lines[1])
	}
}

func TestWriteChromeTraceParses(t *testing.T) {
	r, advance := newTestRecorder(t, 64)
	r.DiskEnqueue(2, 5, sim.Time(900*sim.Millisecond), false, 1)
	advance(sim.Time(1 * sim.Millisecond))
	r.DiskDispatch(2, 5, sim.Millisecond, false, 0)
	advance(sim.Time(10*sim.Millisecond + 500))
	r.DiskComplete(2, 5, 9*sim.Millisecond+500, false, false)
	r.PoolHit(0, 5, 1, 2, false)
	r.TermBuffer(5, 1<<20, 1, 3)
	r.TermGlitch(5, CauseUnderrun, 1, 77, 0)
	r.AdmAdmit(5, 10, 64)
	r.NetSend(1024, 5*sim.Microsecond, true)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
	}
	if phases["X"] != 1 {
		t.Errorf("want exactly 1 duration slice (disk.complete), got %d", phases["X"])
	}
	if phases["C"] < 3 { // queue depth ×2, buffer, admission
		t.Errorf("want >=3 counter events, got %d", phases["C"])
	}
	if phases["i"] < 2 { // pool hit, glitch, net drop
		t.Errorf("want >=2 instant events, got %d", phases["i"])
	}
	if phases["M"] != 6 {
		t.Errorf("want 6 process_name metadata events, got %d", phases["M"])
	}
}

func TestWriteSummaryAndPostMortem(t *testing.T) {
	r, advance := newTestRecorder(t, 16)
	r.DiskDispatch(0, 3, 2*sim.Millisecond, false, 0)
	advance(sim.Time(sim.Second))
	r.TermGlitch(3, CauseDiskFail, 1, 50, 0)
	d := r.Snapshot()

	var sum bytes.Buffer
	if err := WriteSummary(&sum, d); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"2 events emitted", "disk.dispatch", "term.glitch", "cause=diskfail", "disk wait (s)"} {
		if !strings.Contains(sum.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, sum.String())
		}
	}

	var pm bytes.Buffer
	if err := WritePostMortem(&pm, d, d.Glitches()[0], 8); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"terminal 3 glitched", "disk.dispatch", "term.glitch"} {
		if !strings.Contains(pm.String(), want) {
			t.Errorf("post-mortem missing %q:\n%s", want, pm.String())
		}
	}
}

func TestExportFormats(t *testing.T) {
	r, _ := newTestRecorder(t, 4)
	r.PoolMiss(0, 1, 2, 3)
	d := r.Snapshot()
	for _, f := range []string{"jsonl", "chrome", "summary"} {
		var buf bytes.Buffer
		if err := Export(&buf, d, f); err != nil {
			t.Errorf("Export(%q) = %v", f, err)
		}
		if buf.Len() == 0 {
			t.Errorf("Export(%q) wrote nothing", f)
		}
	}
	if err := Export(&bytes.Buffer{}, d, "xml"); err == nil {
		t.Error("Export with unknown format must error")
	}
}

func TestUsecRendering(t *testing.T) {
	if got := usec(sim.Time(412000123000)); got != "412000123" {
		t.Errorf("usec whole = %s", got)
	}
	if got := usec(sim.Time(412000123456)); got != "412000123.456" {
		t.Errorf("usec fractional = %s", got)
	}
}
