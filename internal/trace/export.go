package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"spiffi/internal/sim"
)

// This file renders a Data snapshot in three formats:
//
//   - JSONL: one self-describing JSON object per event, schema-stable
//     field order, suitable for jq/awk pipelines and byte-for-byte
//     determinism checks.
//   - Chrome trace-event JSON: loadable in Perfetto (ui.perfetto.dev)
//     or chrome://tracing; disk services become duration slices,
//     queue depths and buffer occupancy become counter tracks,
//     glitches and pool activity become instants.
//   - Summary: a plain-text digest (event counts, latency histograms).
//
// All writers emit fields in a fixed order with strconv formatting —
// no maps, no reflection — so identical Data yields identical bytes.

// WriteJSONL writes one JSON object per retained event. Every object
// has "t_ns", "kind" and, when attributable, "terminal"; the remaining
// fields are per-kind (see kindInfo / OBSERVABILITY.md).
func WriteJSONL(w io.Writer, d *Data) error {
	if d == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, ev := range d.Events {
		buf = buf[:0]
		buf = append(buf, `{"t_ns":`...)
		buf = strconv.AppendInt(buf, int64(ev.T), 10)
		buf = append(buf, `,"kind":"`...)
		buf = append(buf, ev.Kind.Name()...)
		buf = append(buf, '"')
		if ev.Terminal >= 0 {
			buf = append(buf, `,"terminal":`...)
			buf = strconv.AppendInt(buf, int64(ev.Terminal), 10)
		}
		if ev.Kind < numKinds {
			info := &kindInfo[ev.Kind]
			vals := [4]int64{ev.A, ev.B, ev.C, ev.D}
			for i, name := range info.fields {
				if name == "" {
					continue
				}
				buf = append(buf, ',', '"')
				buf = append(buf, name...)
				buf = append(buf, `":`...)
				buf = strconv.AppendInt(buf, vals[i], 10)
			}
		}
		buf = append(buf, '}', '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Chrome trace-event pids, one per subsystem: Perfetto renders each
// pid as a process group with per-tid tracks inside it.
const (
	pidDisk = 1
	pidPool = 2
	pidNet  = 3
	pidAdm  = 4
	pidTerm = 5
	pidWl   = 6
)

// WriteChromeTrace writes the snapshot in Chrome trace-event format
// (the {"traceEvents": [...]} JSON object). Load the file at
// https://ui.perfetto.dev or chrome://tracing.
//
// Mapping: disk.complete → "X" duration slices (one track per disk,
// named "demand read"/"prefetch read", failures flagged in args);
// disk enqueue/dispatch → a per-disk "queue" counter; term.buffer →
// a per-terminal "buffer_bytes" counter; adm.* → an "active" counter;
// everything else → "i" instant events. Timestamps are microseconds
// of simulated time with nanosecond precision kept in the fraction.
func WriteChromeTrace(w io.Writer, d *Data) error {
	if d == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	item := func(format string, args ...any) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	// Name the subsystem "processes" so Perfetto's track groups read well.
	for _, m := range []struct {
		pid  int
		name string
	}{{pidDisk, "disks"}, {pidPool, "buffer pools"}, {pidNet, "network"}, {pidAdm, "admission"}, {pidTerm, "terminals"}, {pidWl, "workload"}} {
		item(`{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":%q}}`, m.pid, m.name)
	}
	for _, ev := range d.Events {
		switch ev.Kind {
		case KindDiskComplete:
			name := "demand read"
			if ev.D == 1 {
				name = "prefetch read"
			}
			// The slice spans the service time, ending at ev.T.
			start := ev.T - sim.Time(ev.B)
			item(`{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":%q,"args":{"terminal":%d,"failed":%d}}`,
				pidDisk, ev.A, usec(start), usec(sim.Time(ev.B)), name, ev.Terminal, ev.C)
		case KindDiskEnqueue, KindDiskDispatch:
			item(`{"ph":"C","pid":%d,"tid":%d,"ts":%s,"name":"queue","args":{"depth":%d}}`,
				pidDisk, ev.A, usec(ev.T), ev.B)
		case KindTermBuffer:
			item(`{"ph":"C","pid":%d,"tid":%d,"ts":%s,"name":"buffer_bytes","args":{"value":%d}}`,
				pidTerm, ev.Terminal, usec(ev.T), ev.A)
		case KindTermGlitch:
			item(`{"ph":"i","pid":%d,"tid":%d,"ts":%s,"name":"glitch","s":"g","args":{"cause":%q,"video":%d,"pos":%d}}`,
				pidTerm, ev.Terminal, usec(ev.T), CauseName(ev.A), ev.B, ev.C)
		case KindTermPrime:
			item(`{"ph":"i","pid":%d,"tid":%d,"ts":%s,"name":"prime","s":"t","args":{"video":%d,"recover_ns":%d}}`,
				pidTerm, ev.Terminal, usec(ev.T), ev.A, ev.B)
		case KindTermSeek:
			item(`{"ph":"i","pid":%d,"tid":%d,"ts":%s,"name":"seek","s":"t","args":{"video":%d,"block":%d}}`,
				pidTerm, ev.Terminal, usec(ev.T), ev.A, ev.B)
		case KindPoolHit, KindPoolMiss, KindPoolPrefetch, KindPoolProtect, KindPoolEvict:
			item(`{"ph":"i","pid":%d,"tid":%d,"ts":%s,"name":%q,"s":"t","args":{"video":%d,"block":%d}}`,
				pidPool, ev.A, usec(ev.T), ev.Kind.Name(), ev.B, ev.C)
		case KindAdmWait, KindAdmAdmit, KindAdmRelease:
			item(`{"ph":"C","pid":%d,"tid":0,"ts":%s,"name":"active_streams","args":{"value":%d}}`,
				pidAdm, usec(ev.T), ev.A)
		case KindAdmReject:
			item(`{"ph":"i","pid":%d,"tid":0,"ts":%s,"name":"reject","s":"p","args":{"terminal":%d,"wait_ns":%d}}`,
				pidAdm, usec(ev.T), ev.Terminal, ev.C)
		case KindOverShed, KindOverRestore:
			item(`{"ph":"C","pid":%d,"tid":1,"ts":%s,"name":"degraded_streams","args":{"value":%d}}`,
				pidAdm, usec(ev.T), ev.A)
		case KindOverLimit:
			item(`{"ph":"C","pid":%d,"tid":2,"ts":%s,"name":"admit_limit","args":{"value":%d}}`,
				pidAdm, usec(ev.T), ev.A)
		case KindRebuildStart, KindRebuildDone:
			item(`{"ph":"i","pid":%d,"tid":%d,"ts":%s,"name":%q,"s":"p","args":{"blocks":%d}}`,
				pidDisk, ev.A, usec(ev.T), ev.Kind.Name(), ev.B)
		case KindNodeSuspect, KindNodeRejoin:
			item(`{"ph":"i","pid":%d,"tid":%d,"ts":%s,"name":%q,"s":"p","args":{"node":%d,"terminal":%d}}`,
				pidTerm, ev.Terminal, usec(ev.T), ev.Kind.Name(), ev.A, ev.Terminal)
		case KindSessFailover:
			item(`{"ph":"i","pid":%d,"tid":%d,"ts":%s,"name":"failover","s":"t","args":{"node":%d,"video":%d,"block":%d}}`,
				pidTerm, ev.Terminal, usec(ev.T), ev.A, ev.B, ev.C)
		case KindNodeDrop:
			item(`{"ph":"i","pid":%d,"tid":0,"ts":%s,"name":"node drop","s":"p","args":{"node":%d,"reply":%d}}`,
				pidNet, usec(ev.T), ev.A, ev.B)
		case KindNetSend:
			if ev.C == 1 { // only drops are interesting as instants
				item(`{"ph":"i","pid":%d,"tid":0,"ts":%s,"name":"drop","s":"p","args":{"bytes":%d}}`,
					pidNet, usec(ev.T), ev.A)
			}
		case KindCacheHit, KindCacheInsert, KindCacheEvict:
			item(`{"ph":"i","pid":%d,"tid":%d,"ts":%s,"name":%q,"s":"t","args":{"video":%d,"block":%d}}`,
				pidPool, ev.A, usec(ev.T), ev.Kind.Name(), ev.B, ev.C)
		case KindMergeJoin:
			item(`{"ph":"i","pid":%d,"tid":%d,"ts":%s,"name":"merge join","s":"t","args":{"leader":%d,"video":%d,"from":%d}}`,
				pidTerm, ev.Terminal, usec(ev.T), ev.A, ev.B, ev.C)
		case KindMergeDetach:
			item(`{"ph":"i","pid":%d,"tid":%d,"ts":%s,"name":"merge detach","s":"t","args":{"video":%d,"next_block":%d}}`,
				pidTerm, ev.Terminal, usec(ev.T), ev.A, ev.B)
		case KindWlPhase:
			item(`{"ph":"i","pid":%d,"tid":0,"ts":%s,"name":"wl phase","s":"g","args":{"phase":%d,"cycle":%d,"load_milli":%d,"promote":%d}}`,
				pidWl, usec(ev.T), ev.A, ev.B, ev.C, ev.D)
			item(`{"ph":"C","pid":%d,"tid":1,"ts":%s,"name":"load_milli","args":{"value":%d}}`,
				pidWl, usec(ev.T), ev.C)
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// usec renders a sim.Time as microseconds with the nanosecond fraction
// preserved ("412000123.456"), the unit Chrome trace events use.
func usec(t sim.Time) string {
	ns := int64(t)
	if ns%1000 == 0 {
		return strconv.FormatInt(ns/1000, 10)
	}
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// WriteSummary writes a plain-text digest: totals, per-kind counts,
// latency histograms, and one line per retained glitch.
func WriteSummary(w io.Writer, d *Data) error {
	if d == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "trace: %d events emitted, %d retained", d.Total, len(d.Events))
	if dr := d.Dropped(); dr > 0 {
		fmt.Fprintf(bw, " (%d oldest overwritten)", dr)
	}
	fmt.Fprintln(bw)
	counts := d.CountByKind()
	for k := Kind(1); k < numKinds; k++ {
		if counts[k] == 0 {
			continue
		}
		fmt.Fprintf(bw, "  %-14s %d\n", k.Name(), counts[k])
	}
	if d.DiskWait != nil && d.DiskWait.Count() > 0 {
		fmt.Fprintf(bw, "disk wait (s):    %s\n", d.DiskWait)
	}
	if d.DiskService != nil && d.DiskService.Count() > 0 {
		fmt.Fprintf(bw, "disk service (s): %s\n", d.DiskService)
	}
	if d.NetDelay != nil && d.NetDelay.Count() > 0 {
		fmt.Fprintf(bw, "net delay (s):    %s\n", d.NetDelay)
	}
	for _, ev := range d.Events {
		if ev.Kind != KindWlPhase {
			continue
		}
		fmt.Fprintf(bw, "phase: t=%v idx=%d cycle=%d load=%.2f promote=%d\n",
			ev.T, ev.A, ev.B, float64(ev.C)/1000, ev.D)
	}
	for _, g := range d.Glitches() {
		fmt.Fprintf(bw, "glitch: t=%v terminal=%d cause=%s video=%d frame=%d buffered=%dB\n",
			g.T, g.Terminal, CauseName(g.A), g.B, g.C, g.D)
	}
	return bw.Flush()
}

// WritePostMortem renders the evidence trail for one glitch: the last
// n events touching the glitching terminal, ending at the glitch.
func WritePostMortem(w io.Writer, d *Data, glitch Event, n int) error {
	if d == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "post-mortem: terminal %d glitched at %v (cause %s); last %d events:\n",
		glitch.Terminal, glitch.T, CauseName(glitch.A), n)
	for _, ev := range d.PostMortem(glitch.Terminal, glitch.T, n) {
		fmt.Fprintf(bw, "  %-14v %-14s", ev.T, ev.Kind.Name())
		if ev.Kind < numKinds {
			info := &kindInfo[ev.Kind]
			vals := [4]int64{ev.A, ev.B, ev.C, ev.D}
			for i, name := range info.fields {
				if name == "" {
					continue
				}
				fmt.Fprintf(bw, " %s=%d", name, vals[i])
			}
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Export writes d in the named format: "jsonl", "chrome", or "summary".
func Export(w io.Writer, d *Data, format string) error {
	switch format {
	case "jsonl":
		return WriteJSONL(w, d)
	case "chrome":
		return WriteChromeTrace(w, d)
	case "summary":
		return WriteSummary(w, d)
	}
	return fmt.Errorf("trace: unknown export format %q (want jsonl, chrome, or summary)", format)
}
