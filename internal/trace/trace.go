// Package trace is the simulator's deterministic observability layer: a
// ring-buffered, zero-allocation-on-the-hot-path structured event
// recorder keyed on simulated time.
//
// The paper's headline claims — real-time scheduling beating elevator
// and GSS, love prefetch protecting unreferenced pages, striping
// scaling to 64 disks — are explained by internal timelines (disk queue
// waits, buffer-pool hit dynamics, terminal buffer occupancy) that
// end-of-run aggregates cannot show. A Recorder captures those
// timelines as fixed-size typed events emitted by the disk, buffer
// pool, network, admission controller, and terminals, plus online
// per-subsystem latency histograms, without perturbing the simulation:
// emitting never allocates, never draws randomness, and never schedules
// an event, so a traced run is bit-identical to an untraced one.
//
// Determinism across worker counts follows from two properties. First,
// events carry the simulation clock, not the wall clock, and each
// Recorder belongs to exactly one single-threaded simulation, so a
// run's event sequence depends only on (Config, seed). Second, traces
// travel inside core.Metrics through the same index-keyed result
// plumbing that makes parallel searches bit-identical: consumers only
// ever see traces of *consumed* runs, never of speculative probes.
//
// When tracing is disabled every emit site calls a method on a nil
// *Recorder, which returns immediately — a single predictable branch,
// bounded below 2% of run time by a guard test in the repository root.
//
// Exporters (JSONL, Chrome trace-event JSON for Perfetto, plain-text
// summary) and the glitch post-mortem report live in export.go. The
// full event taxonomy and schema are documented in OBSERVABILITY.md.
package trace

import (
	"spiffi/internal/sim"
	"spiffi/internal/stats"
)

// Options selects tracing for one simulation run. The zero value
// disables tracing entirely.
type Options struct {
	// Enabled turns the recorder on. Disabled tracing is a strict
	// no-op: simulation results are bit-identical either way.
	Enabled bool
	// Capacity is the ring size in events (default DefaultCapacity).
	// When more events are emitted than the ring holds, the oldest are
	// overwritten; Data.Total still counts every emission.
	Capacity int
}

// DefaultCapacity is the default ring size: 64Ki events ≈ 3 MB.
// Large enough to hold several seconds of a loaded 16-disk system —
// ample for a glitch post-mortem — while keeping traced searches cheap.
const DefaultCapacity = 1 << 16

// Kind identifies the type of a trace event and fixes the meaning of
// its A–D payload fields (see kindInfo and OBSERVABILITY.md).
type Kind uint8

// Event kinds, grouped by emitting subsystem.
const (
	KindNone Kind = iota

	// Disk: one enqueue and (unless the disk fail-stops first) one
	// dispatch and one complete per request.
	KindDiskEnqueue  // A=disk B=qlen C=deadline_ns (-1 = none) D=prefetch
	KindDiskDispatch // A=disk B=qlen C=wait_ns D=prefetch
	KindDiskComplete // A=disk B=service_ns C=failed D=prefetch

	// Buffer pool.
	KindPoolHit      // A=node B=video C=block D=inflight (1 = fetch still in progress)
	KindPoolMiss     // A=node B=video C=block — demand miss, fetch issued
	KindPoolPrefetch // A=node B=video C=block — prefetched page inserted (love chain protects it)
	KindPoolProtect  // A=node B=video C=block — protected prefetched page reached by its demand reference
	KindPoolEvict    // A=node B=video C=block D=unreferenced (1 = prefetched page evicted unused)

	// Network.
	KindNetSend // A=bytes B=delay_ns C=dropped

	// Admission controller.
	KindAdmWait    // A=active B=limit — stream refused, waiting for capacity
	KindAdmAdmit   // A=active B=limit
	KindAdmRelease // A=active B=limit
	KindAdmReject  // A=active B=limit C=wait_ns — patience expired, stream NACKed

	// Terminal.
	KindTermBuffer // A=buffered_bytes B=outstanding C=frontier_block — occupancy sample at block arrival
	KindTermGlitch // A=cause B=video C=pos (frame for underruns, block for lost blocks) D=buffered_bytes
	KindTermPrime  // A=video B=recover_ns (0 on first start) C=primes
	KindTermSeek   // A=video B=block

	// Overload controller (internal/overload): limit moves and stream
	// shed/restore decisions, terminal = affected stream (-1 for limit
	// moves).
	KindOverShed    // A=degraded B=limit C=slack_ns
	KindOverRestore // A=degraded B=limit C=slack_ns
	KindOverLimit   // A=limit B=prev C=slack_ns

	// Mirror rebuild after disk repair.
	KindRebuildStart // A=disk B=blocks — stale set marked, paced pass begins
	KindRebuildDone  // A=disk B=rebuilt C=window_ns — redundancy window closed

	// Node failover: suspect/rejoin lifecycle and session migration.
	KindNodeSuspect  // A=node B=consec_timeouts — terminal marked the node suspect
	KindSessFailover // A=node B=video C=block — session redirecting reads off a suspect node
	KindNodeRejoin   // A=node B=downtime_ns — node answered again (or restarted); suspicion cleared
	KindNodeDrop     // A=node B=reply C=dropped — crashed node silently dropped a message

	// Prefix cache (internal/cache): per-node hit/insert/evict lifecycle.
	KindCacheHit    // A=node B=video C=block — prefix block served from cache, disk bypassed
	KindCacheInsert // A=node B=video C=block — block admitted into the node's prefix cache
	KindCacheEvict  // A=node B=video C=block — block evicted to make room

	// Stream merging (core/merge.go): terminal = the follower.
	KindMergeJoin   // A=leader B=video C=from — follower merged onto leader's stream at block `from`
	KindMergeDetach // A=video B=next_block — follower detached mid-stream, resumes self-fetching

	// Workload scenario generator (internal/workload): one event per
	// phase entry, so post-mortems attribute glitches to the traffic
	// phase that caused them.
	KindWlPhase // A=phase B=cycle C=load_milli D=promote (-1 = none)

	numKinds
)

// Glitch causes carried in KindTermGlitch's A field. They mirror the
// per-cause counters in core.Metrics.
const (
	CauseUnderrun int64 = iota // playout buffer ran dry
	CauseDiskFail              // request NACKed by a failed disk, retries exhausted
	CauseTimeout               // request timed out, retries exhausted
)

// CauseName names a KindTermGlitch cause code.
func CauseName(c int64) string {
	switch c {
	case CauseUnderrun:
		return "underrun"
	case CauseDiskFail:
		return "diskfail"
	case CauseTimeout:
		return "timeout"
	}
	return "unknown"
}

// Event is one fixed-size trace record. Terminal is -1 for events not
// attributable to a terminal. The meaning of A–D depends on Kind; a
// field whose name is blank in the schema is unused and zero.
type Event struct {
	T          sim.Time
	Kind       Kind
	Terminal   int32
	A, B, C, D int64
}

// kindInfo fixes, per kind, the exported event name, the emitting
// subsystem, and the JSONL field names of A–D ("" = unused). This
// table *is* the trace schema; OBSERVABILITY.md documents it
// field-by-field and must be kept in sync.
var kindInfo = [numKinds]struct {
	name   string
	sub    string
	fields [4]string
}{
	KindDiskEnqueue:  {"disk.enqueue", "disk", [4]string{"disk", "qlen", "deadline_ns", "prefetch"}},
	KindDiskDispatch: {"disk.dispatch", "disk", [4]string{"disk", "qlen", "wait_ns", "prefetch"}},
	KindDiskComplete: {"disk.complete", "disk", [4]string{"disk", "service_ns", "failed", "prefetch"}},
	KindPoolHit:      {"pool.hit", "pool", [4]string{"node", "video", "block", "inflight"}},
	KindPoolMiss:     {"pool.miss", "pool", [4]string{"node", "video", "block", ""}},
	KindPoolPrefetch: {"pool.prefetch", "pool", [4]string{"node", "video", "block", ""}},
	KindPoolProtect:  {"pool.protect", "pool", [4]string{"node", "video", "block", ""}},
	KindPoolEvict:    {"pool.evict", "pool", [4]string{"node", "video", "block", "unreferenced"}},
	KindNetSend:      {"net.send", "net", [4]string{"bytes", "delay_ns", "dropped", ""}},
	KindAdmWait:      {"adm.wait", "adm", [4]string{"active", "limit", "", ""}},
	KindAdmAdmit:     {"adm.admit", "adm", [4]string{"active", "limit", "", ""}},
	KindAdmRelease:   {"adm.release", "adm", [4]string{"active", "limit", "", ""}},
	KindAdmReject:    {"adm.reject", "adm", [4]string{"active", "limit", "wait_ns", ""}},
	KindTermBuffer:   {"term.buffer", "term", [4]string{"buffered_bytes", "outstanding", "frontier_block", ""}},
	KindTermGlitch:   {"term.glitch", "term", [4]string{"cause", "video", "pos", "buffered_bytes"}},
	KindTermPrime:    {"term.prime", "term", [4]string{"video", "recover_ns", "primes", ""}},
	KindTermSeek:     {"term.seek", "term", [4]string{"video", "block", "", ""}},
	KindOverShed:     {"over.shed", "over", [4]string{"degraded", "limit", "slack_ns", ""}},
	KindOverRestore:  {"over.restore", "over", [4]string{"degraded", "limit", "slack_ns", ""}},
	KindOverLimit:    {"over.limit", "over", [4]string{"limit", "prev", "slack_ns", ""}},
	KindRebuildStart: {"rebuild.start", "rebuild", [4]string{"disk", "blocks", "", ""}},
	KindRebuildDone:  {"rebuild.done", "rebuild", [4]string{"disk", "rebuilt", "window_ns", ""}},
	KindNodeSuspect:  {"node.suspect", "node", [4]string{"node", "consec_timeouts", "", ""}},
	KindSessFailover: {"sess.failover", "node", [4]string{"node", "video", "block", ""}},
	KindNodeRejoin:   {"node.rejoin", "node", [4]string{"node", "downtime_ns", "", ""}},
	KindNodeDrop:     {"node.drop", "node", [4]string{"node", "reply", "dropped", ""}},
	KindCacheHit:     {"cache.hit", "cache", [4]string{"node", "video", "block", ""}},
	KindCacheInsert:  {"cache.insert", "cache", [4]string{"node", "video", "block", ""}},
	KindCacheEvict:   {"cache.evict", "cache", [4]string{"node", "video", "block", ""}},
	KindMergeJoin:    {"merge.join", "merge", [4]string{"leader", "video", "from", ""}},
	KindMergeDetach:  {"merge.detach", "merge", [4]string{"video", "next_block", "", ""}},
	KindWlPhase:      {"wl.phase", "wl", [4]string{"phase", "cycle", "load_milli", "promote"}},
}

// Name returns the schema name of the kind ("disk.enqueue", …).
func (k Kind) Name() string {
	if k < numKinds {
		return kindInfo[k].name
	}
	return "unknown"
}

// Subsystem returns the emitting subsystem of the kind ("disk", …).
func (k Kind) Subsystem() string {
	if k < numKinds {
		return kindInfo[k].sub
	}
	return "unknown"
}

// Recorder collects trace events for one simulation run. A nil
// *Recorder is valid and inert: every method returns immediately, so
// subsystems hold a plain field and emit unconditionally. A Recorder
// is single-threaded by construction — it belongs to one simulation,
// and the sim kernel runs exactly one process at a time — so emitting
// takes no locks.
type Recorder struct {
	k     *sim.Kernel
	ring  []Event
	next  int    // next slot to overwrite
	total uint64 // events emitted, including overwritten ones

	// Online per-subsystem latency histograms, updated at emit time so
	// they see every event even after the ring wraps.
	diskWait    *stats.Histogram // seconds queued before dispatch
	diskService *stats.Histogram // seconds of seek+rotation+transfer
	netDelay    *stats.Histogram // seconds of wire delay (delivered sends)
}

// NewRecorder creates a recorder stamping events with k's clock.
func NewRecorder(k *sim.Kernel, opts Options) *Recorder {
	if !opts.Enabled {
		return nil
	}
	n := opts.Capacity
	if n <= 0 {
		n = DefaultCapacity
	}
	return &Recorder{
		k:    k,
		ring: make([]Event, n),
		// Bases chosen so bucket 0 starts well under the smallest
		// plausible sample: 10 µs for disk times (a track-to-track
		// seek is ~1 ms), 1 µs for wire delays (base latency is 5 µs).
		diskWait:    stats.NewHistogram(10e-6, 24),
		diskService: stats.NewHistogram(10e-6, 24),
		netDelay:    stats.NewHistogram(1e-6, 20),
	}
}

// Enabled reports whether the recorder actually records.
func (r *Recorder) Enabled() bool { return r != nil }

// emit appends one event to the ring. Hot path: no allocation, no
// locking, no time lookup beyond the kernel clock read.
func (r *Recorder) emit(kind Kind, terminal int32, a, b, c, d int64) {
	ev := &r.ring[r.next]
	ev.T = r.k.Now()
	ev.Kind = kind
	ev.Terminal = terminal
	ev.A, ev.B, ev.C, ev.D = a, b, c, d
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
	}
	r.total++
}

// NoDeadline is the C value of KindDiskEnqueue for requests without a
// real-time deadline (infinite-deadline prefetches).
const NoDeadline int64 = -1

// DiskEnqueue records a request entering a disk queue. deadline is the
// request's real-time deadline, or sim.TimeInfinity for none.
func (r *Recorder) DiskEnqueue(disk, terminal int, deadline sim.Time, prefetch bool, qlen int) {
	if r == nil {
		return
	}
	dl := int64(deadline)
	if deadline >= sim.TimeInfinity {
		dl = NoDeadline
	}
	r.emit(KindDiskEnqueue, int32(terminal), int64(disk), int64(qlen), dl, b2i(prefetch))
}

// DiskDispatch records the scheduler handing a request to the disk arm
// after wait time in queue.
func (r *Recorder) DiskDispatch(disk, terminal int, wait sim.Duration, prefetch bool, qlen int) {
	if r == nil {
		return
	}
	r.diskWait.Add(wait.Seconds())
	r.emit(KindDiskDispatch, int32(terminal), int64(disk), int64(qlen), int64(wait), b2i(prefetch))
}

// DiskComplete records a request finishing service (or failing, when
// the disk fail-stopped mid-service or rejected it outright).
func (r *Recorder) DiskComplete(disk, terminal int, service sim.Duration, prefetch, failed bool) {
	if r == nil {
		return
	}
	if !failed {
		r.diskService.Add(service.Seconds())
	}
	r.emit(KindDiskComplete, int32(terminal), int64(disk), int64(service), b2i(failed), b2i(prefetch))
}

// PoolHit records a buffer-pool reference satisfied by a resident page;
// inflight marks hits on pages whose disk fetch has not completed yet.
func (r *Recorder) PoolHit(node, terminal, video, block int, inflight bool) {
	if r == nil {
		return
	}
	r.emit(KindPoolHit, int32(terminal), int64(node), int64(video), int64(block), b2i(inflight))
}

// PoolMiss records a demand reference that missed and issued a fetch.
func (r *Recorder) PoolMiss(node, terminal, video, block int) {
	if r == nil {
		return
	}
	r.emit(KindPoolMiss, int32(terminal), int64(node), int64(video), int64(block), 0)
}

// PoolPrefetch records a prefetched page entering the pool — under
// love-prefetch this is the moment the prefetched chain protects it.
func (r *Recorder) PoolPrefetch(node, terminal, video, block int) {
	if r == nil {
		return
	}
	r.emit(KindPoolPrefetch, int32(terminal), int64(node), int64(video), int64(block), 0)
}

// PoolProtect records the protection paying off: a demand reference
// arriving at a prefetched page that survived eviction until use.
func (r *Recorder) PoolProtect(node, terminal, video, block int) {
	if r == nil {
		return
	}
	r.emit(KindPoolProtect, int32(terminal), int64(node), int64(video), int64(block), 0)
}

// PoolEvict records a page leaving the pool; unreferenced marks a
// prefetched page evicted before any demand reference (wasted I/O).
func (r *Recorder) PoolEvict(node, video, block int, unreferenced bool) {
	if r == nil {
		return
	}
	r.emit(KindPoolEvict, -1, int64(node), int64(video), int64(block), b2i(unreferenced))
}

// NetSend records a message entering the interconnect. delay includes
// fault-injected jitter; dropped sends are metered but never delivered.
func (r *Recorder) NetSend(bytes int64, delay sim.Duration, dropped bool) {
	if r == nil {
		return
	}
	if !dropped {
		r.netDelay.Add(delay.Seconds())
	}
	r.emit(KindNetSend, -1, bytes, int64(delay), b2i(dropped), 0)
}

// AdmWait records a stream refused admission (capacity exhausted).
func (r *Recorder) AdmWait(terminal, active, limit int) {
	if r == nil {
		return
	}
	r.emit(KindAdmWait, int32(terminal), int64(active), int64(limit), 0, 0)
}

// AdmAdmit records a stream admitted; active includes the new stream.
func (r *Recorder) AdmAdmit(terminal, active, limit int) {
	if r == nil {
		return
	}
	r.emit(KindAdmAdmit, int32(terminal), int64(active), int64(limit), 0, 0)
}

// AdmRelease records a stream departing; active excludes it.
func (r *Recorder) AdmRelease(terminal, active, limit int) {
	if r == nil {
		return
	}
	r.emit(KindAdmRelease, int32(terminal), int64(active), int64(limit), 0, 0)
}

// AdmReject records an admission rejection: the stream's patience
// expired after wait in the queue.
func (r *Recorder) AdmReject(terminal, active, limit int, wait sim.Duration) {
	if r == nil {
		return
	}
	r.emit(KindAdmReject, int32(terminal), int64(active), int64(limit), int64(wait), 0)
}

// OverShed records one stream downshifted to degraded mode.
func (r *Recorder) OverShed(terminal, degraded, limit int, slack sim.Duration) {
	if r == nil {
		return
	}
	r.emit(KindOverShed, int32(terminal), int64(degraded), int64(limit), int64(slack), 0)
}

// OverRestore records one stream restored to full quality.
func (r *Recorder) OverRestore(terminal, degraded, limit int, slack sim.Duration) {
	if r == nil {
		return
	}
	r.emit(KindOverRestore, int32(terminal), int64(degraded), int64(limit), int64(slack), 0)
}

// OverLimit records an adaptive admission-limit move.
func (r *Recorder) OverLimit(limit, prev int, slack sim.Duration) {
	if r == nil {
		return
	}
	r.emit(KindOverLimit, -1, int64(limit), int64(prev), int64(slack), 0)
}

// RebuildStart records the stale-set marking at a disk repair.
func (r *Recorder) RebuildStart(disk, blocks int) {
	if r == nil {
		return
	}
	r.emit(KindRebuildStart, -1, int64(disk), int64(blocks), 0, 0)
}

// RebuildDone records a completed rebuild pass and its window of
// vulnerability (downtime + rebuild duration).
func (r *Recorder) RebuildDone(disk, rebuilt int, window sim.Duration) {
	if r == nil {
		return
	}
	r.emit(KindRebuildDone, -1, int64(disk), int64(rebuilt), int64(window), 0)
}

// NodeSuspect records a terminal marking a node suspect after consec
// consecutive request timeouts against it.
func (r *Recorder) NodeSuspect(terminal, node, consec int) {
	if r == nil {
		return
	}
	r.emit(KindNodeSuspect, int32(terminal), int64(node), int64(consec), 0, 0)
}

// SessFailover records a session redirecting a block read to the mirror
// copy because the block's primary node is suspect.
func (r *Recorder) SessFailover(terminal, node, video, block int) {
	if r == nil {
		return
	}
	r.emit(KindSessFailover, int32(terminal), int64(node), int64(video), int64(block), 0)
}

// NodeRejoin records suspicion of a node being cleared — the node
// answered a request again, or its restart was observed. downtime is
// how long the node was down (0 when only suspected, never crashed).
func (r *Recorder) NodeRejoin(terminal, node int, downtime sim.Duration) {
	if r == nil {
		return
	}
	r.emit(KindNodeRejoin, int32(terminal), int64(node), int64(downtime), 0, 0)
}

// NodeDrop records a crashed node silently dropping a message: an
// incoming request (reply=0) or an outbound reply (reply=1). dropped is
// the node's running drop count.
func (r *Recorder) NodeDrop(terminal, node int, reply bool, dropped int64) {
	if r == nil {
		return
	}
	r.emit(KindNodeDrop, int32(terminal), int64(node), b2i(reply), dropped, 0)
}

// TermBuffer records a playout-buffer occupancy sample, taken whenever
// a block arrives at the terminal. outstanding is requested-not-arrived
// bytes; frontier is the contiguous block count received.
func (r *Recorder) TermBuffer(terminal int, buffered, outstanding int64, frontier int) {
	if r == nil {
		return
	}
	r.emit(KindTermBuffer, int32(terminal), buffered, outstanding, int64(frontier), 0)
}

// TermGlitch records a playout glitch with its cause (Cause* constants),
// the position at which it struck (the stalled frame for underruns, the
// abandoned block for lost blocks), and the bytes still buffered.
func (r *Recorder) TermGlitch(terminal int, cause int64, video, pos int, buffered int64) {
	if r == nil {
		return
	}
	r.emit(KindTermGlitch, int32(terminal), cause, int64(video), int64(pos), buffered)
}

// TermPrime records playout (re)starting after the buffer primed;
// recover is the stall duration being recovered from (0 at first start).
func (r *Recorder) TermPrime(terminal, video int, recover sim.Duration, primes int) {
	if r == nil {
		return
	}
	r.emit(KindTermPrime, int32(terminal), int64(video), int64(recover), int64(primes), 0)
}

// TermSeek records a VCR seek (fast-forward/rewind target block).
func (r *Recorder) TermSeek(terminal, video, block int) {
	if r == nil {
		return
	}
	r.emit(KindTermSeek, int32(terminal), int64(video), int64(block), 0, 0)
}

// CacheHit records a prefix-cache hit: the node served the block from
// its cache, bypassing the buffer pool and disks.
func (r *Recorder) CacheHit(node, video, block int) {
	if r == nil {
		return
	}
	r.emit(KindCacheHit, -1, int64(node), int64(video), int64(block), 0)
}

// CacheInsert records a block admitted into a node's prefix cache after
// a disk fetch.
func (r *Recorder) CacheInsert(node, video, block int) {
	if r == nil {
		return
	}
	r.emit(KindCacheInsert, -1, int64(node), int64(video), int64(block), 0)
}

// CacheEvict records a block evicted from a node's prefix cache by the
// replacement policy.
func (r *Recorder) CacheEvict(node, video, block int) {
	if r == nil {
		return
	}
	r.emit(KindCacheEvict, -1, int64(node), int64(video), int64(block), 0)
}

// MergeJoin records a follower terminal merging onto leader's in-flight
// stream of video, with the follower's own fetching parked from block
// `from` onward.
func (r *Recorder) MergeJoin(follower, leader, video, from int) {
	if r == nil {
		return
	}
	r.emit(KindMergeJoin, int32(follower), int64(leader), int64(video), int64(from), 0)
}

// MergeDetach records a follower leaving a merged stream mid-movie
// (leader departed, seek, or buffer pressure); next is the first block
// the follower will fetch for itself.
func (r *Recorder) MergeDetach(follower, video, next int) {
	if r == nil {
		return
	}
	r.emit(KindMergeDetach, int32(follower), int64(video), int64(next), 0, 0)
}

// WlPhase records the workload scenario entering a phase: its index
// within the cycle, the 0-based cycle count, the phase's arrival-rate
// multiplier in thousandths, and the promoted video id (-1 = none).
func (r *Recorder) WlPhase(phase, cycle int, loadMilli, promote int64) {
	if r == nil {
		return
	}
	r.emit(KindWlPhase, -1, int64(phase), int64(cycle), loadMilli, promote)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Data is an immutable snapshot of a finished run's trace, carried in
// core.Metrics. Events are in chronological order; when the ring
// wrapped, they are the most recent len(Events) of Total emissions.
type Data struct {
	Events []Event
	Total  uint64

	// Latency histograms over the whole run (every emission, not just
	// the events retained in the ring). Values are seconds.
	DiskWait    *stats.Histogram
	DiskService *stats.Histogram
	NetDelay    *stats.Histogram
}

// Snapshot copies the ring out in chronological order. Safe on a nil
// recorder (returns nil). Called once per run, off the hot path.
func (r *Recorder) Snapshot() *Data {
	if r == nil {
		return nil
	}
	d := &Data{
		Total:       r.total,
		DiskWait:    r.diskWait,
		DiskService: r.diskService,
		NetDelay:    r.netDelay,
	}
	if r.total >= uint64(len(r.ring)) {
		// Wrapped: oldest retained event is at next.
		d.Events = make([]Event, len(r.ring))
		n := copy(d.Events, r.ring[r.next:])
		copy(d.Events[n:], r.ring[:r.next])
	} else {
		d.Events = make([]Event, r.next)
		copy(d.Events, r.ring[:r.next])
	}
	return d
}

// Dropped reports how many emitted events the ring overwrote.
func (d *Data) Dropped() uint64 {
	if d == nil {
		return 0
	}
	return d.Total - uint64(len(d.Events))
}

// CountByKind tallies retained events per kind.
func (d *Data) CountByKind() [int(numKinds)]uint64 {
	var n [int(numKinds)]uint64
	if d == nil {
		return n
	}
	for _, ev := range d.Events {
		if ev.Kind < numKinds {
			n[ev.Kind]++
		}
	}
	return n
}

// Glitches returns the retained glitch events in order.
func (d *Data) Glitches() []Event {
	if d == nil {
		return nil
	}
	var out []Event
	for _, ev := range d.Events {
		if ev.Kind == KindTermGlitch {
			out = append(out, ev)
		}
	}
	return out
}

// PostMortem returns the last n retained events touching the given
// terminal at or before time t — the evidence trail leading into a
// glitch. Pass the glitch event's T and Terminal.
func (d *Data) PostMortem(terminal int32, t sim.Time, n int) []Event {
	if d == nil || n <= 0 {
		return nil
	}
	out := make([]Event, 0, n)
	// Walk backwards from the newest event not after t.
	for i := len(d.Events) - 1; i >= 0 && len(out) < n; i-- {
		ev := d.Events[i]
		if ev.T > t || ev.Terminal != terminal {
			continue
		}
		out = append(out, ev)
	}
	// Reverse into chronological order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}
