package dsched

import "spiffi/internal/sim"

// GSS implements the group sweeping scheme of Yu et al. [Yu92] as
// described in §5.2.2: terminals are statically assigned to one of a
// fixed set of groups; groups are processed in round-robin order; to
// process a group, up to one pending request from each terminal in that
// group is selected, and the batch is serviced in elevator order.
//
// With one group GSS is nearly the elevator algorithm (but each terminal
// is serviced at most once per sweep); with as many groups as terminals
// it degenerates to round-robin.
type GSS struct {
	groups   int
	curGroup int
	batch    []*Request // requests selected for the current group's sweep
	pending  []*Request // not yet selected
	dir      int
}

// NewGSS returns an empty GSS queue with the given number of groups.
func NewGSS(groups int) *GSS {
	if groups <= 0 {
		panic("dsched: GSS needs at least one group")
	}
	return &GSS{groups: groups, dir: 1}
}

// Name implements Scheduler.
func (g *GSS) Name() string {
	if g.groups == 1 {
		return "gss(1)"
	}
	return "gss"
}

// Groups returns the configured group count.
func (g *GSS) Groups() int { return g.groups }

// groupOf maps a terminal to its group.
func (g *GSS) groupOf(terminal int) int {
	if terminal < 0 {
		return 0 // requests without a terminal ride with group 0
	}
	return terminal % g.groups
}

// Add implements Scheduler.
func (g *GSS) Add(r *Request) { g.pending = append(g.pending, r) }

// Len implements Scheduler.
func (g *GSS) Len() int { return len(g.batch) + len(g.pending) }

// Drain implements Scheduler.
func (g *GSS) Drain() []*Request { return drainSorted(&g.batch, &g.pending) }

// Next implements Scheduler.
func (g *GSS) Next(_ sim.Time, headCyl int) *Request {
	if len(g.batch) == 0 {
		g.formBatch()
	}
	if len(g.batch) == 0 {
		return nil
	}
	i, dir := pickElevator(g.batch, headCyl, g.dir)
	g.dir = dir
	r := g.batch[i]
	g.batch = removeAt(g.batch, i)
	return r
}

// formBatch advances through groups (starting with the current one) until
// it finds a group with pending work, then moves up to one request per
// terminal of that group — the oldest per terminal — into the batch.
func (g *GSS) formBatch() {
	if len(g.pending) == 0 {
		return
	}
	for scanned := 0; scanned < g.groups; scanned++ {
		grp := (g.curGroup + scanned) % g.groups
		taken := map[int]int{} // terminal -> index in batch
		for i := 0; i < len(g.pending); {
			r := g.pending[i]
			if g.groupOf(r.Terminal) != grp {
				i++
				continue
			}
			if bi, ok := taken[r.Terminal]; ok {
				// Keep only the oldest request per terminal.
				if r.Seq < g.batch[bi].Seq {
					g.pending[i] = g.batch[bi]
					g.batch[bi] = r
				}
				i++
				continue
			}
			taken[r.Terminal] = len(g.batch)
			g.batch = append(g.batch, r)
			g.pending = removeAt(g.pending, i)
		}
		if len(g.batch) > 0 {
			g.curGroup = (grp + 1) % g.groups
			return
		}
	}
}
