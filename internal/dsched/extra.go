package dsched

import "spiffi/internal/sim"

// SSTF (shortest seek time first) always services the pending request
// nearest the head. It minimizes per-access seek time more greedily than
// the elevator but is unfair: requests at the platter edges can starve
// under load. It is not in the paper's comparison; it is included as an
// additional classic baseline for ablation studies.
type SSTF struct {
	reqs []*Request
}

// NewSSTF returns an empty SSTF queue.
func NewSSTF() *SSTF { return &SSTF{} }

// Name implements Scheduler.
func (s *SSTF) Name() string { return "sstf" }

// Add implements Scheduler.
func (s *SSTF) Add(r *Request) { s.reqs = append(s.reqs, r) }

// Len implements Scheduler.
func (s *SSTF) Len() int { return len(s.reqs) }

// Drain implements Scheduler.
func (s *SSTF) Drain() []*Request { return drainSorted(&s.reqs) }

// Next implements Scheduler.
func (s *SSTF) Next(_ sim.Time, headCyl int) *Request {
	if len(s.reqs) == 0 {
		return nil
	}
	best := 0
	for i, r := range s.reqs {
		b := s.reqs[best]
		di, db := absInt(r.Cylinder-headCyl), absInt(b.Cylinder-headCyl)
		if di < db || (di == db && r.Seq < b.Seq) {
			best = i
		}
	}
	r := s.reqs[best]
	s.reqs = removeAt(s.reqs, best)
	return r
}

// CSCAN is the circular elevator: the head sweeps in one direction only,
// jumping back to the lowest pending cylinder when nothing lies ahead.
// Compared with the plain elevator it trades a little seek efficiency
// for lower service-time variance. Also an ablation baseline.
type CSCAN struct {
	reqs []*Request
}

// NewCSCAN returns an empty C-SCAN queue.
func NewCSCAN() *CSCAN { return &CSCAN{} }

// Name implements Scheduler.
func (c *CSCAN) Name() string { return "cscan" }

// Add implements Scheduler.
func (c *CSCAN) Add(r *Request) { c.reqs = append(c.reqs, r) }

// Len implements Scheduler.
func (c *CSCAN) Len() int { return len(c.reqs) }

// Drain implements Scheduler.
func (c *CSCAN) Drain() []*Request { return drainSorted(&c.reqs) }

// Next implements Scheduler.
func (c *CSCAN) Next(_ sim.Time, headCyl int) *Request {
	if len(c.reqs) == 0 {
		return nil
	}
	// Nearest request at or above the head; else wrap to the lowest.
	best := -1
	for i, r := range c.reqs {
		if r.Cylinder < headCyl {
			continue
		}
		if best == -1 {
			best = i
			continue
		}
		b := c.reqs[best]
		if r.Cylinder < b.Cylinder || (r.Cylinder == b.Cylinder && r.Seq < b.Seq) {
			best = i
		}
	}
	if best == -1 {
		for i, r := range c.reqs {
			if best == -1 {
				best = i
				continue
			}
			b := c.reqs[best]
			if r.Cylinder < b.Cylinder || (r.Cylinder == b.Cylinder && r.Seq < b.Seq) {
				best = i
			}
		}
	}
	r := c.reqs[best]
	c.reqs = removeAt(c.reqs, best)
	return r
}
