package dsched

import (
	"fmt"

	"spiffi/internal/sim"
)

// Kind selects a disk scheduling algorithm.
type Kind string

// The scheduling algorithms compared in the paper's Figure 10, plus
// FCFS, SSTF and C-SCAN as extra classic baselines.
const (
	KindElevator   Kind = "elevator"
	KindFCFS       Kind = "fcfs"
	KindRoundRobin Kind = "round-robin"
	KindGSS        Kind = "gss"
	KindRealTime   Kind = "real-time"
	KindSSTF       Kind = "sstf"
	KindCSCAN      Kind = "cscan"
)

// Config is a declarative scheduler specification; one scheduler instance
// is built per disk.
type Config struct {
	Kind Kind

	// Groups applies to KindGSS (paper: 1 group in Figure 10).
	Groups int

	// Classes and Spacing apply to KindRealTime (paper's tuned values:
	// 3 classes, 4-second spacing).
	Classes int
	Spacing sim.Duration
}

// String renders the configuration the way the paper labels its curves.
func (c Config) String() string {
	switch c.Kind {
	case KindGSS:
		return fmt.Sprintf("gss(%d)", c.Groups)
	case KindRealTime:
		return fmt.Sprintf("real-time(%d,%gs)", c.Classes, c.Spacing.Seconds())
	default:
		return string(c.Kind)
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch c.Kind {
	case KindElevator, KindFCFS, KindRoundRobin, KindSSTF, KindCSCAN:
		return nil
	case KindGSS:
		if c.Groups < 1 {
			return fmt.Errorf("dsched: gss needs Groups >= 1, got %d", c.Groups)
		}
		return nil
	case KindRealTime:
		if c.Classes < 1 {
			return fmt.Errorf("dsched: real-time needs Classes >= 1, got %d", c.Classes)
		}
		if c.Spacing <= 0 {
			return fmt.Errorf("dsched: real-time needs Spacing > 0, got %v", c.Spacing)
		}
		return nil
	default:
		return fmt.Errorf("dsched: unknown scheduler kind %q", c.Kind)
	}
}

// New builds a scheduler instance for one disk.
func (c Config) New() Scheduler {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	switch c.Kind {
	case KindElevator:
		return NewElevator()
	case KindFCFS:
		return NewFCFS()
	case KindRoundRobin:
		return NewRoundRobin()
	case KindSSTF:
		return NewSSTF()
	case KindCSCAN:
		return NewCSCAN()
	case KindGSS:
		return NewGSS(c.Groups)
	default:
		return NewRealTime(c.Classes, c.Spacing)
	}
}

// IsRealTime reports whether the configuration assigns deadlines meaning —
// prefetching algorithms that need deadlines (real-time and delayed
// prefetching, §5.2.3) require a real-time scheduler.
func (c Config) IsRealTime() bool { return c.Kind == KindRealTime }
