package dsched

import "spiffi/internal/sim"

// RealTime is the paper's real-time disk scheduling algorithm (§5.2.2,
// Figures 5 and 6): every request carries a completion deadline; the
// remaining slack maps the request into one of a fixed set of priority
// classes with uniformly spaced cutoffs; the highest-priority class with
// pending requests is serviced in elevator order. Priorities are
// recomputed from the current time at every selection, so a request
// drifts into higher classes as its deadline approaches.
//
// A request with slack below Spacing is in the highest class (class 0);
// one with slack of at least (Classes-1)*Spacing is in the lowest.
// Prefetch requests carry estimated deadlines (real-time prefetching,
// §5.2.3) or, if none was estimated, an infinitely late deadline that
// pins them to the lowest class.
type RealTime struct {
	classes int
	spacing sim.Duration
	reqs    []*Request
	dir     int
	scratch []*Request
}

// NewRealTime builds the scheduler with the given number of priority
// classes and the spacing between priority cutoffs. The paper's tuned
// configuration is 3 classes with 4-second spacing.
func NewRealTime(classes int, spacing sim.Duration) *RealTime {
	if classes < 1 {
		panic("dsched: real-time needs at least one priority class")
	}
	if spacing <= 0 {
		panic("dsched: real-time needs positive priority spacing")
	}
	return &RealTime{classes: classes, spacing: spacing, dir: 1}
}

// Name implements Scheduler.
func (rt *RealTime) Name() string { return "real-time" }

// Classes returns the number of priority classes.
func (rt *RealTime) Classes() int { return rt.classes }

// Spacing returns the priority cutoff spacing.
func (rt *RealTime) Spacing() sim.Duration { return rt.spacing }

// Add implements Scheduler.
func (rt *RealTime) Add(r *Request) { rt.reqs = append(rt.reqs, r) }

// Len implements Scheduler.
func (rt *RealTime) Len() int { return len(rt.reqs) }

// Drain implements Scheduler.
func (rt *RealTime) Drain() []*Request { return drainSorted(&rt.reqs) }

// ClassOf returns the priority class (0 = most urgent) a request with the
// given deadline occupies at time now.
func (rt *RealTime) ClassOf(now, deadline sim.Time) int {
	slack := deadline.Sub(now)
	if slack < 0 {
		return 0
	}
	c := int(slack / rt.spacing)
	if c >= rt.classes {
		c = rt.classes - 1
	}
	return c
}

// Next implements Scheduler.
func (rt *RealTime) Next(now sim.Time, headCyl int) *Request {
	if len(rt.reqs) == 0 {
		return nil
	}
	// Find the most urgent class present, then elevator among its members.
	best := rt.classes
	for _, r := range rt.reqs {
		if c := rt.ClassOf(now, r.Deadline); c < best {
			best = c
			if best == 0 {
				break
			}
		}
	}
	rt.scratch = rt.scratch[:0]
	for _, r := range rt.reqs {
		if rt.ClassOf(now, r.Deadline) == best {
			rt.scratch = append(rt.scratch, r)
		}
	}
	i, dir := pickElevator(rt.scratch, headCyl, rt.dir)
	rt.dir = dir
	chosen := rt.scratch[i]
	for j, r := range rt.reqs {
		if r == chosen {
			rt.reqs = removeAt(rt.reqs, j)
			break
		}
	}
	return chosen
}
