// Package dsched implements the disk scheduling algorithms compared in
// the SPIFFI paper (§5.2.2): elevator, FCFS, round-robin, the group
// sweeping scheme (GSS) of Yu et al., and the paper's real-time
// deadline-driven priority algorithm.
//
// A Scheduler holds pending requests for one disk; the disk's service
// process calls Next after every completed access, so algorithms that
// recompute priorities "after each disk access" (the real-time algorithm)
// do so naturally.
package dsched

import (
	"sort"

	"spiffi/internal/sim"
)

// Request is one pending disk access.
type Request struct {
	Offset   int64    // byte offset on the disk
	Size     int64    // transfer length in bytes
	Cylinder int      // target cylinder (first cylinder of the transfer)
	Deadline sim.Time // absolute completion deadline (real-time scheduling)
	Terminal int      // issuing terminal (round-robin and GSS fairness key)
	Prefetch bool     // background prefetch rather than a demand read
	Arrival  sim.Time // when the request entered the queue
	Seq      uint64   // global arrival sequence, the deterministic tiebreak

	// Failed marks a request completed with an error rather than data:
	// the disk fail-stopped while it was queued or in service, or it was
	// submitted to an already-failed disk.
	Failed bool

	// Rebuild marks a background mirror-reconstruction transfer
	// (internal/overload). Rebuild requests ride the non-real-time
	// queue class like prefetches but are counted separately.
	Rebuild bool

	// Data carries the issuer's completion context opaquely.
	Data any
}

// Scheduler is a queue discipline for one disk.
type Scheduler interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Add inserts a pending request.
	Add(r *Request)
	// Next removes and returns the request to service now, given the
	// current time and disk head position, or nil if none pending.
	Next(now sim.Time, headCyl int) *Request
	// Len reports the number of pending requests.
	Len() int
	// Drain removes and returns every pending request in arrival (Seq)
	// order, emptying the queue. A fail-stopped disk drains its queue and
	// completes the abandoned requests with Failed set so issuers learn
	// their fate instead of waiting forever.
	Drain() []*Request
}

// drainSorted empties the given backing slices into one arrival-ordered
// result. It is the shared Drain implementation: every discipline stores
// plain request slices, and arrival order is the only ordering that still
// means anything once the disk is gone.
func drainSorted(lists ...*[]*Request) []*Request {
	var out []*Request
	for _, l := range lists {
		out = append(out, *l...)
		*l = (*l)[:0]
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// pickElevator chooses the SCAN-order request from reqs: the nearest
// request at or beyond the head in the travel direction; if none lie that
// way the direction reverses. It returns the chosen index and the
// possibly flipped direction. reqs must be non-empty. Ties on cylinder
// break by lower Seq (arrival order), keeping runs deterministic.
func pickElevator(reqs []*Request, headCyl int, dir int) (best int, newDir int) {
	pick := func(d int) int {
		idx := -1
		for i, r := range reqs {
			if d > 0 && r.Cylinder < headCyl {
				continue
			}
			if d < 0 && r.Cylinder > headCyl {
				continue
			}
			if idx == -1 {
				idx = i
				continue
			}
			b := reqs[idx]
			di := absInt(r.Cylinder - headCyl)
			db := absInt(b.Cylinder - headCyl)
			if di < db || (di == db && r.Seq < b.Seq) {
				idx = i
			}
		}
		return idx
	}
	if dir == 0 {
		dir = 1
	}
	if idx := pick(dir); idx >= 0 {
		return idx, dir
	}
	return pick(-dir), -dir
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// removeAt deletes index i from the slice preserving order of the rest.
// Order preservation matters: FIFO tie-breaks rely on stable ordering.
func removeAt(reqs []*Request, i int) []*Request {
	copy(reqs[i:], reqs[i+1:])
	reqs[len(reqs)-1] = nil
	return reqs[:len(reqs)-1]
}
