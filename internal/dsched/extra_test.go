package dsched

import (
	"testing"
	"testing/quick"
)

func TestSSTFPicksNearest(t *testing.T) {
	s := NewSSTF()
	s.Add(req(90, 0, 0))
	s.Add(req(48, 1, 0))
	s.Add(req(52, 2, 0))
	got := cylinders(drain(s, 0, 50))
	// From 50: 48 (d=2) beats 52? No: 52 is d=2 as well; tie -> earlier
	// arrival (90 first... no, 48 arrived before 52). d(48)=2, d(52)=2,
	// tie broken by Seq: 48 wins. Then head=48: 52 (d=4) beats 90.
	if !eqInts(got, []int{48, 52, 90}) {
		t.Fatalf("sstf order = %v", got)
	}
}

func TestSSTFCanStarveFarRequests(t *testing.T) {
	// Feed a stream of near requests; the far one is served last.
	s := NewSSTF()
	far := req(4000, 0, 0)
	s.Add(far)
	for i := 0; i < 5; i++ {
		s.Add(req(10+i, 1, 0))
	}
	var last *Request
	head := 10
	for s.Len() > 0 {
		last = s.Next(0, head)
		head = last.Cylinder
	}
	if last != far {
		t.Fatal("far request should be served last under SSTF")
	}
}

func TestCSCANSweepsOneDirection(t *testing.T) {
	s := NewCSCAN()
	for _, c := range []int{80, 20, 60, 40} {
		s.Add(req(c, 0, 0))
	}
	// Head at 50: up to 60, 80, then wrap to 20, 40.
	got := cylinders(drain(s, 0, 50))
	if !eqInts(got, []int{60, 80, 20, 40}) {
		t.Fatalf("cscan order = %v", got)
	}
}

func TestCSCANServicesHeadPosition(t *testing.T) {
	s := NewCSCAN()
	s.Add(req(50, 0, 0))
	if got := s.Next(0, 50); got == nil || got.Cylinder != 50 {
		t.Fatal("request at head position must be served")
	}
}

// Property: a C-SCAN drain is at most two ascending runs (the sweep and
// the post-wrap sweep).
func TestCSCANTwoAscendingRunsProperty(t *testing.T) {
	f := func(raw []uint8, start uint8) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewCSCAN()
		for i, c := range raw {
			s.Add(req(int(c), i, 0))
		}
		got := cylinders(drain(s, 0, int(start)))
		descents := 0
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				descents++
			}
		}
		return descents <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestExtraKindsConfig(t *testing.T) {
	for _, k := range []Kind{KindSSTF, KindCSCAN} {
		c := Config{Kind: k}
		if err := c.Validate(); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if c.New().Name() != string(k) {
			t.Fatalf("%v: factory name mismatch", k)
		}
	}
}
