package dsched

import "spiffi/internal/sim"

// Elevator is the classic SCAN algorithm (§5.2.2): the head sweeps across
// cylinders servicing requests in passing, reversing at the last pending
// request in the travel direction. It nearly minimizes seeks while
// remaining fair.
type Elevator struct {
	reqs []*Request
	dir  int
}

// NewElevator returns an empty elevator queue sweeping upward first.
func NewElevator() *Elevator { return &Elevator{dir: 1} }

// Name implements Scheduler.
func (e *Elevator) Name() string { return "elevator" }

// Add implements Scheduler.
func (e *Elevator) Add(r *Request) { e.reqs = append(e.reqs, r) }

// Len implements Scheduler.
func (e *Elevator) Len() int { return len(e.reqs) }

// Drain implements Scheduler.
func (e *Elevator) Drain() []*Request { return drainSorted(&e.reqs) }

// Next implements Scheduler.
func (e *Elevator) Next(_ sim.Time, headCyl int) *Request {
	if len(e.reqs) == 0 {
		return nil
	}
	i, dir := pickElevator(e.reqs, headCyl, e.dir)
	e.dir = dir
	r := e.reqs[i]
	e.reqs = removeAt(e.reqs, i)
	return r
}

// FCFS services requests strictly in arrival order. It is the baseline
// discipline of the Haritsa/Karthikeyan comparison referenced in §3 and
// is useful for calibration tests.
type FCFS struct {
	reqs []*Request
}

// NewFCFS returns an empty FCFS queue.
func NewFCFS() *FCFS { return &FCFS{} }

// Name implements Scheduler.
func (f *FCFS) Name() string { return "fcfs" }

// Add implements Scheduler.
func (f *FCFS) Add(r *Request) { f.reqs = append(f.reqs, r) }

// Len implements Scheduler.
func (f *FCFS) Len() int { return len(f.reqs) }

// Drain implements Scheduler.
func (f *FCFS) Drain() []*Request { return drainSorted(&f.reqs) }

// Next implements Scheduler.
func (f *FCFS) Next(_ sim.Time, _ int) *Request {
	if len(f.reqs) == 0 {
		return nil
	}
	r := f.reqs[0]
	f.reqs = removeAt(f.reqs, 0)
	return r
}

// RoundRobin services terminals in strict cyclic order, taking the oldest
// pending request of each terminal in turn. The paper notes this is the
// GSS limit where every terminal forms its own group, and shows it always
// loses to seek-optimizing algorithms (Figure 10).
type RoundRobin struct {
	reqs   []*Request
	cursor int // terminal id after which the scan resumes
}

// NewRoundRobin returns an empty round-robin queue.
func NewRoundRobin() *RoundRobin { return &RoundRobin{cursor: -1} }

// Name implements Scheduler.
func (rr *RoundRobin) Name() string { return "round-robin" }

// Add implements Scheduler.
func (rr *RoundRobin) Add(r *Request) { rr.reqs = append(rr.reqs, r) }

// Len implements Scheduler.
func (rr *RoundRobin) Len() int { return len(rr.reqs) }

// Drain implements Scheduler.
func (rr *RoundRobin) Drain() []*Request { return drainSorted(&rr.reqs) }

// Next implements Scheduler.
func (rr *RoundRobin) Next(_ sim.Time, _ int) *Request {
	if len(rr.reqs) == 0 {
		return nil
	}
	// Wrap one past the largest terminal id in play (queue or cursor), so
	// every id orders cyclically after the cursor whatever the id range —
	// a fixed constant would silently mis-order ids at or beyond it.
	wrap := rr.cursor
	for _, r := range rr.reqs {
		if r.Terminal > wrap {
			wrap = r.Terminal
		}
	}
	wrap++
	// Choose the terminal with the smallest cyclic distance from the
	// cursor, then that terminal's oldest request. bestIdx is guarded
	// explicitly: no key value doubles as an "unset" sentinel.
	bestIdx := -1
	bestKey := 0
	for i, r := range rr.reqs {
		key := r.Terminal - rr.cursor - 1
		if key < 0 {
			key += wrap
		}
		if bestIdx == -1 || key < bestKey || (key == bestKey && r.Seq < rr.reqs[bestIdx].Seq) {
			bestKey = key
			bestIdx = i
		}
	}
	r := rr.reqs[bestIdx]
	rr.cursor = r.Terminal
	rr.reqs = removeAt(rr.reqs, bestIdx)
	return r
}
