package dsched

import (
	"testing"
	"testing/quick"

	"spiffi/internal/sim"
)

var seqCounter uint64

func req(cyl, term int, deadline sim.Time) *Request {
	seqCounter++
	return &Request{Cylinder: cyl, Terminal: term, Deadline: deadline, Seq: seqCounter}
}

func drain(s Scheduler, now sim.Time, head int) []*Request {
	var out []*Request
	for {
		r := s.Next(now, head)
		if r == nil {
			return out
		}
		head = r.Cylinder
		out = append(out, r)
	}
}

func cylinders(rs []*Request) []int {
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.Cylinder
	}
	return out
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFCFSOrder(t *testing.T) {
	s := NewFCFS()
	s.Add(req(50, 0, 0))
	s.Add(req(10, 1, 0))
	s.Add(req(90, 2, 0))
	got := cylinders(drain(s, 0, 0))
	if !eqInts(got, []int{50, 10, 90}) {
		t.Fatalf("fcfs order = %v", got)
	}
}

func TestElevatorSweepsUpThenDown(t *testing.T) {
	s := NewElevator()
	for _, c := range []int{80, 20, 60, 40} {
		s.Add(req(c, 0, 0))
	}
	// Head at 50 moving up: 60, 80, then reverse: 40, 20.
	got := cylinders(drain(s, 0, 50))
	if !eqInts(got, []int{60, 80, 40, 20}) {
		t.Fatalf("elevator order = %v", got)
	}
}

func TestElevatorServicesCurrentCylinder(t *testing.T) {
	s := NewElevator()
	s.Add(req(50, 0, 0))
	s.Add(req(70, 1, 0))
	got := cylinders(drain(s, 0, 50))
	if !eqInts(got, []int{50, 70}) {
		t.Fatalf("order = %v, head-position request should be served in passing", got)
	}
}

func TestElevatorReversesWhenNothingAhead(t *testing.T) {
	s := NewElevator()
	s.Add(req(10, 0, 0))
	s.Add(req(30, 1, 0))
	got := cylinders(drain(s, 0, 90)) // nothing above 90: reverse
	if !eqInts(got, []int{30, 10}) {
		t.Fatalf("order = %v", got)
	}
}

func TestElevatorTieBreaksByArrival(t *testing.T) {
	s := NewElevator()
	a := req(40, 0, 0)
	b := req(40, 1, 0)
	s.Add(a)
	s.Add(b)
	if got := s.Next(0, 40); got != a {
		t.Fatal("equal cylinders must serve earliest arrival first")
	}
}

// Property: a full elevator drain visits each cylinder set as one
// monotone run up then one monotone run down (or vice versa).
func TestElevatorTwoMonotoneRunsProperty(t *testing.T) {
	f := func(raw []uint8, start uint8) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewElevator()
		for i, c := range raw {
			s.Add(req(int(c), i, 0))
		}
		got := cylinders(drain(s, 0, int(start)))
		// Count direction changes; a SCAN drain has at most one.
		changes := 0
		for i := 2; i < len(got); i++ {
			d1 := got[i-1] - got[i-2]
			d2 := got[i] - got[i-1]
			if d1 != 0 && d2 != 0 && (d1 > 0) != (d2 > 0) {
				changes++
			}
		}
		return changes <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundRobinCyclesTerminals(t *testing.T) {
	s := NewRoundRobin()
	// Terminal 2 floods the queue; terminals 0 and 1 have one each.
	s.Add(req(10, 2, 0))
	s.Add(req(20, 2, 0))
	s.Add(req(30, 2, 0))
	s.Add(req(40, 0, 0))
	s.Add(req(50, 1, 0))
	var terms []int
	for _, r := range drain(s, 0, 0) {
		terms = append(terms, r.Terminal)
	}
	if !eqInts(terms, []int{0, 1, 2, 2, 2}) {
		t.Fatalf("terminal order = %v, want round-robin 0,1,2 then 2's backlog", terms)
	}
}

func TestRoundRobinOldestPerTerminal(t *testing.T) {
	s := NewRoundRobin()
	first := req(99, 5, 0)
	s.Add(first)
	s.Add(req(1, 5, 0))
	if got := s.Next(0, 0); got != first {
		t.Fatal("round-robin must serve a terminal's oldest request first")
	}
}

// Regression: a terminal id that collided with the old 1<<62 "unset"
// sentinel made the tie-break index rr.reqs[-1] and panicked. Any id must
// be servable.
func TestRoundRobinHugeTerminalIDNoPanic(t *testing.T) {
	s := NewRoundRobin()
	huge := req(10, 1<<62, 0)
	s.Add(huge)
	if got := s.Next(0, 0); got != huge {
		t.Fatalf("huge-id request not served: %+v", got)
	}
}

// Regression: the old fixed 1<<31 wrap constant mis-ordered terminal ids
// at or beyond 2^31 — a wrapped small id could overtake a not-yet-served
// huge id. The wrap is now derived from the observed id range, so cyclic
// fairness holds for any ids.
func TestRoundRobinOrdersIDsBeyondWrapConstant(t *testing.T) {
	s := NewRoundRobin()
	small := req(10, 1, 0)
	big := req(20, 1<<31, 0)
	bigger := req(30, 1<<40, 0)
	s.Add(small)
	s.Add(big)
	s.Add(bigger)
	var terms []int
	for _, r := range drain(s, 0, 0) {
		terms = append(terms, r.Terminal)
	}
	if !eqInts(terms, []int{1, 1 << 31, 1 << 40}) {
		t.Fatalf("cyclic order = %v, want ascending from cursor", terms)
	}
	// Cyclic order resumes after the cursor: with the cursor at 5, the
	// id 2^31+10 is ahead in the cycle and must be served before the
	// cycle wraps back to id 3. The old fixed wrap put 3 first.
	s2 := NewRoundRobin()
	s2.Add(req(10, 5, 0))
	if got := s2.Next(0, 0); got.Terminal != 5 {
		t.Fatalf("setup: served %d", got.Terminal)
	}
	s2.Add(req(20, 3, 0))
	s2.Add(req(30, 1<<31+10, 0))
	var wrapTerms []int
	for _, r := range drain(s2, 0, 0) {
		wrapTerms = append(wrapTerms, r.Terminal)
	}
	if !eqInts(wrapTerms, []int{1<<31 + 10, 3}) {
		t.Fatalf("post-cursor order = %v, want 2^31+10 then 3", wrapTerms)
	}
}

func TestGSSOneGroupServicesEachTerminalOncePerSweep(t *testing.T) {
	s := NewGSS(1)
	// Terminal 0 has two requests; terminal 1 has one.
	a0 := req(10, 0, 0)
	a1 := req(90, 0, 0)
	b := req(50, 1, 0)
	s.Add(a0)
	s.Add(a1)
	s.Add(b)
	// First sweep batch: one per terminal = {a0, b}, elevator from 0: 10, 50.
	if got := s.Next(0, 0); got != a0 {
		t.Fatalf("first = cyl %d", got.Cylinder)
	}
	if got := s.Next(0, 10); got != b {
		t.Fatalf("second should be terminal 1's request")
	}
	// Second sweep picks up terminal 0's backlog.
	if got := s.Next(0, 50); got != a1 {
		t.Fatal("third should be terminal 0's second request")
	}
}

func TestGSSGroupsRoundRobin(t *testing.T) {
	s := NewGSS(2)
	// Terminals 0,2 in group 0; terminals 1,3 in group 1.
	g0a := req(10, 0, 0)
	g0b := req(20, 2, 0)
	g1a := req(30, 1, 0)
	g1b := req(40, 3, 0)
	s.Add(g1a)
	s.Add(g0a)
	s.Add(g0b)
	s.Add(g1b)
	got := drain(s, 0, 0)
	// Group 0 batch first (elevator: 10,20) then group 1 (30,40).
	if got[0] != g0a || got[1] != g0b || got[2] != g1a || got[3] != g1b {
		t.Fatalf("gss order = %v", cylinders(got))
	}
}

func TestGSSSkipsEmptyGroups(t *testing.T) {
	s := NewGSS(4)
	r := req(10, 3, 0) // group 3 only
	s.Add(r)
	if got := s.Next(0, 0); got != r {
		t.Fatal("gss must skip empty groups")
	}
	if s.Next(0, 0) != nil {
		t.Fatal("queue should be empty")
	}
}

func TestGSSManyGroupsActsLikeRoundRobin(t *testing.T) {
	// With one terminal per group, GSS is round-robin (paper §5.2.2).
	s := NewGSS(3)
	s.Add(req(10, 2, 0))
	s.Add(req(20, 2, 0))
	s.Add(req(30, 0, 0))
	s.Add(req(40, 1, 0))
	var terms []int
	for _, r := range drain(s, 0, 0) {
		terms = append(terms, r.Terminal)
	}
	if !eqInts(terms, []int{0, 1, 2, 2}) {
		t.Fatalf("terminal order = %v", terms)
	}
}

func TestRealTimeClassAssignment(t *testing.T) {
	// Figure 5: 3 classes, 2s spacing. Cutoffs at 2s and 4s.
	rt := NewRealTime(3, 2*sim.Second)
	now := sim.Time(0)
	if c := rt.ClassOf(now, sim.Time(1*sim.Second)); c != 0 {
		t.Fatalf("1s slack -> class %d, want 0 (highest)", c)
	}
	if c := rt.ClassOf(now, sim.Time(3*sim.Second)); c != 1 {
		t.Fatalf("3s slack -> class %d, want 1", c)
	}
	if c := rt.ClassOf(now, sim.Time(5*sim.Second)); c != 2 {
		t.Fatalf("5s slack -> class %d, want 2 (lowest)", c)
	}
	if c := rt.ClassOf(now, sim.Time(100*sim.Second)); c != 2 {
		t.Fatalf("huge slack -> class %d, want capped at 2", c)
	}
	if c := rt.ClassOf(sim.Time(10*sim.Second), sim.Time(5*sim.Second)); c != 0 {
		t.Fatal("past deadline must be most urgent")
	}
}

// Figure 6's worked example: request 1 at cylinder 10 with priority 2,
// request 2 at cylinder 500 with priority 1. Request 2 is serviced first
// despite the longer seek; afterwards request 1 has drifted into priority
// 1 and is serviced next.
func TestRealTimeFigure6Scenario(t *testing.T) {
	rt := NewRealTime(3, 2*sim.Second)
	r1 := req(10, 0, sim.Time(3*sim.Second))  // slack 3s -> class 1
	r2 := req(500, 1, sim.Time(1*sim.Second)) // slack 1s -> class 0
	rt.Add(r1)
	rt.Add(r2)
	if got := rt.Next(0, 0); got != r2 {
		t.Fatal("urgent request must be serviced first despite seek distance")
	}
	// 1.5s later request 1 is within 2s of its deadline: class 0.
	if got := rt.Next(sim.Time(1500*sim.Millisecond), 500); got != r1 {
		t.Fatal("request 1 should be promoted and serviced next")
	}
}

func TestRealTimeElevatorWithinClass(t *testing.T) {
	rt := NewRealTime(2, 4*sim.Second)
	far := sim.Time(100 * sim.Second)
	a := req(30, 0, far)
	b := req(60, 1, far)
	c := req(10, 2, far)
	rt.Add(a)
	rt.Add(b)
	rt.Add(c)
	got := cylinders(drain(rt, 0, 25))
	if !eqInts(got, []int{30, 60, 10}) {
		t.Fatalf("within-class order = %v, want elevator 30,60,10", got)
	}
}

// Property: real-time never services a request while a strictly more
// urgent class has pending requests.
func TestRealTimeHighestClassFirstProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		rt := NewRealTime(3, 2*sim.Second)
		for i, v := range raw {
			d := sim.Time(v) * sim.Time(sim.Millisecond) * 10 // deadlines 0..655s
			rt.Add(req(int(v%200), i, d))
		}
		now := sim.Time(0)
		head := 0
		for rt.Len() > 0 {
			r := rt.Next(now, head)
			cr := rt.ClassOf(now, r.Deadline)
			// No remaining request may be in a more urgent class.
			for _, o := range rt.reqs {
				if rt.ClassOf(now, o.Deadline) < cr {
					return false
				}
			}
			head = r.Cylinder
			now = now.Add(50 * sim.Millisecond)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidateAndNew(t *testing.T) {
	good := []Config{
		{Kind: KindElevator},
		{Kind: KindFCFS},
		{Kind: KindRoundRobin},
		{Kind: KindGSS, Groups: 1},
		{Kind: KindRealTime, Classes: 3, Spacing: 4 * sim.Second},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if c.New() == nil {
			t.Fatalf("%v: nil scheduler", c)
		}
	}
	bad := []Config{
		{Kind: "bogus"},
		{Kind: KindGSS, Groups: 0},
		{Kind: KindRealTime, Classes: 0, Spacing: sim.Second},
		{Kind: KindRealTime, Classes: 2, Spacing: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("%v: expected validation error", c)
		}
	}
}

func TestConfigString(t *testing.T) {
	c := Config{Kind: KindRealTime, Classes: 3, Spacing: 4 * sim.Second}
	if got := c.String(); got != "real-time(3,4s)" {
		t.Fatalf("String = %q", got)
	}
	if got := (Config{Kind: KindGSS, Groups: 1}).String(); got != "gss(1)" {
		t.Fatalf("String = %q", got)
	}
}

func TestEmptySchedulersReturnNil(t *testing.T) {
	for _, s := range []Scheduler{NewElevator(), NewFCFS(), NewRoundRobin(), NewGSS(2), NewRealTime(3, sim.Second)} {
		if s.Next(0, 0) != nil {
			t.Fatalf("%s: empty Next != nil", s.Name())
		}
		if s.Len() != 0 {
			t.Fatalf("%s: empty Len != 0", s.Name())
		}
	}
}

func BenchmarkRealTimeNext(b *testing.B) {
	rt := NewRealTime(3, 4*sim.Second)
	for i := 0; i < b.N; i++ {
		for j := 0; j < 16; j++ {
			rt.Add(req(j*100, j, sim.Time(j)*sim.Time(sim.Second)))
		}
		for rt.Len() > 0 {
			rt.Next(0, 0)
		}
	}
}

func BenchmarkElevatorNext(b *testing.B) {
	e := NewElevator()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 16; j++ {
			e.Add(req(j*100, j, 0))
		}
		for e.Len() > 0 {
			e.Next(0, 0)
		}
	}
}
