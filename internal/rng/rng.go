// Package rng provides deterministic random-number streams and the
// distributions the SPIFFI simulation needs: uniform, exponential (MPEG
// frame sizes), and Zipfian (movie popularity, Figure 8 of the paper).
//
// All randomness in a simulation flows from one root seed through named
// derived streams, so every run is exactly reproducible and independent
// model components draw from statistically independent streams.
package rng

import (
	"hash/fnv"
	"math"
	"math/bits"
)

// Source is a SplitMix64 pseudo-random generator. SplitMix64 passes
// BigCrush, is splittable (ideal for derived streams), and is trivially
// portable — no global state, no platform dependence.
type Source struct {
	state uint64
}

// New returns a source seeded with seed.
func New(seed uint64) *Source { return &Source{state: seed} }

// Derive returns an independent stream identified by name. Equal
// (source seed, name) pairs always yield identical streams.
func (s *Source) Derive(name string) *Source {
	h := fnv.New64a()
	h.Write([]byte(name))
	return &Source{state: mix(s.state ^ h.Sum64())}
}

// DeriveIndexed returns an independent stream for (name, index) — e.g.
// one stream per terminal or per video.
func (s *Source) DeriveIndexed(name string, index int) *Source {
	h := fnv.New64a()
	h.Write([]byte(name))
	d := &Source{state: mix(s.state ^ h.Sum64() ^ (uint64(index)+1)*0x9E3779B97F4A7C15)}
	return d
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	return mix(s.state)
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	un := uint64(n)
	hi, lo := bits.Mul64(s.Uint64(), un)
	if lo < un {
		threshold := -un % un
		for lo < threshold {
			hi, lo = bits.Mul64(s.Uint64(), un)
		}
	}
	return int(hi)
}

// Exp returns an exponentially distributed value with the given mean.
func (s *Source) Exp(mean float64) float64 {
	// Inverse-CDF; guard the log argument away from zero.
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// UniformDuration returns a uniform float in [0, width).
func (s *Source) UniformDuration(width float64) float64 {
	return s.Float64() * width
}
