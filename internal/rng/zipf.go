package rng

import "math"

// Zipf draws from a Zipfian distribution over {0, 1, ..., n-1}: item i is
// drawn with probability proportional to 1/(i+1)^z. With z=0 the
// distribution is uniform; larger z skews access toward low-numbered
// items. The SPIFFI paper (Figure 8, §6.1) uses z ∈ {0.5, 1.0, 1.5} over
// the video library, with z=1 as the default.
type Zipf struct {
	n   int
	z   float64
	cdf []float64 // cdf[i] = P(X <= i)
}

// NewZipf builds the distribution for n items with skew z. It panics if
// n <= 0 or z < 0.
func NewZipf(n int, z float64) *Zipf {
	if n <= 0 {
		panic("rng: Zipf with non-positive n")
	}
	if z < 0 {
		panic("rng: Zipf with negative z")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), z)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1.0 // guard against rounding
	return &Zipf{n: n, z: z, cdf: cdf}
}

// PMF returns P(X = i).
func (zf *Zipf) PMF(i int) float64 {
	if i == 0 {
		return zf.cdf[0]
	}
	return zf.cdf[i] - zf.cdf[i-1]
}

// N returns the number of items.
func (zf *Zipf) N() int { return zf.n }

// Z returns the skew parameter.
func (zf *Zipf) Z() float64 { return zf.z }

// Draw samples an item index using src.
func (zf *Zipf) Draw(src *Source) int {
	u := src.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, zf.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if zf.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
