package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDerivedStreamsIndependent(t *testing.T) {
	root := New(42)
	a := root.Derive("disks")
	b := root.Derive("terminals")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("derived streams collided %d times", same)
	}
}

func TestDeriveIsStable(t *testing.T) {
	a := New(7).Derive("x").Uint64()
	b := New(7).Derive("x").Uint64()
	if a != b {
		t.Fatal("Derive not stable for equal (seed, name)")
	}
}

func TestDeriveIndexedDistinct(t *testing.T) {
	root := New(1)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		v := root.DeriveIndexed("video", i).Uint64()
		if seen[v] {
			t.Fatalf("indexed stream %d collided", i)
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	s := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Fatalf("bucket %d count %d deviates >5%% from %v", i, c, want)
		}
	}
}

func TestIntnBoundsProperty(t *testing.T) {
	s := New(5)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := s.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpMeanAndVariance(t *testing.T) {
	s := New(19)
	const mean, draws = 250.0, 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := s.Exp(mean)
		if v < 0 {
			t.Fatalf("negative exponential draw %v", v)
		}
		sum += v
		sumSq += v * v
	}
	m := sum / draws
	if math.Abs(m-mean)/mean > 0.02 {
		t.Fatalf("sample mean %v deviates from %v", m, mean)
	}
	variance := sumSq/draws - m*m
	if math.Abs(variance-mean*mean)/(mean*mean) > 0.05 {
		t.Fatalf("sample variance %v deviates from %v", variance, mean*mean)
	}
}

func TestZipfPMFSumsToOne(t *testing.T) {
	for _, z := range []float64{0, 0.5, 1.0, 1.5} {
		zf := NewZipf(64, z)
		sum := 0.0
		for i := 0; i < 64; i++ {
			sum += zf.PMF(i)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("z=%v: PMF sums to %v", z, sum)
		}
	}
}

func TestZipfMonotoneNonIncreasing(t *testing.T) {
	zf := NewZipf(64, 1.0)
	for i := 1; i < 64; i++ {
		if zf.PMF(i) > zf.PMF(i-1)+1e-12 {
			t.Fatalf("PMF increases at %d", i)
		}
	}
}

func TestZipfZeroIsUniform(t *testing.T) {
	zf := NewZipf(10, 0)
	for i := 0; i < 10; i++ {
		if math.Abs(zf.PMF(i)-0.1) > 1e-9 {
			t.Fatalf("z=0 PMF(%d) = %v, want 0.1", i, zf.PMF(i))
		}
	}
}

// The paper's Figure 8 shape: with z=1 over 64 videos the most popular
// video draws about 21% of requests; with z=1.5 about 38%.
func TestZipfPaperFigure8Shape(t *testing.T) {
	if p := NewZipf(64, 1.0).PMF(0); p < 0.19 || p > 0.23 {
		t.Fatalf("z=1.0 top-video probability %v, want ~0.21", p)
	}
	if p := NewZipf(64, 1.5).PMF(0); p < 0.38 || p > 0.46 {
		t.Fatalf("z=1.5 top-video probability %v, want ~0.42", p)
	}
	if p := NewZipf(64, 0.5).PMF(0); p < 0.06 || p > 0.10 {
		t.Fatalf("z=0.5 top-video probability %v, want ~0.08", p)
	}
}

func TestZipfDrawMatchesPMF(t *testing.T) {
	zf := NewZipf(16, 1.0)
	s := New(77)
	const draws = 200000
	counts := make([]int, 16)
	for i := 0; i < draws; i++ {
		counts[zf.Draw(s)]++
	}
	for i := 0; i < 16; i++ {
		got := float64(counts[i]) / draws
		want := zf.PMF(i)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("item %d frequency %v, PMF %v", i, got, want)
		}
	}
}

func TestZipfDrawInRangeProperty(t *testing.T) {
	zf := NewZipf(64, 1.0)
	s := New(13)
	f := func(_ uint8) bool {
		v := zf.Draw(s)
		return v >= 0 && v < 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkZipfDraw(b *testing.B) {
	zf := NewZipf(256, 1.0)
	s := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		zf.Draw(s)
	}
}

func BenchmarkExp(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Exp(16667)
	}
}
