package layout

import (
	"testing"
	"testing/quick"

	"spiffi/internal/rng"
)

func sizes(n int, each int64) []int64 {
	s := make([]int64, n)
	for i := range s {
		s[i] = each
	}
	return s
}

func TestFigure3Ordering(t *testing.T) {
	// Figure 3: 2 nodes, 2 disks per node. Block A.0 -> node0 disk0,
	// A.1 -> node1 disk0, A.2 -> node0 disk1, A.3 -> node1 disk1,
	// A.4 -> node0 disk0 again.
	p := NewStriped(sizes(2, 100*512), 512, 2, 2)
	want := []struct{ node, disk int }{
		{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0, 0}, {1, 0},
	}
	for b, w := range want {
		a := p.Locate(0, b)
		if a.Node != w.node || a.Disk != w.disk {
			t.Fatalf("block %d at node%d disk%d, want node%d disk%d",
				b, a.Node, a.Disk, w.node, w.disk)
		}
	}
}

func TestFragmentsContiguous(t *testing.T) {
	p := NewStriped(sizes(2, 64*512), 512, 2, 2)
	// Successive blocks on the same disk must be adjacent on disk.
	prev := map[int]Address{}
	for b := 0; b < p.NumBlocks(0); b++ {
		a := p.Locate(0, b)
		if pa, ok := prev[a.DiskGlobal]; ok {
			if a.Offset != pa.Offset+pa.Size {
				t.Fatalf("fragment not contiguous on disk %d: %d then %d",
					a.DiskGlobal, pa.Offset, a.Offset)
			}
		}
		prev[a.DiskGlobal] = a
	}
}

func TestStripedBalancesBlocks(t *testing.T) {
	p := NewStriped(sizes(1, 160*512), 512, 4, 4)
	counts := make([]int, 16)
	for b := 0; b < p.NumBlocks(0); b++ {
		counts[p.Locate(0, b).DiskGlobal]++
	}
	for d, c := range counts {
		if c != 10 {
			t.Fatalf("disk %d holds %d blocks, want 10", d, c)
		}
	}
}

func TestVideosDoNotOverlapOnDisk(t *testing.T) {
	p := NewStriped(sizes(3, 40*512), 512, 2, 2)
	type span struct{ lo, hi int64 }
	occupied := map[int][]span{}
	for v := 0; v < 3; v++ {
		for b := 0; b < p.NumBlocks(v); b++ {
			a := p.Locate(v, b)
			for _, s := range occupied[a.DiskGlobal] {
				if a.Offset < s.hi && a.Offset+a.Size > s.lo {
					t.Fatalf("video %d block %d overlaps on disk %d", v, b, a.DiskGlobal)
				}
			}
			occupied[a.DiskGlobal] = append(occupied[a.DiskGlobal], span{a.Offset, a.Offset + a.Size})
		}
	}
}

func TestFinalPartialBlock(t *testing.T) {
	p := NewStriped([]int64{10*512 + 100}, 512, 2, 2)
	if p.NumBlocks(0) != 11 {
		t.Fatalf("blocks = %d, want 11", p.NumBlocks(0))
	}
	if got := p.SizeOfBlock(0, 10); got != 100 {
		t.Fatalf("final block size %d, want 100", got)
	}
	if got := p.SizeOfBlock(0, 9); got != 512 {
		t.Fatalf("full block size %d, want 512", got)
	}
	if got := p.Locate(0, 10).Size; got != 100 {
		t.Fatalf("located final size %d, want 100", got)
	}
}

func TestBlockOfByte(t *testing.T) {
	p := NewStriped(sizes(1, 100*512), 512, 2, 2)
	if p.BlockOfByte(0, 0) != 0 {
		t.Fatal("offset 0")
	}
	if p.BlockOfByte(0, 511) != 0 {
		t.Fatal("offset 511")
	}
	if p.BlockOfByte(0, 512) != 1 {
		t.Fatal("offset 512")
	}
	if p.BlockOfByte(0, 100*512-1) != 99 {
		t.Fatal("last byte")
	}
}

func TestNextBlockOnSameDiskStriped(t *testing.T) {
	p := NewStriped(sizes(1, 100*512), 512, 4, 4)
	next, ok := p.NextBlockOnSameDisk(0, 3)
	if !ok || next != 19 {
		t.Fatalf("next = %d,%v want 19,true", next, ok)
	}
	a, b := p.Locate(0, 3), p.Locate(0, 19)
	if a.DiskGlobal != b.DiskGlobal {
		t.Fatal("next block not on same disk")
	}
	if _, ok := p.NextBlockOnSameDisk(0, 99); ok {
		t.Fatal("expected no next block near end")
	}
}

func TestNonStripedPlacement(t *testing.T) {
	src := rng.New(42)
	p := NewNonStriped(sizes(16, 20*512), 512, 2, 2, src)
	perDisk := make(map[int]int)
	for v := 0; v < 16; v++ {
		a0 := p.Locate(v, 0)
		perDisk[a0.DiskGlobal]++
		// All blocks of one video on the same disk and contiguous.
		for b := 0; b < p.NumBlocks(v); b++ {
			a := p.Locate(v, b)
			if a.DiskGlobal != a0.DiskGlobal {
				t.Fatalf("video %d spans disks", v)
			}
			if a.Offset != a0.Offset+int64(b)*512 {
				t.Fatalf("video %d not contiguous", v)
			}
		}
	}
	for d := 0; d < 4; d++ {
		if perDisk[d] != 4 {
			t.Fatalf("disk %d holds %d videos, want 4", d, perDisk[d])
		}
	}
}

func TestNonStripedNextBlock(t *testing.T) {
	p := NewNonStriped(sizes(4, 10*512), 512, 2, 2, rng.New(1))
	next, ok := p.NextBlockOnSameDisk(2, 5)
	if !ok || next != 6 {
		t.Fatalf("next = %d,%v want 6,true", next, ok)
	}
}

func TestNonStripedAssignmentIsSeeded(t *testing.T) {
	a := NewNonStriped(sizes(16, 512), 512, 2, 2, rng.New(5))
	b := NewNonStriped(sizes(16, 512), 512, 2, 2, rng.New(5))
	c := NewNonStriped(sizes(16, 512), 512, 2, 2, rng.New(6))
	sameAsA := true
	sameAsC := true
	for v := 0; v < 16; v++ {
		if a.Locate(v, 0).DiskGlobal != b.Locate(v, 0).DiskGlobal {
			sameAsA = false
		}
		if a.Locate(v, 0).DiskGlobal != c.Locate(v, 0).DiskGlobal {
			sameAsC = false
		}
	}
	if !sameAsA {
		t.Fatal("same seed produced different assignment")
	}
	if sameAsC {
		t.Fatal("different seeds improbably identical")
	}
}

// Property: every block of every video maps to a valid address whose
// (disk, offset) pair is unique, and addresses round-trip through
// stream offsets.
func TestLocateRoundTripProperty(t *testing.T) {
	p := NewStriped(sizes(4, 33*512+17), 512, 4, 4)
	f := func(rv, rb uint16) bool {
		v := int(rv) % 4
		b := int(rb) % p.NumBlocks(v)
		a := p.Locate(v, b)
		if a.Node < 0 || a.Node >= 4 || a.Disk < 0 || a.Disk >= 4 {
			return false
		}
		if a.DiskGlobal != a.Node*4+a.Disk {
			return false
		}
		if a.Size <= 0 || a.Size > 512 {
			return false
		}
		// Round-trip: first stream byte of block b is in block b.
		return p.BlockOfByte(v, int64(b)*512) == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossNodeMirrorAlwaysOffNode(t *testing.T) {
	shapes := []struct{ nodes, disks int }{{2, 1}, {2, 2}, {3, 2}, {4, 4}, {5, 3}}
	for _, sh := range shapes {
		p := NewStriped(sizes(3, int64(sh.nodes*sh.disks)*8*512), 512, sh.nodes, sh.disks)
		p.MirrorWith(MirrorCrossNode)
		for v := 0; v < 3; v++ {
			for b := 0; b < p.NumBlocks(v); b++ {
				pri := p.LocateCopy(v, b, 0)
				rep := p.LocateCopy(v, b, 1)
				if rep.Node == pri.Node {
					t.Fatalf("%d nodes x %d disks: video %d block %d replica on primary's node %d",
						sh.nodes, sh.disks, v, b, pri.Node)
				}
			}
		}
	}
}

func TestCrossNodeMirrorInterleavesRows(t *testing.T) {
	// Interleaved declustering: sweeping the stripe rows of one primary
	// disk, the replica target must cycle through every other node, so a
	// dead disk's redirected read load spreads across all survivors
	// instead of doubling a single mirror disk.
	p := NewStriped(sizes(1, 4*4*8*512), 512, 4, 4)
	p.MirrorWith(MirrorCrossNode)
	targets := map[int]bool{}
	for row := 0; row < 8; row++ {
		b := row * 16 // row-th block on disk 0 (node 0, slot 0)
		if pri := p.Locate(0, b); pri.DiskGlobal != 0 {
			t.Fatalf("row %d: block %d not on disk 0 (got %d)", row, b, pri.DiskGlobal)
		}
		rep := p.LocateCopy(0, b, 1)
		if rep.Node == 0 {
			t.Fatalf("row %d replica on primary's node", row)
		}
		if rep.Disk != 0 {
			t.Fatalf("row %d replica left local slot 0 (disk %d)", row, rep.Disk)
		}
		targets[rep.Node] = true
	}
	if len(targets) != 3 {
		t.Fatalf("replica targets span %d nodes, want all 3 survivors: %v", len(targets), targets)
	}
}

func TestMirrorDiskBijection(t *testing.T) {
	shapes := []struct{ nodes, disks int }{{2, 2}, {3, 2}, {4, 4}, {5, 3}}
	for _, pol := range []MirrorPolicy{MirrorChainedDisk, MirrorCrossNode} {
		for _, sh := range shapes {
			p := NewStriped(sizes(1, 512), 512, sh.nodes, sh.disks)
			p.MirrorWith(pol)
			seen := make([]bool, p.TotalDisks())
			for d := 0; d < p.TotalDisks(); d++ {
				m := p.mirrorDisk(d)
				if m < 0 || m >= p.TotalDisks() || m == d {
					t.Fatalf("policy %d shape %dx%d: mirrorDisk(%d) = %d", pol, sh.nodes, sh.disks, d, m)
				}
				if seen[m] {
					t.Fatalf("policy %d shape %dx%d: two disks mirror onto %d", pol, sh.nodes, sh.disks, m)
				}
				seen[m] = true
				if p.mirrorSource(m) != d {
					t.Fatalf("policy %d shape %dx%d: mirrorSource(mirrorDisk(%d)) = %d",
						pol, sh.nodes, sh.disks, d, p.mirrorSource(m))
				}
			}
		}
	}
}

func TestCrossNodeReplicasDoNotOverlap(t *testing.T) {
	// Striped: all copies of all blocks of all videos must occupy
	// disjoint (disk, byte-range) spans under the cross-node policy.
	p := NewStriped(sizes(3, 40*512), 512, 3, 2)
	p.MirrorWith(MirrorCrossNode)
	type span struct{ lo, hi int64 }
	occupied := map[int][]span{}
	place := func(a Address, what string) {
		for _, s := range occupied[a.DiskGlobal] {
			if a.Offset < s.hi && a.Offset+a.Size > s.lo {
				t.Fatalf("%s overlaps on disk %d at offset %d", what, a.DiskGlobal, a.Offset)
			}
		}
		occupied[a.DiskGlobal] = append(occupied[a.DiskGlobal], span{a.Offset, a.Offset + a.Size})
	}
	for v := 0; v < 3; v++ {
		for b := 0; b < p.NumBlocks(v); b++ {
			place(p.LocateCopy(v, b, 0), "primary")
			place(p.LocateCopy(v, b, 1), "replica")
		}
	}
	if max := p.MaxDiskBytes(); max != 2*3*p.regionBytes {
		t.Fatalf("striped mirrored MaxDiskBytes = %d, want %d", max, 2*3*p.regionBytes)
	}

	// Non-striped: same invariant, and MaxDiskBytes must cover every span.
	np := NewNonStriped(sizes(12, 20*512), 512, 3, 2, rng.New(7))
	np.MirrorWith(MirrorCrossNode)
	occupied = map[int][]span{}
	var top int64
	for v := 0; v < 12; v++ {
		for b := 0; b < np.NumBlocks(v); b++ {
			pri, rep := np.LocateCopy(v, b, 0), np.LocateCopy(v, b, 1)
			place(pri, "primary")
			place(rep, "replica")
			if pri.Node == rep.Node {
				t.Fatalf("video %d block %d replica on primary's node", v, b)
			}
			if end := rep.Offset + rep.Size; end > top {
				top = end
			}
		}
	}
	if max := np.MaxDiskBytes(); max < top {
		t.Fatalf("non-striped MaxDiskBytes = %d < highest replica end %d", max, top)
	}
}

func TestMirrorWithFirstPolicyWins(t *testing.T) {
	p := NewStriped(sizes(1, 16*512), 512, 2, 2)
	p.MirrorWith(MirrorCrossNode)
	p.Mirror() // no-op: already mirrored
	if p.Policy() != MirrorCrossNode {
		t.Fatalf("policy = %d, want MirrorCrossNode", p.Policy())
	}
	if p.Replicas() != 2 {
		t.Fatalf("replicas = %d, want 2", p.Replicas())
	}
}

func TestMaxDiskBytes(t *testing.T) {
	p := NewStriped(sizes(4, 16*512), 512, 2, 2)
	// Each video: 16 blocks over 4 disks = 4 blocks = 2048 bytes region.
	if got := p.MaxDiskBytes(); got != 4*2048 {
		t.Fatalf("MaxDiskBytes = %d, want %d", got, 4*2048)
	}
	np := NewNonStriped(sizes(4, 1000), 512, 2, 2, rng.New(1))
	if got := np.MaxDiskBytes(); got != 1000 {
		t.Fatalf("non-striped MaxDiskBytes = %d, want 1000", got)
	}
}
