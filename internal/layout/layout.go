// Package layout implements SPIFFI's video placement (§5.2, Figure 3 of
// the paper): every video is declustered across all disks, alternating
// first between nodes and then between the disks at each node, with the
// per-disk portion of a video (its "fragment") laid out contiguously.
// A non-striped placement (whole video on one disk, §7.4) is provided as
// the paper's comparison baseline.
//
// Beyond the paper, a placement can mirror every block onto a second
// disk (Mirror/MirrorWith) so reads survive a dead disk or node. Two
// replica policies exist: chained declustering (MirrorChainedDisk, the
// classic next-disk-in-the-chain placement) and cross-node interleaved
// declustering (MirrorCrossNode), which sends each node's replicas to
// rotated *other* nodes — a whole-node crash then leaves every block
// reachable, and the dead node's read load spreads across all
// survivors instead of doubling one mirror into a hotspot. FAULTS.md
// covers how the server and terminals use the replicas (NACK fallback,
// session failover); LocateCopy is the lookup the retry and failover
// paths drive.
package layout

import (
	"fmt"

	"spiffi/internal/rng"
)

// Address locates one stripe block on the server.
type Address struct {
	Node       int   // node index
	Disk       int   // disk index within the node
	DiskGlobal int   // disk index across the whole server
	Offset     int64 // byte offset on the disk where the block starts
	Size       int64 // block length in bytes
}

// Placement maps (video, block) pairs to disk addresses. Blocks are
// stripe blocks for the striped layout and read-size chunks for the
// non-striped layout; in both cases block data is contiguous on its disk.
type Placement struct {
	striped      bool
	nodes        int
	disksPerNode int
	totalDisks   int
	blockSize    int64 // stripe size (striped) or read size (non-striped)

	videoSizes []int64
	numBlocks  []int // per video

	// Striped: every disk reserves regionBytes per video, so video v's
	// fragment on any disk starts at v*regionBytes.
	regionBytes int64

	// Non-striped: video -> disk, and byte offset of the video's start.
	videoDisk  []int
	videoStart []int64

	// Mirroring (Mirror): replicas is 1 (no redundancy) or 2. policy
	// selects which disk holds each block's replica (see MirrorPolicy).
	replicas int
	policy   MirrorPolicy

	// Non-striped mirroring: primary bytes stored per disk, so replicas
	// can be stacked above each disk's primary data.
	diskPrimary []int64
}

// NewStriped builds the paper's fully striped placement.
func NewStriped(videoSizes []int64, stripeSize int64, nodes, disksPerNode int) *Placement {
	p := newPlacement(videoSizes, stripeSize, nodes, disksPerNode)
	p.striped = true
	// Largest per-disk fragment across videos determines the per-video
	// region reserved on every disk.
	var maxBlocks int
	for _, nb := range p.numBlocks {
		if nb > maxBlocks {
			maxBlocks = nb
		}
	}
	fragBlocks := (maxBlocks + p.totalDisks - 1) / p.totalDisks
	p.regionBytes = int64(fragBlocks) * stripeSize
	return p
}

// NewNonStriped builds the §7.4 baseline: each video is stored
// contiguously on one disk, with videos dealt to disks in a random
// order so that every disk holds the same number of videos (the paper
// stores "each video on a single, randomly chosen disk and each disk
// held exactly 4 videos").
func NewNonStriped(videoSizes []int64, readSize int64, nodes, disksPerNode int, src *rng.Source) *Placement {
	p := newPlacement(videoSizes, readSize, nodes, disksPerNode)
	p.striped = false
	n := len(videoSizes)
	if n%p.totalDisks != 0 {
		panic(fmt.Sprintf("layout: %d videos do not divide evenly over %d disks", n, p.totalDisks))
	}
	// Random permutation of videos, dealt round-robin to disks.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	p.videoDisk = make([]int, n)
	p.videoStart = make([]int64, n)
	diskTop := make([]int64, p.totalDisks)
	for i, v := range perm {
		d := i % p.totalDisks
		p.videoDisk[v] = d
		p.videoStart[v] = diskTop[d]
		diskTop[d] += videoSizes[v]
	}
	return p
}

func newPlacement(videoSizes []int64, blockSize int64, nodes, disksPerNode int) *Placement {
	if blockSize <= 0 {
		panic("layout: non-positive block size")
	}
	if nodes <= 0 || disksPerNode <= 0 {
		panic("layout: need at least one node and one disk")
	}
	p := &Placement{
		nodes:        nodes,
		disksPerNode: disksPerNode,
		totalDisks:   nodes * disksPerNode,
		blockSize:    blockSize,
		videoSizes:   videoSizes,
		numBlocks:    make([]int, len(videoSizes)),
		replicas:     1,
	}
	for i, sz := range videoSizes {
		if sz <= 0 {
			panic("layout: non-positive video size")
		}
		p.numBlocks[i] = int((sz + blockSize - 1) / blockSize)
	}
	return p
}

// Striped reports whether this is the striped placement.
func (p *Placement) Striped() bool { return p.striped }

// Nodes returns the node count.
func (p *Placement) Nodes() int { return p.nodes }

// DisksPerNode returns the per-node disk count.
func (p *Placement) DisksPerNode() int { return p.disksPerNode }

// TotalDisks returns nodes*disksPerNode.
func (p *Placement) TotalDisks() int { return p.totalDisks }

// BlockSize returns the stripe size (striped) or read size (non-striped).
func (p *Placement) BlockSize() int64 { return p.blockSize }

// NumVideos returns the catalog size.
func (p *Placement) NumVideos() int { return len(p.videoSizes) }

// VideoSize returns the byte length of video v.
func (p *Placement) VideoSize(v int) int64 { return p.videoSizes[v] }

// NumBlocks returns the number of blocks of video v.
func (p *Placement) NumBlocks(v int) int { return p.numBlocks[v] }

// SizeOfBlock returns the byte length of block b of video v (the final
// block may be short).
func (p *Placement) SizeOfBlock(v, b int) int64 {
	if b == p.numBlocks[v]-1 {
		if rem := p.videoSizes[v] - int64(b)*p.blockSize; rem < p.blockSize {
			return rem
		}
	}
	return p.blockSize
}

// BlockOfByte returns the block containing stream offset off of video v.
func (p *Placement) BlockOfByte(v int, off int64) int {
	if off < 0 || off >= p.videoSizes[v] {
		panic("layout: byte offset out of range")
	}
	return int(off / p.blockSize)
}

// Locate maps (video, block) to a disk address. Figure 3 ordering:
// block b lives on node b%N, disk (b/N)%D within that node, at stripe
// index b/(N*D) within the video's contiguous fragment on that disk.
func (p *Placement) Locate(v, b int) Address {
	if b < 0 || b >= p.numBlocks[v] {
		panic(fmt.Sprintf("layout: block %d out of range for video %d (%d blocks)", b, v, p.numBlocks[v]))
	}
	size := p.SizeOfBlock(v, b)
	if !p.striped {
		d := p.videoDisk[v]
		return Address{
			Node:       d / p.disksPerNode,
			Disk:       d % p.disksPerNode,
			DiskGlobal: d,
			Offset:     p.videoStart[v] + int64(b)*p.blockSize,
			Size:       size,
		}
	}
	node := b % p.nodes
	disk := (b / p.nodes) % p.disksPerNode
	stripeIdx := b / p.totalDisks
	return Address{
		Node:       node,
		Disk:       disk,
		DiskGlobal: node*p.disksPerNode + disk,
		Offset:     int64(v)*p.regionBytes + int64(stripeIdx)*p.blockSize,
		Size:       size,
	}
}

// MirrorPolicy selects where a block's replica lives relative to its
// primary. Both policies are bijections on disks, so replica data
// stacks cleanly and exactly one source disk mirrors onto each target.
type MirrorPolicy int

const (
	// MirrorChainedDisk is classic chained declustering: the replica
	// lives on the next global disk ((diskGlobal+1) mod totalDisks).
	// With several disks per node most replicas stay on the primary's
	// own node, so a whole-node crash can take out both copies.
	MirrorChainedDisk MirrorPolicy = iota

	// MirrorCrossNode keeps the replica in the same local disk slot but
	// rotates it onto another node, guaranteeing every replica is
	// off-node. Striped placements interleave the rotation per stripe row
	// (interleaved declustering): consecutive rows of one primary disk
	// mirror onto different surviving nodes, so a dead disk's read load
	// spreads across every survivor at 1/(nodes-1) extra each instead of
	// doubling one mirror disk into a hotspot. Non-striped placements
	// keep a fixed disk-to-disk map (disk i of node n mirrors onto disk i
	// of node (n + 1 + i mod (nodes-1)) mod nodes) because whole-video
	// replica regions must stack contiguously. Needs at least two nodes.
	MirrorCrossNode
)

// Mirror adds a second, declustered copy of every video under the
// chained-disk policy (see MirrorWith). Striped replicas occupy a
// mirror region stacked above all primary regions; non-striped replicas
// are stacked above each disk's primary videos. Call before sizing
// disks: mirroring doubles MaxDiskBytes.
func (p *Placement) Mirror() { p.MirrorWith(MirrorChainedDisk) }

// MirrorWith adds a second copy of every video under the given replica
// placement policy. Calling it again is a no-op (the first policy wins).
func (p *Placement) MirrorWith(pol MirrorPolicy) {
	if p.totalDisks < 2 {
		panic("layout: mirroring needs at least two disks")
	}
	if pol == MirrorCrossNode && p.nodes < 2 {
		panic("layout: cross-node mirroring needs at least two nodes")
	}
	if p.replicas == 2 {
		return
	}
	p.replicas = 2
	p.policy = pol
	if !p.striped {
		p.diskPrimary = make([]int64, p.totalDisks)
		for v, sz := range p.videoSizes {
			p.diskPrimary[p.videoDisk[v]] += sz
		}
	}
}

// Policy returns the active mirror placement policy (meaningful only
// when Replicas() == 2).
func (p *Placement) Policy() MirrorPolicy { return p.policy }

// mirrorDisk maps a primary disk to the disk holding its replicas
// (non-striped placements; striped placements use mirrorDiskAt).
func (p *Placement) mirrorDisk(d int) int {
	if p.policy == MirrorCrossNode {
		n, i := d/p.disksPerNode, d%p.disksPerNode
		shift := 1 + i%(p.nodes-1)
		return ((n+shift)%p.nodes)*p.disksPerNode + i
	}
	return (d + 1) % p.totalDisks
}

// mirrorDiskAt maps a primary disk to the disk holding its replica of
// stripe row `stripeIdx`. Under MirrorCrossNode the target node is
// interleaved per row: the replica stays in the primary's local disk
// slot i but the node shift cycles through 1..nodes-1 as rows advance,
// so the rows of one dead disk redirect to every surviving node in turn.
// Within one row the shift is constant per slot (it depends only on
// i+stripeIdx), so row targets are a permutation of the disks — each
// disk receives exactly one replica per row, which keeps the mirror
// region's (video, row) offset slot collision-free.
func (p *Placement) mirrorDiskAt(d, stripeIdx int) int {
	if p.policy == MirrorCrossNode {
		n, i := d/p.disksPerNode, d%p.disksPerNode
		shift := 1 + (i+stripeIdx)%(p.nodes-1)
		return ((n+shift)%p.nodes)*p.disksPerNode + i
	}
	return (d + 1) % p.totalDisks
}

// mirrorSource inverts mirrorDisk: the disk whose replicas live on d.
func (p *Placement) mirrorSource(d int) int {
	if p.policy == MirrorCrossNode {
		n, i := d/p.disksPerNode, d%p.disksPerNode
		shift := 1 + i%(p.nodes-1)
		return ((n-shift+p.nodes)%p.nodes)*p.disksPerNode + i
	}
	return (d - 1 + p.totalDisks) % p.totalDisks
}

// Replicas returns the number of stored copies of every block (1 or 2).
func (p *Placement) Replicas() int { return p.replicas }

// LocateCopy maps (video, block, copy) to a disk address. Copy 0 is the
// primary placement (identical to Locate); copy 1 is the mirrored replica
// and requires Mirror to have been called.
func (p *Placement) LocateCopy(v, b, copy int) Address {
	switch copy {
	case 0:
		return p.Locate(v, b)
	case 1:
		if p.replicas < 2 {
			panic("layout: replica requested from unmirrored placement")
		}
	default:
		panic(fmt.Sprintf("layout: copy %d out of range", copy))
	}
	primary := p.Locate(v, b)
	var d int
	if p.striped {
		d = p.mirrorDiskAt(primary.DiskGlobal, b/p.totalDisks)
	} else {
		d = p.mirrorDisk(primary.DiskGlobal)
	}
	addr := Address{
		Node:       d / p.disksPerNode,
		Disk:       d % p.disksPerNode,
		DiskGlobal: d,
		Size:       primary.Size,
	}
	if p.striped {
		// The mirror region mirrors the primary region layout, relocated
		// by the policy's per-row disk map and stacked above all primary
		// regions. The offset depends only on (video, stripe index):
		// same-row blocks sit on distinct primary disks, and mirrorDiskAt
		// permutes each row's disks, so their replicas land on distinct
		// disks too — every disk uses each (video, row) slot at most once.
		stripeIdx := b / p.totalDisks
		addr.Offset = int64(len(p.videoSizes))*p.regionBytes +
			int64(v)*p.regionBytes + int64(stripeIdx)*p.blockSize
	} else {
		// Exactly one source disk's videos mirror onto disk d; their
		// replicas stack above d's primaries in the same disjoint byte
		// ranges they occupy at home, so the primary's start offset is
		// reused.
		addr.Offset = p.diskPrimary[d] + p.videoStart[v] + int64(b)*p.blockSize
	}
	return addr
}

// NextBlockOnSameDisk returns the next block of video v that lives on the
// same disk as block b, for sequential prefetching. ok is false when no
// such block exists (end of the video's data on that disk).
func (p *Placement) NextBlockOnSameDisk(v, b int) (next int, ok bool) {
	step := 1
	if p.striped {
		step = p.totalDisks
	}
	next = b + step
	if next >= p.numBlocks[v] {
		return 0, false
	}
	return next, true
}

// MaxDiskBytes returns the highest end-of-data offset across disks, used
// to size the simulated disks' cylinder range. Mirroring doubles it.
func (p *Placement) MaxDiskBytes() int64 {
	if p.striped {
		return int64(p.replicas) * int64(len(p.videoSizes)) * p.regionBytes
	}
	top := make([]int64, p.totalDisks)
	for v, sz := range p.videoSizes {
		top[p.videoDisk[v]] += sz
	}
	var max int64
	for d, t := range top {
		if p.replicas == 2 {
			t += top[p.mirrorSource(d)]
		}
		if t > max {
			max = t
		}
	}
	return max
}
