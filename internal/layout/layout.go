// Package layout implements SPIFFI's video placement (§5.2, Figure 3 of
// the paper): every video is declustered across all disks, alternating
// first between nodes and then between the disks at each node, with the
// per-disk portion of a video (its "fragment") laid out contiguously.
// A non-striped placement (whole video on one disk, §7.4) is provided as
// the paper's comparison baseline.
package layout

import (
	"fmt"

	"spiffi/internal/rng"
)

// Address locates one stripe block on the server.
type Address struct {
	Node       int   // node index
	Disk       int   // disk index within the node
	DiskGlobal int   // disk index across the whole server
	Offset     int64 // byte offset on the disk where the block starts
	Size       int64 // block length in bytes
}

// Placement maps (video, block) pairs to disk addresses. Blocks are
// stripe blocks for the striped layout and read-size chunks for the
// non-striped layout; in both cases block data is contiguous on its disk.
type Placement struct {
	striped      bool
	nodes        int
	disksPerNode int
	totalDisks   int
	blockSize    int64 // stripe size (striped) or read size (non-striped)

	videoSizes []int64
	numBlocks  []int // per video

	// Striped: every disk reserves regionBytes per video, so video v's
	// fragment on any disk starts at v*regionBytes.
	regionBytes int64

	// Non-striped: video -> disk, and byte offset of the video's start.
	videoDisk  []int
	videoStart []int64

	// Mirroring (Mirror): replicas is 1 (no redundancy) or 2. The replica
	// of a block lives on the next disk (declustered chained mirroring),
	// so one dead disk leaves every block readable somewhere else.
	replicas int

	// Non-striped mirroring: primary bytes stored per disk, so replicas
	// can be stacked above each disk's primary data.
	diskPrimary []int64
}

// NewStriped builds the paper's fully striped placement.
func NewStriped(videoSizes []int64, stripeSize int64, nodes, disksPerNode int) *Placement {
	p := newPlacement(videoSizes, stripeSize, nodes, disksPerNode)
	p.striped = true
	// Largest per-disk fragment across videos determines the per-video
	// region reserved on every disk.
	var maxBlocks int
	for _, nb := range p.numBlocks {
		if nb > maxBlocks {
			maxBlocks = nb
		}
	}
	fragBlocks := (maxBlocks + p.totalDisks - 1) / p.totalDisks
	p.regionBytes = int64(fragBlocks) * stripeSize
	return p
}

// NewNonStriped builds the §7.4 baseline: each video is stored
// contiguously on one disk, with videos dealt to disks in a random
// order so that every disk holds the same number of videos (the paper
// stores "each video on a single, randomly chosen disk and each disk
// held exactly 4 videos").
func NewNonStriped(videoSizes []int64, readSize int64, nodes, disksPerNode int, src *rng.Source) *Placement {
	p := newPlacement(videoSizes, readSize, nodes, disksPerNode)
	p.striped = false
	n := len(videoSizes)
	if n%p.totalDisks != 0 {
		panic(fmt.Sprintf("layout: %d videos do not divide evenly over %d disks", n, p.totalDisks))
	}
	// Random permutation of videos, dealt round-robin to disks.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	p.videoDisk = make([]int, n)
	p.videoStart = make([]int64, n)
	diskTop := make([]int64, p.totalDisks)
	for i, v := range perm {
		d := i % p.totalDisks
		p.videoDisk[v] = d
		p.videoStart[v] = diskTop[d]
		diskTop[d] += videoSizes[v]
	}
	return p
}

func newPlacement(videoSizes []int64, blockSize int64, nodes, disksPerNode int) *Placement {
	if blockSize <= 0 {
		panic("layout: non-positive block size")
	}
	if nodes <= 0 || disksPerNode <= 0 {
		panic("layout: need at least one node and one disk")
	}
	p := &Placement{
		nodes:        nodes,
		disksPerNode: disksPerNode,
		totalDisks:   nodes * disksPerNode,
		blockSize:    blockSize,
		videoSizes:   videoSizes,
		numBlocks:    make([]int, len(videoSizes)),
		replicas:     1,
	}
	for i, sz := range videoSizes {
		if sz <= 0 {
			panic("layout: non-positive video size")
		}
		p.numBlocks[i] = int((sz + blockSize - 1) / blockSize)
	}
	return p
}

// Striped reports whether this is the striped placement.
func (p *Placement) Striped() bool { return p.striped }

// Nodes returns the node count.
func (p *Placement) Nodes() int { return p.nodes }

// DisksPerNode returns the per-node disk count.
func (p *Placement) DisksPerNode() int { return p.disksPerNode }

// TotalDisks returns nodes*disksPerNode.
func (p *Placement) TotalDisks() int { return p.totalDisks }

// BlockSize returns the stripe size (striped) or read size (non-striped).
func (p *Placement) BlockSize() int64 { return p.blockSize }

// NumVideos returns the catalog size.
func (p *Placement) NumVideos() int { return len(p.videoSizes) }

// VideoSize returns the byte length of video v.
func (p *Placement) VideoSize(v int) int64 { return p.videoSizes[v] }

// NumBlocks returns the number of blocks of video v.
func (p *Placement) NumBlocks(v int) int { return p.numBlocks[v] }

// SizeOfBlock returns the byte length of block b of video v (the final
// block may be short).
func (p *Placement) SizeOfBlock(v, b int) int64 {
	if b == p.numBlocks[v]-1 {
		if rem := p.videoSizes[v] - int64(b)*p.blockSize; rem < p.blockSize {
			return rem
		}
	}
	return p.blockSize
}

// BlockOfByte returns the block containing stream offset off of video v.
func (p *Placement) BlockOfByte(v int, off int64) int {
	if off < 0 || off >= p.videoSizes[v] {
		panic("layout: byte offset out of range")
	}
	return int(off / p.blockSize)
}

// Locate maps (video, block) to a disk address. Figure 3 ordering:
// block b lives on node b%N, disk (b/N)%D within that node, at stripe
// index b/(N*D) within the video's contiguous fragment on that disk.
func (p *Placement) Locate(v, b int) Address {
	if b < 0 || b >= p.numBlocks[v] {
		panic(fmt.Sprintf("layout: block %d out of range for video %d (%d blocks)", b, v, p.numBlocks[v]))
	}
	size := p.SizeOfBlock(v, b)
	if !p.striped {
		d := p.videoDisk[v]
		return Address{
			Node:       d / p.disksPerNode,
			Disk:       d % p.disksPerNode,
			DiskGlobal: d,
			Offset:     p.videoStart[v] + int64(b)*p.blockSize,
			Size:       size,
		}
	}
	node := b % p.nodes
	disk := (b / p.nodes) % p.disksPerNode
	stripeIdx := b / p.totalDisks
	return Address{
		Node:       node,
		Disk:       disk,
		DiskGlobal: node*p.disksPerNode + disk,
		Offset:     int64(v)*p.regionBytes + int64(stripeIdx)*p.blockSize,
		Size:       size,
	}
}

// Mirror adds a second, declustered copy of every video: block (v, b)'s
// replica lives on the disk after its primary ((diskGlobal+1) mod
// totalDisks), so the read load of a dead disk spreads over its
// neighbor rather than concentrating on a single mirror drive. Striped
// replicas occupy a mirror region stacked above all primary regions;
// non-striped replicas are stacked above each disk's primary videos.
// Call before sizing disks: mirroring doubles MaxDiskBytes.
func (p *Placement) Mirror() {
	if p.totalDisks < 2 {
		panic("layout: mirroring needs at least two disks")
	}
	if p.replicas == 2 {
		return
	}
	p.replicas = 2
	if !p.striped {
		p.diskPrimary = make([]int64, p.totalDisks)
		for v, sz := range p.videoSizes {
			p.diskPrimary[p.videoDisk[v]] += sz
		}
	}
}

// Replicas returns the number of stored copies of every block (1 or 2).
func (p *Placement) Replicas() int { return p.replicas }

// LocateCopy maps (video, block, copy) to a disk address. Copy 0 is the
// primary placement (identical to Locate); copy 1 is the mirrored replica
// and requires Mirror to have been called.
func (p *Placement) LocateCopy(v, b, copy int) Address {
	switch copy {
	case 0:
		return p.Locate(v, b)
	case 1:
		if p.replicas < 2 {
			panic("layout: replica requested from unmirrored placement")
		}
	default:
		panic(fmt.Sprintf("layout: copy %d out of range", copy))
	}
	primary := p.Locate(v, b)
	d := (primary.DiskGlobal + 1) % p.totalDisks
	addr := Address{
		Node:       d / p.disksPerNode,
		Disk:       d % p.disksPerNode,
		DiskGlobal: d,
		Size:       primary.Size,
	}
	if p.striped {
		// The mirror region mirrors the primary region layout, shifted
		// one disk over and stacked above all primary regions.
		stripeIdx := b / p.totalDisks
		addr.Offset = int64(len(p.videoSizes))*p.regionBytes +
			int64(v)*p.regionBytes + int64(stripeIdx)*p.blockSize
	} else {
		// Replicas of disk d-1's videos stack above disk d's primaries in
		// the same order, so the primary's start offset is reused.
		addr.Offset = p.diskPrimary[d] + p.videoStart[v] + int64(b)*p.blockSize
	}
	return addr
}

// NextBlockOnSameDisk returns the next block of video v that lives on the
// same disk as block b, for sequential prefetching. ok is false when no
// such block exists (end of the video's data on that disk).
func (p *Placement) NextBlockOnSameDisk(v, b int) (next int, ok bool) {
	step := 1
	if p.striped {
		step = p.totalDisks
	}
	next = b + step
	if next >= p.numBlocks[v] {
		return 0, false
	}
	return next, true
}

// MaxDiskBytes returns the highest end-of-data offset across disks, used
// to size the simulated disks' cylinder range. Mirroring doubles it.
func (p *Placement) MaxDiskBytes() int64 {
	if p.striped {
		return int64(p.replicas) * int64(len(p.videoSizes)) * p.regionBytes
	}
	top := make([]int64, p.totalDisks)
	for v, sz := range p.videoSizes {
		top[p.videoDisk[v]] += sz
	}
	var max int64
	for d, t := range top {
		if p.replicas == 2 {
			t += top[(d-1+p.totalDisks)%p.totalDisks]
		}
		if t > max {
			max = t
		}
	}
	return max
}
