// Package admission implements the analytical capacity bounds that §4 of
// the SPIFFI paper contrasts its simulation methodology against, plus a
// runtime admission controller.
//
// The paper argues that systems designed from worst-case analytical
// studies ("maximum disk seeks and latencies") are provably glitch-free
// but badly under-utilize the hardware, while simulation finds the true
// sustainable load. WorstCaseTerminals computes exactly that pessimistic
// bound; ExpectedCaseTerminals the analogous mean-value bound; the
// experiment "admission" compares both against the simulated maximum.
package admission

import (
	"spiffi/internal/disk"
	"spiffi/internal/sim"
	"spiffi/internal/trace"
)

// Analysis captures the parameters an analytical designer would use.
type Analysis struct {
	Disk        disk.Params
	Cylinders   int   // seek span used for worst/average seek distance
	StripeBytes int64 // per-access transfer size
	BitRate     int64 // stream rate, bits/second
	TotalDisks  int
}

// StreamPeriod returns how long one stripe block sustains a stream.
func (a Analysis) StreamPeriod() sim.Duration {
	return sim.DurationOfSeconds(float64(a.StripeBytes) * 8 / float64(a.BitRate))
}

// WorstCaseAccess returns the worst-case single-access service time:
// a full-span seek, a full rotation, and the transfer.
func (a Analysis) WorstCaseAccess() sim.Duration {
	return a.Disk.SeekTime(a.Cylinders) + a.Disk.RotationTime + a.Disk.TransferTime(a.StripeBytes)
}

// ExpectedAccess returns the mean-value access time: the classical
// one-third-span average seek and half a rotation.
func (a Analysis) ExpectedAccess() sim.Duration {
	return a.Disk.SeekTime(a.Cylinders/3) + a.Disk.RotationTime/2 + a.Disk.TransferTime(a.StripeBytes)
}

// terminalsAt returns how many streams one disk sustains if every access
// costs `access`, scaled to the whole server.
func (a Analysis) terminalsAt(access sim.Duration) int {
	if access <= 0 {
		return 0
	}
	perDisk := int(float64(a.StreamPeriod()) / float64(access))
	return perDisk * a.TotalDisks
}

// WorstCaseTerminals is the §4 "provably glitch-free" capacity: admit
// only as many streams as survive if every access pays worst-case
// positioning.
func (a Analysis) WorstCaseTerminals() int { return a.terminalsAt(a.WorstCaseAccess()) }

// ExpectedCaseTerminals is the mean-value analytical capacity — still
// ignoring scheduling gains (elevator batching) and buffer-pool sharing.
func (a Analysis) ExpectedCaseTerminals() int { return a.terminalsAt(a.ExpectedAccess()) }

// waiter is one stream blocked in the admission queue. admitted and
// rejected resolve the race between a slot handoff and the patience
// timer: whichever fires first marks the waiter, the other is a no-op.
type waiter struct {
	p        *sim.Proc
	terminal int
	enq      sim.Time
	admitted bool
	rejected bool
}

// Controller is a runtime admission controller: it caps concurrently
// active streams at a limit ("the risk of glitches can be made
// arbitrarily low by limiting the maximum number of terminals", §4).
// Terminals block in Admit until a slot frees or their patience
// expires, in which case they are rejected (NACKed) and Admit returns
// false. The limit can be moved at runtime (SetLimit) by the overload
// controller's capacity estimator.
type Controller struct {
	k        *sim.Kernel
	limit    int
	active   int
	waiters  []*waiter
	prio     []*waiter    // failover re-admissions, always popped first
	patience sim.Duration // 0 = wait forever
	rec      *trace.Recorder

	// Admitted, Waited and Rejected count outcomes; Waited counts
	// Admit calls that had to queue (a proxy for user-visible start
	// latency), WaitSum their total queueing time. The Failover pair
	// breaks out the priority-path (AdmitFailover) outcomes, which are
	// also included in the totals.
	Admitted         int64
	Waited           int64
	Rejected         int64
	WaitSum          sim.Duration
	FailoverAdmitted int64
	FailoverRejected int64
}

// NewController creates a controller admitting at most `limit` streams.
func NewController(k *sim.Kernel, limit int) *Controller {
	if limit < 1 {
		panic("admission: non-positive limit")
	}
	return &Controller{k: k, limit: limit}
}

// SetTrace attaches a trace recorder (nil is fine: emits become no-ops).
func (c *Controller) SetTrace(rec *trace.Recorder) { c.rec = rec }

// SetPatience bounds how long Admit waits before rejecting (0 = wait
// forever).
func (c *Controller) SetPatience(d sim.Duration) {
	if d < 0 {
		d = 0
	}
	c.patience = d
}

// Admit claims a stream slot, blocking while the controller is at its
// limit. It returns true once a slot is held, false if the stream's
// patience expired in the queue (the NACK-on-reject path — the caller
// backs off and may retry). terminal identifies the stream in traces.
func (c *Controller) Admit(p *sim.Proc, terminal int) bool {
	return c.admit(p, terminal, false)
}

// AdmitFailover claims a stream slot for a session migrating off a
// crashed node. It behaves like Admit — same patience, same NACK path —
// but queues ahead of every normal arrival: survivors' spare capacity
// goes to keeping running sessions alive before starting new ones.
func (c *Controller) AdmitFailover(p *sim.Proc, terminal int) bool {
	return c.admit(p, terminal, true)
}

func (c *Controller) admit(p *sim.Proc, terminal int, failover bool) bool {
	if c.active < c.limit {
		c.active++
		c.Admitted++
		if failover {
			c.FailoverAdmitted++
		}
		c.rec.AdmAdmit(terminal, c.active, c.limit)
		return true
	}
	c.Waited++
	c.rec.AdmWait(terminal, c.active, c.limit)
	w := &waiter{p: p, terminal: terminal, enq: c.k.Now()}
	if failover {
		c.prio = append(c.prio, w)
	} else {
		c.waiters = append(c.waiters, w)
	}
	if c.patience > 0 {
		c.k.After(c.patience, func() { c.expire(w) })
	}
	p.Block()
	wait := c.k.Now().Sub(w.enq)
	c.WaitSum += wait
	if w.rejected {
		c.Rejected++
		if failover {
			c.FailoverRejected++
		}
		c.rec.AdmReject(terminal, c.active, c.limit, wait)
		return false
	}
	// The releaser (or a limit raise) transferred a slot to us.
	c.Admitted++
	if failover {
		c.FailoverAdmitted++
	}
	c.rec.AdmAdmit(terminal, c.active, c.limit)
	return true
}

// popWaiter dequeues the next stream to hand a slot to: the oldest
// failover re-admission if any, else the oldest normal waiter.
func (c *Controller) popWaiter() *waiter {
	q := &c.prio
	if len(*q) == 0 {
		q = &c.waiters
	}
	if len(*q) == 0 {
		return nil
	}
	w := (*q)[0]
	copy(*q, (*q)[1:])
	*q = (*q)[:len(*q)-1]
	return w
}

// expire rejects a waiter whose patience ran out, unless a slot
// handoff already resolved it.
func (c *Controller) expire(w *waiter) {
	if w.admitted || w.rejected {
		return
	}
	for _, q := range []*[]*waiter{&c.prio, &c.waiters} {
		for i, e := range *q {
			if e == w {
				*q = append((*q)[:i], (*q)[i+1:]...)
				break
			}
		}
	}
	w.rejected = true
	c.k.Wake(w.p)
}

// Release returns a stream slot. While the admitted population is
// within the limit the slot is handed to the oldest waiter; after an
// adaptive limit cut (SetLimit) left active above the limit, the slot
// is retired instead — waiters stay queued until the population has
// actually drained down to the new limit, otherwise a lowered limit
// would never be enforced while the queue is non-empty. Failover
// re-admissions bypass that drain rule: a migrant held this very slot a
// moment ago, so handing it back never grows the population the cut is
// draining, and keeping running sessions alive outranks enforcing the
// cut one release sooner. terminal identifies the departing stream in
// trace events.
func (c *Controller) Release(terminal int) {
	if len(c.prio) > 0 || c.active <= c.limit {
		if w := c.popWaiter(); w != nil {
			w.admitted = true
			c.rec.AdmRelease(terminal, c.active, c.limit)
			c.k.Wake(w.p)
			return
		}
	}
	c.active--
	c.rec.AdmRelease(terminal, c.active, c.limit)
}

// SetLimit moves the admission limit at runtime. Raising it admits
// queued waiters into the new headroom; lowering it never evicts
// admitted streams — the population drains down through Release.
func (c *Controller) SetLimit(n int) {
	if n < 1 {
		n = 1
	}
	c.limit = n
	for c.active < c.limit {
		w := c.popWaiter()
		if w == nil {
			break
		}
		w.admitted = true
		c.active++
		c.k.Wake(w.p)
	}
}

// Limit reports the current admission limit.
func (c *Controller) Limit() int { return c.limit }

// Active reports the number of admitted streams.
func (c *Controller) Active() int { return c.active }

// Waiting reports the number of queued streams (both queues).
func (c *Controller) Waiting() int { return len(c.waiters) + len(c.prio) }
