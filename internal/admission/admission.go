// Package admission implements the analytical capacity bounds that §4 of
// the SPIFFI paper contrasts its simulation methodology against, plus a
// runtime admission controller.
//
// The paper argues that systems designed from worst-case analytical
// studies ("maximum disk seeks and latencies") are provably glitch-free
// but badly under-utilize the hardware, while simulation finds the true
// sustainable load. WorstCaseTerminals computes exactly that pessimistic
// bound; ExpectedCaseTerminals the analogous mean-value bound; the
// experiment "admission" compares both against the simulated maximum.
package admission

import (
	"spiffi/internal/disk"
	"spiffi/internal/sim"
	"spiffi/internal/trace"
)

// Analysis captures the parameters an analytical designer would use.
type Analysis struct {
	Disk        disk.Params
	Cylinders   int   // seek span used for worst/average seek distance
	StripeBytes int64 // per-access transfer size
	BitRate     int64 // stream rate, bits/second
	TotalDisks  int
}

// StreamPeriod returns how long one stripe block sustains a stream.
func (a Analysis) StreamPeriod() sim.Duration {
	return sim.DurationOfSeconds(float64(a.StripeBytes) * 8 / float64(a.BitRate))
}

// WorstCaseAccess returns the worst-case single-access service time:
// a full-span seek, a full rotation, and the transfer.
func (a Analysis) WorstCaseAccess() sim.Duration {
	return a.Disk.SeekTime(a.Cylinders) + a.Disk.RotationTime + a.Disk.TransferTime(a.StripeBytes)
}

// ExpectedAccess returns the mean-value access time: the classical
// one-third-span average seek and half a rotation.
func (a Analysis) ExpectedAccess() sim.Duration {
	return a.Disk.SeekTime(a.Cylinders/3) + a.Disk.RotationTime/2 + a.Disk.TransferTime(a.StripeBytes)
}

// terminalsAt returns how many streams one disk sustains if every access
// costs `access`, scaled to the whole server.
func (a Analysis) terminalsAt(access sim.Duration) int {
	if access <= 0 {
		return 0
	}
	perDisk := int(float64(a.StreamPeriod()) / float64(access))
	return perDisk * a.TotalDisks
}

// WorstCaseTerminals is the §4 "provably glitch-free" capacity: admit
// only as many streams as survive if every access pays worst-case
// positioning.
func (a Analysis) WorstCaseTerminals() int { return a.terminalsAt(a.WorstCaseAccess()) }

// ExpectedCaseTerminals is the mean-value analytical capacity — still
// ignoring scheduling gains (elevator batching) and buffer-pool sharing.
func (a Analysis) ExpectedCaseTerminals() int { return a.terminalsAt(a.ExpectedAccess()) }

// Controller is a runtime admission controller: it caps concurrently
// active streams at a fixed limit ("the risk of glitches can be made
// arbitrarily low by limiting the maximum number of terminals", §4).
// Terminals block in Admit until a slot frees.
type Controller struct {
	k       *sim.Kernel
	limit   int
	active  int
	waiters []*sim.Proc
	rec     *trace.Recorder // nil unless tracing is enabled

	// Admitted and Rejected count outcomes; Rejected counts Admit calls
	// that had to wait (a proxy for user-visible start latency).
	Admitted int64
	Waited   int64
}

// NewController creates a controller admitting at most `limit` streams.
func NewController(k *sim.Kernel, limit int) *Controller {
	if limit < 1 {
		panic("admission: non-positive limit")
	}
	return &Controller{k: k, limit: limit}
}

// SetTrace attaches a trace recorder (nil is fine: emits become no-ops).
func (c *Controller) SetTrace(rec *trace.Recorder) { c.rec = rec }

// Admit blocks until a stream slot is free, then claims it. terminal
// identifies the admitted stream in trace events.
func (c *Controller) Admit(p *sim.Proc, terminal int) {
	if c.active >= c.limit {
		c.Waited++
		c.rec.AdmWait(terminal, c.active, c.limit)
		c.waiters = append(c.waiters, p)
		p.Block()
		// The releaser transferred its slot to us.
	} else {
		c.active++
	}
	c.Admitted++
	c.rec.AdmAdmit(terminal, c.active, c.limit)
}

// Release returns a stream slot, waking the oldest waiter. terminal
// identifies the departing stream in trace events.
func (c *Controller) Release(terminal int) {
	if len(c.waiters) > 0 {
		w := c.waiters[0]
		copy(c.waiters, c.waiters[1:])
		c.waiters = c.waiters[:len(c.waiters)-1]
		c.rec.AdmRelease(terminal, c.active, c.limit)
		c.k.Wake(w)
		return
	}
	c.active--
	c.rec.AdmRelease(terminal, c.active, c.limit)
}

// Active reports the number of admitted streams.
func (c *Controller) Active() int { return c.active }
