package admission

import (
	"testing"

	"spiffi/internal/disk"
	"spiffi/internal/sim"
	"spiffi/internal/trace"
)

func paperAnalysis() Analysis {
	return Analysis{
		Disk:        disk.DefaultParams(),
		Cylinders:   4000,
		StripeBytes: 512 * 1024,
		BitRate:     4_000_000,
		TotalDisks:  16,
	}
}

func TestStreamPeriod(t *testing.T) {
	a := paperAnalysis()
	// 512 KB at 4 Mbit/s ~ 1.049 s.
	s := a.StreamPeriod().Seconds()
	if s < 1.04 || s > 1.06 {
		t.Fatalf("stream period = %v", s)
	}
}

func TestWorstCaseBelowExpectedBelowSimulated(t *testing.T) {
	a := paperAnalysis()
	worst := a.WorstCaseTerminals()
	expected := a.ExpectedCaseTerminals()
	if worst <= 0 || expected <= 0 {
		t.Fatalf("degenerate bounds: %d %d", worst, expected)
	}
	if worst >= expected {
		t.Fatalf("worst-case bound %d not below expected-case %d", worst, expected)
	}
	// The simulated system (paper and this repo) supports ~200+ terminals
	// on this hardware; the worst-case analytical design must be clearly
	// pessimistic — that is §4's whole argument.
	if worst >= 200 {
		t.Fatalf("worst-case bound %d not pessimistic", worst)
	}
	// And the expected-case bound lands in a plausible band.
	if expected < 100 || expected > 300 {
		t.Fatalf("expected-case bound %d outside plausible band", expected)
	}
}

func TestWorstCaseAccessComposition(t *testing.T) {
	a := paperAnalysis()
	want := a.Disk.SeekTime(4000) + a.Disk.RotationTime + a.Disk.TransferTime(512*1024)
	if got := a.WorstCaseAccess(); got != want {
		t.Fatalf("worst access = %v, want %v", got, want)
	}
	if a.ExpectedAccess() >= a.WorstCaseAccess() {
		t.Fatal("expected access must undercut worst case")
	}
}

func TestControllerCapsConcurrency(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	c := NewController(k, 2)
	peak := 0
	for i := 0; i < 5; i++ {
		i := i
		k.Spawn("stream", func(p *sim.Proc) {
			c.Admit(p, i)
			if c.Active() > peak {
				peak = c.Active()
			}
			p.Sleep(10 * sim.Millisecond)
			c.Release(i)
		})
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if peak > 2 {
		t.Fatalf("admission exceeded limit: peak %d", peak)
	}
	if c.Admitted != 5 {
		t.Fatalf("admitted = %d", c.Admitted)
	}
	if c.Waited != 3 {
		t.Fatalf("waited = %d, want 3", c.Waited)
	}
	if c.Active() != 0 {
		t.Fatalf("slots leaked: %d", c.Active())
	}
}

func TestControllerFIFOHandoff(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	c := NewController(k, 1)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		k.SpawnAt(sim.Time(i), "s", func(p *sim.Proc) {
			c.Admit(p, i)
			order = append(order, i)
			p.Sleep(10 * sim.Millisecond)
			c.Release(i)
		})
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("admission order = %v, want FIFO", order)
		}
	}
}

// A queued stream whose patience expires is rejected: Admit returns
// false after exactly the patience wait, the queue is cleaned up, and
// no slot is consumed.
func TestControllerPatienceReject(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	c := NewController(k, 1)
	c.SetPatience(100 * sim.Millisecond)
	var first, second bool
	var wait sim.Duration
	k.Spawn("holder", func(p *sim.Proc) {
		first = c.Admit(p, 0)
		p.Sleep(sim.Second) // outlives the waiter's patience
		c.Release(0)
	})
	k.SpawnAt(sim.Time(sim.Millisecond), "waiter", func(p *sim.Proc) {
		enq := k.Now()
		second = c.Admit(p, 1)
		wait = k.Now().Sub(enq)
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !first || second {
		t.Fatalf("admit outcomes: holder=%v waiter=%v, want true/false", first, second)
	}
	if wait != 100*sim.Millisecond {
		t.Fatalf("rejected after %v, want the 100ms patience", wait)
	}
	if c.Admitted != 1 || c.Waited != 1 || c.Rejected != 1 {
		t.Fatalf("counters admitted/waited/rejected = %d/%d/%d, want 1/1/1",
			c.Admitted, c.Waited, c.Rejected)
	}
	if c.Waiting() != 0 {
		t.Fatalf("rejected waiter left in queue: %d", c.Waiting())
	}
	if c.Active() != 0 {
		t.Fatalf("slots leaked: %d", c.Active())
	}
}

// Raising the limit at runtime admits queued waiters into the new
// headroom; lowering it never evicts admitted streams.
func TestControllerSetLimit(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	c := NewController(k, 1)
	admitted := 0
	for i := 0; i < 3; i++ {
		i := i
		k.SpawnAt(sim.Time(i), "s", func(p *sim.Proc) {
			if c.Admit(p, i) {
				admitted++
			}
		})
	}
	k.At(sim.Time(10), func() { c.SetLimit(3) })
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if admitted != 3 {
		t.Fatalf("admitted = %d, want all 3 after the raise", admitted)
	}
	if c.Active() != 3 || c.Waiting() != 0 {
		t.Fatalf("active=%d waiting=%d, want 3/0", c.Active(), c.Waiting())
	}
	c.SetLimit(1)
	if c.Active() != 3 {
		t.Fatalf("lowering the limit evicted streams: active=%d", c.Active())
	}
	if c.Limit() != 1 {
		t.Fatalf("limit = %d, want 1", c.Limit())
	}
}

// After an adaptive limit cut with waiters queued, Release must retire
// slots until the population reaches the new limit — not hand them to
// waiters, which would hold concurrency above the limit forever under
// sustained overload (waiters are nearly always present there).
func TestControllerReleaseDrainsToLoweredLimit(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	c := NewController(k, 4)
	admitActive := make(map[int]int) // waiter terminal -> Active() at its admit
	for i := 0; i < 4; i++ {
		i := i
		k.Spawn("holder", func(p *sim.Proc) {
			c.Admit(p, i)
			p.Sleep(sim.Duration(i+1) * 10 * sim.Millisecond)
			c.Release(i)
		})
	}
	for i := 4; i < 6; i++ {
		i := i
		k.SpawnAt(sim.Time(sim.Millisecond), "waiter", func(p *sim.Proc) {
			if !c.Admit(p, i) {
				t.Errorf("waiter %d rejected without patience configured", i)
				return
			}
			admitActive[i] = c.Active()
			p.Sleep(100 * sim.Millisecond)
			c.Release(i)
		})
	}
	k.At(sim.Time(5*sim.Millisecond), func() { c.SetLimit(2) })
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	// Releases at 10 and 20 ms drain active 4 -> 3 -> 2; only the
	// releases at 30 and 40 ms hand their slots to the two waiters.
	if len(admitActive) != 2 {
		t.Fatalf("admitted %d waiters, want 2", len(admitActive))
	}
	for id, active := range admitActive {
		if active > 2 {
			t.Fatalf("waiter %d admitted at active=%d, above the lowered limit 2", id, active)
		}
	}
	if c.Active() != 0 {
		t.Fatalf("slots leaked: %d", c.Active())
	}
	if c.Admitted != 6 || c.Rejected != 0 {
		t.Fatalf("admitted/rejected = %d/%d, want 6/0", c.Admitted, c.Rejected)
	}
}

func TestControllerTraceEvents(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	rec := trace.NewRecorder(k, trace.Options{Enabled: true, Capacity: 64})
	c := NewController(k, 1)
	c.SetTrace(rec)
	for i := 0; i < 2; i++ {
		i := i
		k.SpawnAt(sim.Time(i), "s", func(p *sim.Proc) {
			c.Admit(p, i)
			p.Sleep(5 * sim.Millisecond)
			c.Release(i)
		})
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	var kinds []trace.Kind
	for _, ev := range rec.Snapshot().Events {
		kinds = append(kinds, ev.Kind)
	}
	want := []trace.Kind{
		trace.KindAdmAdmit,   // stream 0 admitted immediately
		trace.KindAdmWait,    // stream 1 queued at the limit
		trace.KindAdmRelease, // stream 0 departs, handing its slot over
		trace.KindAdmAdmit,   // stream 1 admitted
		trace.KindAdmRelease, // stream 1 departs
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d admission events, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d = %s, want %s", i, kinds[i].Name(), want[i].Name())
		}
	}
}

// A failover re-admission queued behind normal waiters is handed the
// next freed slot first, and its outcomes land in the Failover counters.
func TestControllerFailoverPriority(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	c := NewController(k, 1)
	var order []int
	k.Spawn("holder", func(p *sim.Proc) {
		c.Admit(p, 0)
		p.Sleep(100 * sim.Millisecond)
		c.Release(0)
	})
	for i := 1; i <= 2; i++ {
		i := i
		k.SpawnAt(sim.Time(i)*sim.Time(sim.Millisecond), "normal", func(p *sim.Proc) {
			c.Admit(p, i)
			order = append(order, i)
			p.Sleep(50 * sim.Millisecond)
			c.Release(i)
		})
	}
	k.SpawnAt(sim.Time(10*sim.Millisecond), "failover", func(p *sim.Proc) {
		if !c.AdmitFailover(p, 9) {
			t.Error("failover re-admission rejected")
		}
		order = append(order, 9)
		p.Sleep(50 * sim.Millisecond)
		c.Release(9)
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{9, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("admission order = %v, want %v", order, want)
		}
	}
	if c.FailoverAdmitted != 1 || c.FailoverRejected != 0 {
		t.Fatalf("failover counters = %d/%d, want 1/0", c.FailoverAdmitted, c.FailoverRejected)
	}
	if c.Active() != 0 {
		t.Fatalf("slots leaked: %d", c.Active())
	}
}

// A failover re-admission is still bounded by patience: when survivors
// have no capacity it is rejected like any other waiter.
func TestControllerFailoverPatienceReject(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	c := NewController(k, 1)
	c.SetPatience(100 * sim.Millisecond)
	var got bool
	k.Spawn("holder", func(p *sim.Proc) {
		c.Admit(p, 0)
		p.Sleep(sim.Second)
		c.Release(0)
	})
	k.SpawnAt(sim.Time(sim.Millisecond), "failover", func(p *sim.Proc) {
		got = c.AdmitFailover(p, 1)
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("failover admission succeeded with no capacity")
	}
	if c.FailoverRejected != 1 {
		t.Fatalf("FailoverRejected = %d, want 1", c.FailoverRejected)
	}
	if c.Waiting() != 0 {
		t.Fatalf("rejected waiter left in queue: %d", c.Waiting())
	}
}
