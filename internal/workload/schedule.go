package workload

import (
	"spiffi/internal/rng"
	"spiffi/internal/sim"
)

// Schedule is a compiled workload: every phase's rank→video permutation
// and Zipf table is precomputed from a derived rng stream, so the
// runtime methods are pure lookups plus draws from caller-provided
// streams. Build one with Compile; equal inputs yield identical
// schedules.
type Schedule struct {
	cfg     Config
	nVideos int
	total   sim.Duration // length of one phase cycle (0 only for a lone open-ended phase)
	phases  []compiledPhase
}

type compiledPhase struct {
	Phase
	start    sim.Duration // offset of phase entry within the cycle
	promoted int          // resolved promoted video id (-1 when none)
	zipf     *rng.Zipf    // phase-local popularity distribution
	perm     []int        // rank -> video id
}

// Compile builds a Schedule over a library of nVideos. Phases that
// inherit the skew (ZipfZ < 0) use baseZ. src seeds the compile-time
// churn draws (rank reshuffles); it is consumed here and never at run
// time. cfg must be normalized and valid, and nVideos positive.
func Compile(cfg Config, nVideos int, baseZ float64, src *rng.Source) *Schedule {
	cfg = cfg.Normalize()
	s := &Schedule{cfg: cfg, nVideos: nVideos}
	if !cfg.Enabled() {
		return s
	}
	shuffles := src.Derive("shuffle")
	// The ranking evolves across phases: each phase inherits the
	// previous phase's permutation, then applies its own churn.
	perm := make([]int, nVideos)
	for i := range perm {
		perm[i] = i
	}
	var at sim.Duration
	zipfs := map[float64]*rng.Zipf{}
	for _, p := range cfg.Phases {
		if p.Shuffle {
			for i := nVideos - 1; i > 0; i-- {
				j := shuffles.Intn(i + 1)
				perm[i], perm[j] = perm[j], perm[i]
			}
		}
		promoted := -1
		if p.Promote {
			promoted = p.PromoteVideo % nVideos
			// Move the promoted video to rank 0; everything above its
			// old rank shifts down one.
			for r, v := range perm {
				if v == promoted {
					copy(perm[1:r+1], perm[:r])
					perm[0] = promoted
					break
				}
			}
		}
		z := p.ZipfZ
		if z < 0 {
			z = baseZ
		}
		zf := zipfs[z]
		if zf == nil {
			zf = rng.NewZipf(nVideos, z)
			zipfs[z] = zf
		}
		cp := compiledPhase{Phase: p, start: at, promoted: promoted, zipf: zf}
		cp.perm = make([]int, nVideos)
		copy(cp.perm, perm)
		s.phases = append(s.phases, cp)
		at += p.Duration
	}
	s.total = at
	return s
}

// Enabled reports whether the schedule drives any behavior.
func (s *Schedule) Enabled() bool { return s != nil && len(s.phases) > 0 }

// NumPhases returns the number of configured phases (one cycle).
func (s *Schedule) NumPhases() int { return len(s.phases) }

// CycleLength returns the summed duration of one phase cycle.
func (s *Schedule) CycleLength() sim.Duration { return s.total }

// PhaseIndexAt maps a simulation time to the index of the active phase.
func (s *Schedule) PhaseIndexAt(t sim.Time) int {
	off := sim.Duration(t)
	if off < 0 {
		off = 0
	}
	if s.cfg.Repeat && s.total > 0 {
		off %= s.total
	}
	for i := len(s.phases) - 1; i >= 0; i-- {
		if off >= s.phases[i].start {
			return i
		}
	}
	return 0
}

// PhaseAt returns the phase active at time t.
func (s *Schedule) PhaseAt(t sim.Time) Phase {
	return s.phases[s.PhaseIndexAt(t)].Phase
}

// SelectVideo draws the next video to watch at time t using src.
func (s *Schedule) SelectVideo(t sim.Time, src *rng.Source) int {
	ph := &s.phases[s.PhaseIndexAt(t)]
	if ph.promoted >= 0 && ph.PromoteShare > 0 && src.Float64() < ph.PromoteShare {
		return ph.promoted
	}
	return ph.perm[ph.zipf.Draw(src)]
}

// ThinkTime draws the inter-movie think time at time t using src. It
// draws nothing and returns zero when BaseThink is unset.
func (s *Schedule) ThinkTime(t sim.Time, src *rng.Source) sim.Duration {
	if s.cfg.BaseThink <= 0 {
		return 0
	}
	ph := &s.phases[s.PhaseIndexAt(t)]
	mean := float64(s.cfg.BaseThink) / ph.Load
	return sim.Duration(src.Exp(mean))
}

// SeekBoost returns the VCR seek-intensity multiplier at time t.
func (s *Schedule) SeekBoost(t sim.Time) float64 {
	return s.phases[s.PhaseIndexAt(t)].SeekBoost
}

// LoadAt returns the arrival-rate multiplier at time t.
func (s *Schedule) LoadAt(t sim.Time) float64 {
	return s.phases[s.PhaseIndexAt(t)].Load
}

// Boundary is one phase entry on the absolute simulation timeline.
type Boundary struct {
	At    sim.Time
	Index int // phase index within the cycle
	Cycle int // 0-based cycle count (always 0 unless Repeat)
	Phase Phase
}

// maxBoundaries caps Boundaries against pathological tiny-cycle
// configs; no sane scenario approaches it.
const maxBoundaries = 4096

// Boundaries lists every phase entry in [0, horizon), in time order.
// Repeated workloads re-enter their phases each cycle.
func (s *Schedule) Boundaries(horizon sim.Duration) []Boundary {
	if !s.Enabled() || horizon <= 0 {
		return nil
	}
	var out []Boundary
	for cycle := 0; ; cycle++ {
		base := sim.Duration(cycle) * s.total
		for i := range s.phases {
			at := base + s.phases[i].start
			if at >= horizon || len(out) >= maxBoundaries {
				return out
			}
			out = append(out, Boundary{
				At:    sim.Time(at),
				Index: i,
				Cycle: cycle,
				Phase: s.phases[i].Phase,
			})
		}
		if !s.cfg.Repeat || s.total <= 0 {
			return out
		}
	}
}
