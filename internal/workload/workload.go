// Package workload is a composable, seeded, fully deterministic
// scenario generator for production traffic shapes. A workload is a
// sequence of Phases, each holding a target popularity skew, a load
// multiplier, and optional churn events (rank reshuffles, "new release
// goes viral" promotions, VCR-interaction storms). The phase sequence
// drives three terminal-side decisions:
//
//   - which video a terminal selects next (phase-local Zipf over a
//     phase-local rank→video permutation, plus an optional premiere
//     concentration on one promoted video),
//   - how long a terminal idles between movie sessions (binge think
//     time, scaled down by the phase load multiplier so high-load
//     phases arrive faster), and
//   - how aggressively VCR interactions fire (a multiplier on the
//     configured mean seeks per movie).
//
// Determinism contract: Compile precomputes every permutation and
// distribution table from a derived rng stream at build time, so equal
// (Config, nVideos, baseZ, seed) always yield an identical Schedule;
// all runtime draws come from caller-provided per-terminal streams.
// The zero-value Config is strictly inert — Enabled() is false, no
// streams are derived, and every existing run reproduces bit-for-bit.
package workload

import (
	"fmt"

	"spiffi/internal/sim"
)

// Phase is one segment of the traffic timeline. The zero value of every
// optional field means "no change from baseline": Load 0 normalizes to
// 1, ZipfZ < 0 inherits the run's base skew, SeekBoost 0 normalizes to
// 1, and Promote false leaves the popularity ranking alone.
type Phase struct {
	// Name labels the phase in traces, metrics, and experiment notes.
	Name string

	// Duration is how long the phase lasts. Every phase except the last
	// must be positive; a zero-duration final phase extends to the end
	// of the run (and Normalize leaves it open-ended).
	Duration sim.Duration

	// Load multiplies the session arrival rate by dividing the mean
	// inter-movie think time: think = BaseThink / Load. 1 is baseline;
	// 3 is a flash crowd; 0.3 is an overnight lull. It has no effect
	// when BaseThink is zero (terminals then binge back-to-back).
	Load float64

	// ZipfZ is the popularity skew during this phase. Negative means
	// "inherit the run's base skew"; 0 is a legitimate uniform draw.
	ZipfZ float64

	// Shuffle reshuffles the rank→video permutation at phase entry —
	// popularity churn, where yesterday's hits fall out of the chart.
	// Shuffles compose: each shuffling phase permutes the ranking left
	// by the previous phase.
	Shuffle bool

	// Promote moves PromoteVideo to rank 0 at phase entry (everything
	// above its old rank shifts down one) — a new release going viral.
	Promote      bool
	PromoteVideo int

	// PromoteShare is the probability that a selection during this
	// phase picks the promoted video outright, bypassing the Zipf draw
	// — the premiere flash-crowd concentration. Requires Promote.
	PromoteShare float64

	// SeekBoost multiplies the VCR mean-seeks-per-movie during this
	// phase — a VCR-interaction storm. 0 normalizes to 1 (no change).
	SeekBoost float64
}

// Config describes a workload scenario. The zero value is inert.
type Config struct {
	// Phases is the traffic timeline, played in order from simulation
	// time zero. Empty disables the workload generator entirely.
	Phases []Phase

	// BaseThink is the mean inter-movie think time (exponentially
	// distributed) at Load 1. Zero means terminals start their next
	// movie immediately, as they always have; phase Load multipliers
	// then have no arrival-rate effect.
	BaseThink sim.Duration

	// Repeat cycles the phase sequence forever (diurnal shapes). When
	// false the last phase persists to the end of the run. A repeated
	// cycle replays the same compiled permutations each pass, so churn
	// is periodic, not cumulative.
	Repeat bool
}

// Enabled reports whether the workload generator is active.
func (c Config) Enabled() bool { return len(c.Phases) > 0 }

// Normalize fills defaulted fields. Inert configs pass through
// untouched.
func (c Config) Normalize() Config {
	if !c.Enabled() {
		return c
	}
	phases := make([]Phase, len(c.Phases))
	copy(phases, c.Phases)
	for i := range phases {
		if phases[i].Load == 0 {
			phases[i].Load = 1
		}
		if phases[i].SeekBoost == 0 {
			phases[i].SeekBoost = 1
		}
		if phases[i].Name == "" {
			phases[i].Name = fmt.Sprintf("phase%d", i)
		}
	}
	c.Phases = phases
	return c
}

// Validate checks a normalized config.
func (c Config) Validate() error {
	if !c.Enabled() {
		return nil
	}
	if c.BaseThink < 0 {
		return fmt.Errorf("workload: BaseThink %v negative", c.BaseThink)
	}
	for i, p := range c.Phases {
		if p.Duration < 0 {
			return fmt.Errorf("workload: phase %d (%s) negative duration %v", i, p.Name, p.Duration)
		}
		if p.Duration == 0 && (i != len(c.Phases)-1 || c.Repeat) {
			return fmt.Errorf("workload: phase %d (%s) zero duration (only the last phase of a non-repeating workload may be open-ended)", i, p.Name)
		}
		if p.Load <= 0 {
			return fmt.Errorf("workload: phase %d (%s) load %v must be positive", i, p.Name, p.Load)
		}
		if p.SeekBoost <= 0 {
			return fmt.Errorf("workload: phase %d (%s) seek boost %v must be positive", i, p.Name, p.SeekBoost)
		}
		if p.PromoteShare < 0 || p.PromoteShare > 1 {
			return fmt.Errorf("workload: phase %d (%s) promote share %v outside [0,1]", i, p.Name, p.PromoteShare)
		}
		if p.PromoteShare > 0 && !p.Promote {
			return fmt.Errorf("workload: phase %d (%s) promote share without a promoted video", i, p.Name)
		}
		if p.Promote && p.PromoteVideo < 0 {
			return fmt.Errorf("workload: phase %d (%s) negative promoted video %d", i, p.Name, p.PromoteVideo)
		}
	}
	return nil
}
