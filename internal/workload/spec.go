package workload

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"spiffi/internal/sim"
)

// ParseSpec parses the compact text form of a workload scenario, used
// by the -workload CLI flag and the fuzz corpus. The grammar
// (documented in WORKLOADS.md):
//
//	spec    := clause (';' clause)*
//	clause  := global | phase
//	global  := 'think=' DUR | 'repeat'
//	phase   := NAME ':' DUR { ' ' option }
//	option  := 'load=' FLOAT | 'z=' FLOAT | 'shuffle'
//	         | 'promote=' INT | 'share=' FLOAT | 'seekboost=' FLOAT
//
// DUR is a Go duration ("90s", "2m"); '*' as the last phase's duration
// means open-ended. A phase with no 'z=' inherits the run's base skew.
// Example:
//
//	think=10s; steady:60s; premiere:45s load=3 promote=0 share=0.7 seekboost=2; recover:* shuffle
//
// The result is normalized and validated.
func ParseSpec(spec string) (Config, error) {
	var c Config
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		switch {
		case clause == "repeat":
			c.Repeat = true
			continue
		case strings.HasPrefix(clause, "think="):
			d, err := time.ParseDuration(strings.TrimPrefix(clause, "think="))
			if err != nil {
				return Config{}, fmt.Errorf("workload spec: think: %w", err)
			}
			c.BaseThink = sim.Duration(d)
			continue
		}
		p, err := parsePhase(clause)
		if err != nil {
			return Config{}, err
		}
		c.Phases = append(c.Phases, p)
	}
	if !c.Enabled() {
		return Config{}, fmt.Errorf("workload spec %q: no phases", spec)
	}
	c = c.Normalize()
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

func parsePhase(clause string) (Phase, error) {
	fields := strings.Fields(clause)
	head := fields[0]
	name, dur, ok := strings.Cut(head, ":")
	if !ok || name == "" {
		return Phase{}, fmt.Errorf("workload spec: phase %q: want NAME:DUR", head)
	}
	p := Phase{Name: name, ZipfZ: -1} // inherit base skew unless z= given
	if dur != "*" {
		d, err := time.ParseDuration(dur)
		if err != nil {
			return Phase{}, fmt.Errorf("workload spec: phase %q: %w", name, err)
		}
		p.Duration = sim.Duration(d)
	}
	for _, opt := range fields[1:] {
		key, val, _ := strings.Cut(opt, "=")
		var err error
		switch key {
		case "shuffle":
			p.Shuffle = true
		case "load":
			p.Load, err = strconv.ParseFloat(val, 64)
			if err == nil && p.Load <= 0 {
				err = fmt.Errorf("non-positive load %v", p.Load)
			}
		case "z":
			p.ZipfZ, err = strconv.ParseFloat(val, 64)
			if err == nil && p.ZipfZ < 0 {
				err = fmt.Errorf("negative skew %v", p.ZipfZ)
			}
		case "promote":
			p.PromoteVideo, err = strconv.Atoi(val)
			p.Promote = true
		case "share":
			p.PromoteShare, err = strconv.ParseFloat(val, 64)
		case "seekboost":
			p.SeekBoost, err = strconv.ParseFloat(val, 64)
			if err == nil && p.SeekBoost <= 0 {
				err = fmt.Errorf("non-positive seekboost %v", p.SeekBoost)
			}
		default:
			err = fmt.Errorf("unknown option")
		}
		if err != nil {
			return Phase{}, fmt.Errorf("workload spec: phase %q: option %q: %v", name, opt, err)
		}
	}
	return p, nil
}
