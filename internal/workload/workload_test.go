package workload

import (
	"reflect"
	"testing"

	"spiffi/internal/rng"
	"spiffi/internal/sim"
)

func TestZeroValueInert(t *testing.T) {
	var c Config
	if c.Enabled() {
		t.Fatal("zero value enabled")
	}
	if got := c.Normalize(); !reflect.DeepEqual(got, c) {
		t.Fatalf("Normalize changed the zero value: %+v", got)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("zero value invalid: %v", err)
	}
	s := Compile(c, 16, 1.0, rng.New(1))
	if s.Enabled() {
		t.Fatal("compiled zero value enabled")
	}
	if b := s.Boundaries(10 * sim.Minute); b != nil {
		t.Fatalf("inert schedule has boundaries: %v", b)
	}
}

func TestNormalizeDefaults(t *testing.T) {
	c := Config{Phases: []Phase{{Duration: sim.Minute}, {Name: "x", Duration: sim.Minute, Load: 2, SeekBoost: 3}}}
	n := c.Normalize()
	if n.Phases[0].Load != 1 || n.Phases[0].SeekBoost != 1 || n.Phases[0].Name != "phase0" {
		t.Fatalf("defaults not filled: %+v", n.Phases[0])
	}
	if n.Phases[1].Load != 2 || n.Phases[1].SeekBoost != 3 || n.Phases[1].Name != "x" {
		t.Fatalf("explicit values clobbered: %+v", n.Phases[1])
	}
	// Normalize must not alias the caller's slice.
	if c.Phases[0].Load != 0 {
		t.Fatal("Normalize mutated input")
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []Config{
		{Phases: []Phase{{Name: "a", Duration: -sim.Second, Load: 1, SeekBoost: 1}}},
		{Phases: []Phase{{Name: "a", Load: 1, SeekBoost: 1}, {Name: "b", Duration: sim.Second, Load: 1, SeekBoost: 1}}}, // open-ended non-final
		{Repeat: true, Phases: []Phase{{Name: "a", Load: 1, SeekBoost: 1}}},                                            // open-ended + repeat
		{Phases: []Phase{{Name: "a", Duration: sim.Second, Load: -1, SeekBoost: 1}}},
		{Phases: []Phase{{Name: "a", Duration: sim.Second, Load: 1, SeekBoost: -2}}},
		{Phases: []Phase{{Name: "a", Duration: sim.Second, Load: 1, SeekBoost: 1, PromoteShare: 0.5}}}, // share without promote
		{Phases: []Phase{{Name: "a", Duration: sim.Second, Load: 1, SeekBoost: 1, Promote: true, PromoteShare: 1.5, PromoteVideo: 0}}},
		{Phases: []Phase{{Name: "a", Duration: sim.Second, Load: 1, SeekBoost: 1, Promote: true, PromoteVideo: -3}}},
		{BaseThink: -sim.Second, Phases: []Phase{{Name: "a", Duration: sim.Second, Load: 1, SeekBoost: 1}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d accepted: %+v", i, c)
		}
	}
	good := Config{Phases: []Phase{
		{Name: "a", Duration: sim.Minute, Load: 1, SeekBoost: 1},
		{Name: "b", Load: 1, SeekBoost: 1}, // open-ended final
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestCompileDeterminism(t *testing.T) {
	c := Config{
		BaseThink: 5 * sim.Second,
		Phases: []Phase{
			{Name: "day", Duration: 2 * sim.Minute, ZipfZ: -1},
			{Name: "premiere", Duration: sim.Minute, Load: 3, Promote: true, PromoteVideo: 7, PromoteShare: 0.6, ZipfZ: -1},
			{Name: "night", Duration: 2 * sim.Minute, Load: 0.3, Shuffle: true, ZipfZ: -1},
		},
	}.Normalize()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	a := Compile(c, 64, 1.0, rng.New(42))
	b := Compile(c, 64, 1.0, rng.New(42))
	other := Compile(c, 64, 1.0, rng.New(43))

	drawA, drawB, drawO := rng.New(9), rng.New(9), rng.New(9)
	diff := false
	for i := 0; i < 2000; i++ {
		at := sim.Time(i) * sim.Time(sim.Second)
		va, vb := a.SelectVideo(at, drawA), b.SelectVideo(at, drawB)
		if va != vb {
			t.Fatalf("same seed diverged at %v: %d vs %d", at, va, vb)
		}
		if other.SelectVideo(at, drawO) != va {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different compile seeds produced identical selections (shuffle stream ignored?)")
	}
}

func TestPhaseTimelineAndBoundaries(t *testing.T) {
	c := Config{Phases: []Phase{
		{Name: "a", Duration: sim.Minute},
		{Name: "b", Duration: 30 * sim.Second},
		{Name: "c"}, // open-ended
	}}.Normalize()
	s := Compile(c, 8, 1.0, rng.New(1))
	cases := []struct {
		at   sim.Duration
		want int
	}{
		{0, 0}, {59 * sim.Second, 0}, {sim.Minute, 1},
		{89 * sim.Second, 1}, {90 * sim.Second, 2}, {sim.Hour, 2},
	}
	for _, tc := range cases {
		if got := s.PhaseIndexAt(sim.Time(tc.at)); got != tc.want {
			t.Fatalf("PhaseIndexAt(%v) = %d, want %d", tc.at, got, tc.want)
		}
	}
	b := s.Boundaries(10 * sim.Minute)
	if len(b) != 3 || b[0].At != 0 || b[1].At != sim.Time(sim.Minute) || b[2].At != sim.Time(90*sim.Second) {
		t.Fatalf("boundaries = %+v", b)
	}
	if b[2].Phase.Name != "c" || b[2].Index != 2 || b[2].Cycle != 0 {
		t.Fatalf("last boundary = %+v", b[2])
	}

	// Repeating cycle wraps both the index lookup and the boundaries.
	rc := Config{Repeat: true, Phases: []Phase{
		{Name: "x", Duration: sim.Minute},
		{Name: "y", Duration: sim.Minute},
	}}.Normalize()
	rs := Compile(rc, 8, 1.0, rng.New(1))
	if got := rs.PhaseIndexAt(sim.Time(3*sim.Minute + sim.Second)); got != 1 {
		t.Fatalf("wrapped PhaseIndexAt = %d, want 1", got)
	}
	rb := rs.Boundaries(5 * sim.Minute)
	if len(rb) != 5 || rb[4].At != sim.Time(4*sim.Minute) || rb[4].Cycle != 2 || rb[4].Index != 0 {
		t.Fatalf("repeat boundaries = %+v", rb)
	}
}

func TestPromoteAndShuffle(t *testing.T) {
	c := Config{Phases: []Phase{
		{Name: "steady", Duration: sim.Minute, ZipfZ: 3},
		{Name: "viral", Duration: sim.Minute, ZipfZ: 3, Promote: true, PromoteVideo: 9, PromoteShare: 1},
		{Name: "churn", Duration: sim.Minute, ZipfZ: 3, Shuffle: true},
	}}.Normalize()
	s := Compile(c, 32, 1.0, rng.New(7))

	// share=1 concentrates every selection on the promoted video.
	src := rng.New(3)
	at := sim.Time(90 * sim.Second)
	for i := 0; i < 50; i++ {
		if v := s.SelectVideo(at, src); v != 9 {
			t.Fatalf("premiere selection = %d, want 9", v)
		}
	}
	// The promotion also occupies rank 0 of the viral phase's ranking.
	if s.phases[1].perm[0] != 9 {
		t.Fatalf("promoted video not at rank 0: %v", s.phases[1].perm[:4])
	}
	// Promotion shifts ranks down without losing or duplicating videos.
	seen := map[int]bool{}
	for _, v := range s.phases[1].perm {
		if seen[v] {
			t.Fatalf("rank table duplicates video %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 32 {
		t.Fatalf("rank table lost videos: %d/32", len(seen))
	}
	// The shuffle phase must not inherit the steady ranking unchanged.
	if reflect.DeepEqual(s.phases[2].perm, s.phases[0].perm) {
		t.Fatal("shuffle left the ranking untouched")
	}
}

func TestThinkTime(t *testing.T) {
	c := Config{
		BaseThink: 10 * sim.Second,
		Phases: []Phase{
			{Name: "lull", Duration: sim.Minute, Load: 0.5},
			{Name: "rush", Duration: sim.Minute, Load: 5},
		},
	}.Normalize()
	s := Compile(c, 8, 1.0, rng.New(1))
	src := rng.New(11)
	var lull, rush sim.Duration
	for i := 0; i < 4000; i++ {
		lull += s.ThinkTime(0, src)
		rush += s.ThinkTime(sim.Time(90*sim.Second), src)
	}
	if lull < 8*rush { // means 20s vs 2s; huge margin
		t.Fatalf("load scaling broken: lull=%v rush=%v", lull/4000, rush/4000)
	}

	// BaseThink unset: zero think and, critically, zero draws.
	nc := Config{Phases: []Phase{{Name: "a", Duration: sim.Minute}}}.Normalize()
	ns := Compile(nc, 8, 1.0, rng.New(1))
	probe, ref := rng.New(5), rng.New(5)
	if d := ns.ThinkTime(0, probe); d != 0 {
		t.Fatalf("think = %v, want 0", d)
	}
	if probe.Uint64() != ref.Uint64() {
		t.Fatal("ThinkTime consumed a draw with BaseThink unset")
	}
}

func TestSeekBoostAndLoadAt(t *testing.T) {
	c := Config{Phases: []Phase{
		{Name: "calm", Duration: sim.Minute},
		{Name: "storm", Duration: sim.Minute, SeekBoost: 4, Load: 2},
	}}.Normalize()
	s := Compile(c, 8, 1.0, rng.New(1))
	if s.SeekBoost(0) != 1 || s.SeekBoost(sim.Time(sim.Minute)) != 4 {
		t.Fatalf("seek boost = %v/%v", s.SeekBoost(0), s.SeekBoost(sim.Time(sim.Minute)))
	}
	if s.LoadAt(0) != 1 || s.LoadAt(sim.Time(90*sim.Second)) != 2 {
		t.Fatalf("load = %v/%v", s.LoadAt(0), s.LoadAt(sim.Time(90*sim.Second)))
	}
}

func TestParseSpec(t *testing.T) {
	c, err := ParseSpec("think=10s; repeat; day:2m; peak:1m load=3 z=1.2 promote=4 share=0.5 seekboost=2; night:30s load=0.3 shuffle")
	if err != nil {
		t.Fatal(err)
	}
	if c.BaseThink != 10*sim.Second || !c.Repeat || len(c.Phases) != 3 {
		t.Fatalf("globals wrong: %+v", c)
	}
	day, peak, night := c.Phases[0], c.Phases[1], c.Phases[2]
	if day.Name != "day" || day.Duration != 2*sim.Minute || day.Load != 1 || day.ZipfZ != -1 {
		t.Fatalf("day = %+v", day)
	}
	if peak.Load != 3 || peak.ZipfZ != 1.2 || !peak.Promote || peak.PromoteVideo != 4 ||
		peak.PromoteShare != 0.5 || peak.SeekBoost != 2 {
		t.Fatalf("peak = %+v", peak)
	}
	if !night.Shuffle || night.Load != 0.3 {
		t.Fatalf("night = %+v", night)
	}

	if c, err := ParseSpec("steady:1m; tail:*"); err != nil || c.Phases[1].Duration != 0 {
		t.Fatalf("open-ended tail: %+v err=%v", c, err)
	}

	for _, bad := range []string{
		"",                      // no phases
		"think=10s",             // globals only
		"a:",                    // missing duration
		":1m",                   // missing name
		"a:1m zoom=3",           // unknown option
		"a:1m z=-1",             // explicit negative skew
		"a:1m load=0",           // zero load
		"a:*; b:1m",             // open-ended non-final
		"repeat; a:*",           // open-ended + repeat
		"a:1m share=0.5",        // share without promote
		"a:forever",             // bad duration
		"think=fast; a:1m",      // bad think
		"a:1m promote=-2",       // negative video
		"a:1m promote=1 share=2; b:1m", // share out of range
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}
