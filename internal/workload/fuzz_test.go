package workload

import (
	"testing"

	"spiffi/internal/rng"
	"spiffi/internal/sim"
)

// FuzzWorkloadSchedule fuzzes the spec parser and compiled-schedule
// invariants: every instant of the horizon maps to exactly one valid
// phase, boundaries are ordered and in-range, normalized rates are
// strictly positive, selections stay inside the library, and the same
// seed always compiles to an identical schedule. `make fuzz-seed`
// replays the checked-in corpus under testdata/fuzz plus the seeds
// below;
// `go test -fuzz FuzzWorkloadSchedule ./internal/workload` explores.
func FuzzWorkloadSchedule(f *testing.F) {
	f.Add("steady:1m", uint64(1))
	f.Add("think=10s; day:2m; peak:1m load=3 z=1.2 promote=4 share=0.5 seekboost=2; night:*", uint64(42))
	f.Add("repeat; a:30s shuffle; b:45s load=0.25 promote=0 share=1", uint64(7))
	f.Add("think=1s; a:1s z=0; b:*", uint64(0))
	f.Add("x:1h load=100 seekboost=0.5; y:* shuffle z=1.5", uint64(1<<40))

	const nVideos, horizon = 24, 10 * sim.Minute
	f.Fuzz(func(t *testing.T, spec string, seed uint64) {
		cfg, err := ParseSpec(spec)
		if err != nil {
			t.Skip()
		}
		// ParseSpec already normalizes + validates; anything it accepts
		// must satisfy the schedule invariants below.
		a := Compile(cfg, nVideos, 1.0, rng.New(seed))
		b := Compile(cfg, nVideos, 1.0, rng.New(seed))

		// Rates strictly positive after normalization.
		for i, p := range cfg.Phases {
			if p.Load <= 0 || p.SeekBoost <= 0 {
				t.Fatalf("phase %d non-positive rate: %+v", i, p)
			}
		}

		// Boundaries ordered, in-range, starting at t=0.
		bounds := a.Boundaries(horizon)
		if len(bounds) == 0 || bounds[0].At != 0 {
			t.Fatalf("horizon not covered from t=0: %+v", bounds)
		}
		for i, bd := range bounds {
			if bd.At < 0 || sim.Duration(bd.At) >= horizon {
				t.Fatalf("boundary %d out of range: %+v", i, bd)
			}
			if i > 0 && bd.At <= bounds[i-1].At {
				t.Fatalf("boundaries out of order: %+v", bounds)
			}
			if bd.Index < 0 || bd.Index >= a.NumPhases() {
				t.Fatalf("boundary %d bad index: %+v", i, bd)
			}
		}

		// Every instant maps to a valid phase; same seed, same schedule.
		drawA, drawB := rng.New(seed^0x5DEECE66D), rng.New(seed^0x5DEECE66D)
		for step := sim.Duration(0); step < horizon; step += 7 * sim.Second {
			at := sim.Time(step)
			idx := a.PhaseIndexAt(at)
			if idx < 0 || idx >= a.NumPhases() {
				t.Fatalf("PhaseIndexAt(%v) = %d", at, idx)
			}
			if idx != b.PhaseIndexAt(at) {
				t.Fatalf("phase index diverged at %v", at)
			}
			va, vb := a.SelectVideo(at, drawA), b.SelectVideo(at, drawB)
			if va != vb {
				t.Fatalf("same-seed selection diverged at %v: %d vs %d", at, va, vb)
			}
			if va < 0 || va >= nVideos {
				t.Fatalf("selection %d outside library", va)
			}
			ta, tb := a.ThinkTime(at, drawA), b.ThinkTime(at, drawB)
			if ta != tb || ta < 0 {
				t.Fatalf("think diverged or negative at %v: %v vs %v", at, ta, tb)
			}
			if a.SeekBoost(at) <= 0 || a.LoadAt(at) <= 0 {
				t.Fatalf("non-positive rate at %v", at)
			}
		}
	})
}
