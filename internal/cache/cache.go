// Package cache implements the per-node prefix cache of the SPIFFI
// caching tier (CACHING.md, ROADMAP item 3). Each server node keeps the
// first PrefixBlocks blocks of popular videos resident in a memory
// budget carved out of that node's buffer pool, so a new viewer's
// opening blocks are served from memory and the viewer can merge onto
// an in-flight disk stream instead of opening its own (core/merge.go).
//
// Replacement is pluggable per experiment. PolicyLRU evicts the least
// recently touched cached block. PolicyZipfRank follows the rank-based
// replacement policy for Zipf-like video popularity: the victim is
// always taken from the video with the lowest observed request count
// (the worst popularity rank), and within that video the deepest cached
// block goes first, so prefixes shrink from the tail and the contiguous
// head — the part merge-joins depend on — survives longest.
//
// Everything is deterministic: eviction scans run in fixed video-id
// order, ties break toward the higher video id, and no map is ever
// iterated to make a decision. The cache draws no randomness and arms
// no timers, so a disabled cache (zero Config) cannot perturb a run.
package cache

import (
	"fmt"

	"spiffi/internal/trace"
)

// PolicyKind selects the replacement policy.
type PolicyKind string

const (
	// PolicyLRU evicts the least recently touched cached block.
	PolicyLRU PolicyKind = "lru"
	// PolicyZipfRank evicts from the least-requested video first,
	// deepest block first within it.
	PolicyZipfRank PolicyKind = "zipf-rank"
)

// Config configures the caching tier. The zero value disables it
// entirely: no cache objects are built, the buffer pool keeps its full
// size, and runs reproduce cache-less builds bit for bit.
type Config struct {
	// BudgetBytes is the aggregate cache memory across all nodes,
	// carved out of ServerMemBytes (each node gets BudgetBytes/Nodes,
	// and the buffer pool shrinks by the same amount). 0 disables the
	// cache.
	BudgetBytes int64

	// Policy selects the replacement policy; Normalize fills PolicyLRU
	// when the cache is enabled and no policy is named.
	Policy PolicyKind

	// PrefixBlocks is K, the number of leading blocks per video the
	// cache may hold; Normalize fills 8 when the cache is enabled.
	PrefixBlocks int

	// DecayEvery halves every video's observed request count after each
	// DecayEvery lookups (0 = never, the historical behavior). Without
	// decay PolicyZipfRank ranks by lifetime counts, so a formerly-hot
	// video outranks the current hits long after its popularity
	// collapses; with decay the ranking follows a sliding window of
	// roughly 2*DecayEvery recent requests. Deterministic and
	// timer-free: the trigger is the lookup counter itself.
	DecayEvery int64
}

// Enabled reports whether the caching tier is configured on.
func (c Config) Enabled() bool { return c.BudgetBytes > 0 }

// Normalize fills defaults for an enabled cache and leaves a disabled
// one untouched (zero stays zero).
func (c Config) Normalize() Config {
	if !c.Enabled() {
		return c
	}
	if c.Policy == "" {
		c.Policy = PolicyLRU
	}
	if c.PrefixBlocks == 0 {
		c.PrefixBlocks = 8
	}
	return c
}

// Validate reports configuration errors; a disabled cache is always
// valid.
func (c Config) Validate() error {
	if !c.Enabled() {
		if c.BudgetBytes < 0 {
			return fmt.Errorf("cache: negative budget %d", c.BudgetBytes)
		}
		return nil
	}
	switch c.Policy {
	case PolicyLRU, PolicyZipfRank:
	default:
		return fmt.Errorf("cache: unknown policy %q (want %q or %q)", c.Policy, PolicyLRU, PolicyZipfRank)
	}
	if c.PrefixBlocks < 1 {
		return fmt.Errorf("cache: need PrefixBlocks >= 1, got %d", c.PrefixBlocks)
	}
	if c.DecayEvery < 0 {
		return fmt.Errorf("cache: negative DecayEvery %d", c.DecayEvery)
	}
	return nil
}

// Stats counts cache activity over a run's whole lifetime (they are
// deliberately not reset with the measurement window — hit ratios are a
// property of the cache, not of a window).
type Stats struct {
	Hits      int64 // prefix-block requests served from cache
	Misses    int64 // prefix-block requests the cache could not serve
	Inserts   int64 // blocks admitted into the cache
	Evictions int64 // blocks evicted to make room
}

// entry is one cached block. Entries live simultaneously on the global
// LRU list (prev/next) and in their video's per-video block table.
type entry struct {
	video, block int
	size         int64
	prev, next   *entry
}

// perVideo tracks one video's cached blocks and its observed request
// count (the popularity signal PolicyZipfRank ranks by).
type perVideo struct {
	blocks   map[int]*entry
	requests int64
	// deepest is the largest cached block index, maintained so the
	// zipf-rank victim scan never iterates a map.
	deepest int
}

// Cache is one node's prefix cache. It is not safe for concurrent use;
// the simulation kernel runs one process at a time, which is the only
// caller.
type Cache struct {
	budget       int64
	used         int64
	prefixBlocks int
	policy       PolicyKind
	decayEvery   int64
	lookups      int64 // lookups since the last popularity decay

	videos []perVideo // indexed by video id

	// lru is a doubly linked list of entries, most recent at head.
	head, tail *entry

	stats Stats

	rec  *trace.Recorder
	node int
}

// New builds a node's cache with the given per-node byte budget. The
// cfg must be normalized and valid; nVideos sizes the per-video table.
func New(cfg Config, budgetBytes int64, nVideos int) *Cache {
	c := &Cache{
		budget:       budgetBytes,
		prefixBlocks: cfg.PrefixBlocks,
		policy:       cfg.Policy,
		decayEvery:   cfg.DecayEvery,
		videos:       make([]perVideo, nVideos),
	}
	for v := range c.videos {
		c.videos[v].blocks = make(map[int]*entry)
		c.videos[v].deepest = -1
	}
	return c
}

// SetTrace attaches a recorder; node identifies this cache in events.
func (c *Cache) SetTrace(rec *trace.Recorder, node int) {
	c.rec = rec
	c.node = node
}

// Stats returns lifetime counters.
func (c *Cache) Stats() Stats { return c.stats }

// Used returns the bytes currently cached.
func (c *Cache) Used() int64 { return c.used }

// Cacheable reports whether a block is within the prefix window the
// cache manages.
func (c *Cache) Cacheable(block int) bool { return block < c.prefixBlocks }

// Contains reports whether the block is resident, without touching
// recency or popularity state.
func (c *Cache) Contains(video, block int) bool {
	if video < 0 || video >= len(c.videos) {
		return false
	}
	_, ok := c.videos[video].blocks[block]
	return ok
}

// Lookup serves a block request. Every call counts toward the video's
// popularity rank (the cache observes the full request stream); hit and
// miss statistics are kept only for cacheable (prefix) blocks, since
// deeper blocks are never the cache's to serve. A hit refreshes LRU
// recency and is traced.
func (c *Cache) Lookup(video, block int) bool {
	if video < 0 || video >= len(c.videos) {
		return false
	}
	c.videos[video].requests++
	if c.decayEvery > 0 {
		if c.lookups++; c.lookups >= c.decayEvery {
			c.lookups = 0
			for v := range c.videos {
				c.videos[v].requests /= 2
			}
		}
	}
	if !c.Cacheable(block) {
		return false
	}
	e, ok := c.videos[video].blocks[block]
	if !ok {
		c.stats.Misses++
		return false
	}
	c.stats.Hits++
	c.touch(e)
	c.rec.CacheHit(c.node, video, block)
	return true
}

// Insert admits a block after a disk fetch, evicting until it fits.
// Non-prefix blocks, duplicates, and blocks larger than the whole
// budget are ignored.
func (c *Cache) Insert(video, block int, size int64) {
	if video < 0 || video >= len(c.videos) || !c.Cacheable(block) || size <= 0 || size > c.budget {
		return
	}
	pv := &c.videos[video]
	if _, ok := pv.blocks[block]; ok {
		return
	}
	for c.used+size > c.budget {
		if !c.evictOne() {
			return
		}
	}
	e := &entry{video: video, block: block, size: size}
	pv.blocks[block] = e
	if block > pv.deepest {
		pv.deepest = block
	}
	c.pushFront(e)
	c.used += size
	c.stats.Inserts++
	c.rec.CacheInsert(c.node, video, block)
}

// evictOne removes one victim according to the policy; it reports false
// if the cache is already empty.
func (c *Cache) evictOne() bool {
	var victim *entry
	switch c.policy {
	case PolicyZipfRank:
		victim = c.zipfRankVictim()
	default:
		victim = c.tail
	}
	if victim == nil {
		return false
	}
	c.remove(victim)
	c.stats.Evictions++
	c.rec.CacheEvict(c.node, victim.video, victim.block)
	return true
}

// zipfRankVictim picks the deepest cached block of the video with the
// fewest observed requests. The scan is a fixed-order pass over the
// video table (no map iteration); ties on request count resolve to the
// higher video id, so repeated evictions under identical counts drain
// one video at a time instead of interleaving.
func (c *Cache) zipfRankVictim() *entry {
	worst := -1
	for v := range c.videos {
		if len(c.videos[v].blocks) == 0 {
			continue
		}
		if worst < 0 || c.videos[v].requests <= c.videos[worst].requests {
			worst = v
		}
	}
	if worst < 0 {
		return nil
	}
	return c.videos[worst].blocks[c.videos[worst].deepest]
}

// remove unlinks an entry from the LRU list and its video table and
// releases its bytes.
func (c *Cache) remove(e *entry) {
	c.unlink(e)
	pv := &c.videos[e.video]
	delete(pv.blocks, e.block)
	if e.block == pv.deepest {
		pv.deepest = -1
		for b := e.block - 1; b >= 0; b-- {
			if _, ok := pv.blocks[b]; ok {
				pv.deepest = b
				break
			}
		}
	}
	c.used -= e.size
}

func (c *Cache) touch(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *Cache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
