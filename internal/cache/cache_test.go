package cache

import (
	"testing"

	"spiffi/internal/rng"
)

func lruCache(budgetBlocks int64, prefix, nVideos int) *Cache {
	cfg := Config{BudgetBytes: 1, Policy: PolicyLRU, PrefixBlocks: prefix}
	return New(cfg, budgetBlocks, nVideos) // unit-size blocks: budget counts blocks
}

func zipfCache(budgetBlocks int64, prefix, nVideos int) *Cache {
	cfg := Config{BudgetBytes: 1, Policy: PolicyZipfRank, PrefixBlocks: prefix}
	return New(cfg, budgetBlocks, nVideos)
}

func TestConfigNormalizeFillsDefaultsOnlyWhenEnabled(t *testing.T) {
	zero := Config{}
	if got := zero.Normalize(); got != zero {
		t.Fatalf("disabled config changed by Normalize: %+v", got)
	}
	on := Config{BudgetBytes: 1 << 20}.Normalize()
	if on.Policy != PolicyLRU || on.PrefixBlocks != 8 {
		t.Fatalf("enabled config defaults wrong: %+v", on)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config invalid: %v", err)
	}
	if err := (Config{BudgetBytes: -1}).Validate(); err == nil {
		t.Fatal("negative budget accepted")
	}
	if err := (Config{BudgetBytes: 1, Policy: "clock", PrefixBlocks: 4}).Validate(); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := (Config{BudgetBytes: 1, Policy: PolicyLRU}).Validate(); err == nil {
		t.Fatal("zero PrefixBlocks accepted on enabled cache")
	}
	if err := (Config{BudgetBytes: 1 << 20, Policy: PolicyZipfRank, PrefixBlocks: 4}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestLookupInsertBasics(t *testing.T) {
	c := lruCache(4, 2, 3)
	if c.Lookup(0, 0) {
		t.Fatal("hit on empty cache")
	}
	c.Insert(0, 0, 1)
	if !c.Contains(0, 0) || !c.Lookup(0, 0) {
		t.Fatal("inserted block not served")
	}
	// Non-prefix blocks are never cached and never counted.
	c.Insert(0, 5, 1)
	if c.Contains(0, 5) {
		t.Fatal("non-prefix block cached")
	}
	misses := c.Stats().Misses
	if c.Lookup(0, 5) {
		t.Fatal("hit on non-prefix block")
	}
	if c.Stats().Misses != misses {
		t.Fatal("non-prefix lookup counted as miss")
	}
	// Duplicate insert is a no-op.
	c.Insert(0, 0, 1)
	if got := c.Stats().Inserts; got != 1 {
		t.Fatalf("duplicate insert counted: %d", got)
	}
	if got := c.Used(); got != 1 {
		t.Fatalf("used = %d, want 1", got)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := lruCache(3, 8, 4)
	c.Insert(0, 0, 1)
	c.Insert(1, 0, 1)
	c.Insert(2, 0, 1)
	c.Lookup(0, 0) // refresh video 0; LRU victim is now video 1's block
	c.Insert(3, 0, 1)
	if c.Contains(1, 0) {
		t.Fatal("LRU kept the least recently used block")
	}
	for _, v := range []int{0, 2, 3} {
		if !c.Contains(v, 0) {
			t.Fatalf("LRU evicted wrong block (video %d missing)", v)
		}
	}
	if got := c.Stats().Evictions; got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
}

func TestZipfRankEvictsLeastPopularDeepestFirst(t *testing.T) {
	c := zipfCache(4, 8, 3)
	// Video 0 is popular (3 lookups), video 1 unpopular (1 lookup).
	c.Lookup(0, 0)
	c.Lookup(0, 0)
	c.Lookup(0, 0)
	c.Lookup(1, 0)
	c.Insert(0, 0, 1)
	c.Insert(0, 1, 1)
	c.Insert(1, 0, 1)
	c.Insert(1, 1, 1)
	// Full. The next insert must evict video 1's deepest block (1,1).
	c.Insert(0, 2, 1)
	if c.Contains(1, 1) {
		t.Fatal("zipf-rank kept the least-popular video's deepest block")
	}
	if !c.Contains(1, 0) {
		t.Fatal("zipf-rank evicted the prefix head instead of the tail")
	}
	// Again: victim is (1,0), video 1's last block.
	c.Insert(0, 3, 1)
	if c.Contains(1, 0) {
		t.Fatal("zipf-rank spared the least-popular video's remaining block")
	}
	for b := 0; b < 4; b++ {
		if !c.Contains(0, b) {
			t.Fatalf("popular video lost block %d", b)
		}
	}
}

func TestZipfRankTieBreaksTowardHigherVideoID(t *testing.T) {
	c := zipfCache(2, 8, 4)
	// No lookups at all: every video has rank count 0 (full tie).
	c.Insert(1, 0, 1)
	c.Insert(3, 0, 1)
	c.Insert(2, 0, 1) // forces one eviction: highest-id tied video is 3
	if c.Contains(3, 0) {
		t.Fatal("tie-break did not evict the highest video id")
	}
	if !c.Contains(1, 0) || !c.Contains(2, 0) {
		t.Fatal("tie-break evicted the wrong video")
	}
}

// TestPoliciesUnderSeededZipfStream drives both policies with the same
// seeded Zipf request stream and checks (a) determinism — identical
// replays give identical stats — and (b) the rank policy retains the
// hot head of the popularity distribution at least as well as LRU.
func TestPoliciesUnderSeededZipfStream(t *testing.T) {
	const (
		nVideos = 16
		prefix  = 4
		budget  = 8 // blocks
		draws   = 4000
	)
	run := func(policy PolicyKind) (Stats, *Cache) {
		cfg := Config{BudgetBytes: 1, Policy: policy, PrefixBlocks: prefix}
		c := New(cfg, budget, nVideos)
		src := rng.New(42).Derive("cache-test")
		zf := rng.NewZipf(nVideos, 1.2)
		blockSrc := src.Derive("block")
		for i := 0; i < draws; i++ {
			v := zf.Draw(src)
			b := blockSrc.Intn(prefix)
			if !c.Lookup(v, b) {
				c.Insert(v, b, 1)
			}
		}
		return c.Stats(), c
	}

	lruA, _ := run(PolicyLRU)
	lruB, _ := run(PolicyLRU)
	if lruA != lruB {
		t.Fatalf("LRU replay diverged: %+v vs %+v", lruA, lruB)
	}
	rankA, rankC := run(PolicyZipfRank)
	rankB, _ := run(PolicyZipfRank)
	if rankA != rankB {
		t.Fatalf("zipf-rank replay diverged: %+v vs %+v", rankA, rankB)
	}

	if rankA.Hits <= 0 || lruA.Hits <= 0 {
		t.Fatalf("degenerate stream: lru=%+v rank=%+v", lruA, rankA)
	}
	// Under z=1.2 skew the rank policy should hit at least as often as
	// LRU: it pins the head videos while LRU churns on recency.
	if rankA.Hits < lruA.Hits {
		t.Fatalf("zipf-rank hits %d below LRU hits %d under skewed stream", rankA.Hits, lruA.Hits)
	}
	// The most popular video's prefix must be fully resident at the end.
	for b := 0; b < prefix; b++ {
		if !rankC.Contains(0, b) {
			t.Fatalf("zipf-rank dropped hot prefix block %d", b)
		}
	}
}

func TestInsertLargerThanBudgetIgnored(t *testing.T) {
	c := lruCache(4, 8, 1)
	c.Insert(0, 0, 100)
	if c.Used() != 0 || c.Stats().Inserts != 0 {
		t.Fatalf("oversized insert accepted: used=%d", c.Used())
	}
}

func TestEvictionMakesRoomForLargerBlock(t *testing.T) {
	c := lruCache(4, 8, 2)
	c.Insert(0, 0, 2)
	c.Insert(1, 0, 2)
	c.Insert(0, 1, 3) // needs two evictions
	if !c.Contains(0, 1) {
		t.Fatal("large block not admitted after evictions")
	}
	if c.Used() != 3 {
		t.Fatalf("used = %d, want 3", c.Used())
	}
	if got := c.Stats().Evictions; got != 2 {
		t.Fatalf("evictions = %d, want 2", got)
	}
}

// Popularity churn: with decay off, zipf-rank ranks by lifetime counts,
// so a video that was a smash hit yesterday keeps outranking today's hit
// forever; with DecayEvery set, the stale count withers and the
// formerly-hot video's blocks become evictable.
func TestZipfRankDecayEvictsFormerlyHot(t *testing.T) {
	run := func(decay int64) *Cache {
		cfg := Config{BudgetBytes: 1, Policy: PolicyZipfRank, PrefixBlocks: 8, DecayEvery: decay}
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		c := New(cfg, 3, 2)
		// Video 0 is a smash hit and caches its prefix...
		for i := 0; i < 100; i++ {
			c.Lookup(0, 0)
		}
		c.Insert(0, 0, 1)
		c.Insert(0, 1, 1)
		// ...then its popularity collapses: all traffic moves to video 1.
		for i := 0; i < 80; i++ {
			c.Lookup(1, 0)
		}
		c.Insert(1, 0, 1)
		c.Insert(1, 1, 1) // full: someone must go
		return c
	}
	frozen := run(0)
	if !frozen.Contains(0, 1) || frozen.Contains(1, 0) {
		t.Fatal("without decay the lifetime counts must keep the stale hit resident and evict from the current one")
	}
	decayed := run(16)
	if decayed.Contains(0, 1) {
		t.Fatal("decay left the formerly-hot video's tail resident")
	}
	if !decayed.Contains(0, 0) || !decayed.Contains(1, 0) || !decayed.Contains(1, 1) {
		t.Fatal("decay evicted the wrong block: want the stale video's tail only")
	}
	if err := (Config{BudgetBytes: 1, Policy: PolicyZipfRank, PrefixBlocks: 1, DecayEvery: -1}).Validate(); err == nil {
		t.Fatal("negative DecayEvery validated")
	}
}
