package overload

import (
	"testing"

	"spiffi/internal/layout"
	"spiffi/internal/sim"
)

type fakeLimiter struct{ limit, active int }

func (f *fakeLimiter) SetLimit(n int) { f.limit = n }
func (f *fakeLimiter) Limit() int     { return f.limit }
func (f *fakeLimiter) Active() int    { return f.active }

type fakeStream struct{ degraded bool }

func (f *fakeStream) SetDegraded(on bool) { f.degraded = on }

func TestNormalizeDefaults(t *testing.T) {
	ref := sim.Second
	c := Config{AdmitLimit: 10, Adaptive: true, Shed: true}.Normalize(ref)
	if c.Patience != 10*sim.Second || c.RetryDelay != 5*sim.Second {
		t.Fatalf("admission defaults: patience=%v retry=%v", c.Patience, c.RetryDelay)
	}
	if c.Interval != sim.Second || c.SlackLow != ref || c.SlackHigh != 2*ref {
		t.Fatalf("estimator defaults: interval=%v low=%v high=%v", c.Interval, c.SlackLow, c.SlackHigh)
	}
	if c.Alpha != 0.1 || c.MinLimitFraction != 0.25 || c.QueueHigh != 16 {
		t.Fatalf("estimator defaults: alpha=%v minfrac=%v qhigh=%d", c.Alpha, c.MinLimitFraction, c.QueueHigh)
	}
	if c.ProtectedFraction != 0.5 {
		t.Fatalf("shed default: protected=%v", c.ProtectedFraction)
	}
	// The zero config stays zero: nothing is armed, nothing defaults.
	if z := (Config{}).Normalize(ref); z != (Config{}) {
		t.Fatalf("zero config normalized to %+v", z)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{AdmitLimit: -1},
		{RebuildRate: -1},
		{Adaptive: true},
		{Shed: true},
		{AdmitLimit: 4, ProtectedFraction: 1.5},
		{AdmitLimit: 4, Adaptive: true, Alpha: 2},
		{AdmitLimit: 4, Adaptive: true, MinLimitFraction: -0.1},
		{AdmitLimit: 4, Adaptive: true, Interval: -sim.Second},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d (%+v): expected validation error", i, c)
		}
	}
	good := Config{AdmitLimit: 4, Adaptive: true, Shed: true, RebuildRate: 1}.Normalize(sim.Second)
	if err := good.Validate(); err != nil {
		t.Fatalf("normalized config invalid: %v", err)
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config invalid: %v", err)
	}
}

func TestProtectedCount(t *testing.T) {
	cases := []struct {
		frac      float64
		terminals int
		want      int
	}{
		{0, 10, 10}, // accounting default: everyone protected
		{0.5, 10, 5},
		{0.5, 1, 1},
		{0.01, 10, 1}, // floor at one
		{1, 10, 10},
	}
	for _, c := range cases {
		got := Config{ProtectedFraction: c.frac}.ProtectedCount(c.terminals)
		if got != c.want {
			t.Fatalf("ProtectedCount(frac=%v, n=%d) = %d, want %d", c.frac, c.terminals, got, c.want)
		}
	}
}

// A controller built from a config without Adaptive or Shed must arm
// nothing: Start is a no-op and the kernel stays empty.
func TestZeroConfigArmsNothing(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	c := NewController(k, Config{}, 2)
	c.Start()
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if n := k.Events(); n != 0 {
		t.Fatalf("idle controller dispatched %d events", n)
	}
}

// Sustained low slack steps the limit down (to its floor, never below)
// and sheds unprotected streams from the highest id; recovered slack
// restores the shed streams and raises the limit back.
func TestControllerPressureAndRelax(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	cfg := Config{AdmitLimit: 16, Adaptive: true, Shed: true}.Normalize(sim.Second)
	c := NewController(k, cfg, 2)
	lim := &fakeLimiter{limit: 16, active: 16}
	c.SetLimiter(lim)
	streams := make([]Stream, 8)
	fakes := make([]*fakeStream, 8)
	for i := range streams {
		fakes[i] = &fakeStream{}
		streams[i] = fakes[i]
	}
	c.SetStreams(streams, 4) // ids 0..3 protected, 4..7 sheddable
	c.Start()

	feed := func(from, until sim.Duration, slack sim.Duration) {
		// Offset from the tick boundary so observation order is
		// unambiguous at every timestamp.
		for at := from + 100*sim.Millisecond; at < until; at += 200 * sim.Millisecond {
			k.At(sim.Time(at), func() { c.ObserveDispatch(0, slack, 2) })
		}
	}
	feed(0, 6*sim.Second, 100*sim.Millisecond) // far below SlackLow
	if err := k.Run(sim.Time(6*sim.Second + sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if lim.limit >= 16 || st.LimitMin != lim.limit {
		t.Fatalf("pressure never moved the limit: limit=%d min=%d", lim.limit, st.LimitMin)
	}
	if lim.limit < 4 {
		t.Fatalf("limit %d fell below the 25%% floor", lim.limit)
	}
	if c.Degraded() != 4 || st.ShedPeak != 4 || st.Sheds != 4 {
		t.Fatalf("shed state: degraded=%d peak=%d sheds=%d, want all 4 sheddable",
			c.Degraded(), st.ShedPeak, st.Sheds)
	}
	for i, f := range fakes {
		if want := i >= 4; f.degraded != want {
			t.Fatalf("stream %d degraded=%v, want %v (highest ids shed first)", i, f.degraded, want)
		}
	}

	feed(6*sim.Second, 14*sim.Second, 10*sim.Second) // far above SlackHigh
	if err := k.Run(sim.Time(14*sim.Second + sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if c.Degraded() != 0 || st.Restores != 4 {
		t.Fatalf("recovery left streams shed: degraded=%d restores=%d", c.Degraded(), st.Restores)
	}
	for i, f := range fakes {
		if f.degraded {
			t.Fatalf("stream %d still degraded after recovery", i)
		}
	}
	if lim.limit <= st.LimitMin {
		t.Fatalf("recovery never raised the limit: limit=%d min=%d", lim.limit, st.LimitMin)
	}
}

// Overlapping repairs of a mirror pair leave every copy of every block
// stale: there is no clean source anywhere, so the passes must park
// without re-copying anything — a rebuild from a stale mirror would
// resurrect frozen data and report the redundancy window closed over
// real loss.
func TestRebuilderNeverCopiesFromStaleSource(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	sizes := []int64{4 * 1024 * 1024}
	place := layout.NewStriped(sizes, 1024*1024, 1, 2)
	place.Mirror()
	var ios int
	r := NewRebuilder(k, place, 8*1024*1024, func(p *sim.Proc, g int, offset, size int64) bool {
		ios++
		return true
	})
	r.OnRepair(0, 10*sim.Second)
	r.OnRepair(1, 10*sim.Second)
	if err := k.Run(sim.Time(60 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Rebuilt != 0 || st.Windows != 0 || ios != 0 {
		t.Fatalf("rebuild copied from a stale mirror: rebuilt=%d windows=%d ios=%d",
			st.Rebuilt, st.Windows, ios)
	}
	for v := 0; v < place.NumVideos(); v++ {
		for b := 0; b < place.NumBlocks(v); b++ {
			for c := 0; c < place.Replicas(); c++ {
				if !r.IsStale(v, b, c) {
					t.Fatalf("copy (%d,%d,%d) cleared without a clean source", v, b, c)
				}
			}
		}
	}
}

// A pass whose source copies are stale defers those blocks and resumes
// once the mirror is rebuilt: the window only closes after every copy
// came from a clean source.
func TestRebuilderWaitsForStaleSource(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	sizes := []int64{4 * 1024 * 1024}
	place := layout.NewStriped(sizes, 1024*1024, 1, 2)
	place.Mirror()
	r := NewRebuilder(k, place, 8*1024*1024, func(p *sim.Proc, g int, offset, size int64) bool {
		return true
	})
	// Simulate an overlapping rebuild on the mirror disk: every copy on
	// disk 1 (the sources for disk 0's pass) is stale until t=30s.
	srcs := r.enumerate(1)
	for _, ref := range srcs {
		r.stale[ref] = true
	}
	r.OnRepair(0, 10*sim.Second)
	k.At(sim.Time(30*sim.Second), func() {
		for _, ref := range srcs {
			delete(r.stale, ref)
		}
	})
	if err := k.Run(sim.Time(20 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Rebuilt != 0 || st.Windows != 0 {
		t.Fatalf("pass progressed on stale sources: rebuilt=%d windows=%d", st.Rebuilt, st.Windows)
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Windows != 1 || st.Rebuilt == 0 || st.Aborts != 0 {
		t.Fatalf("pass never resumed after the sources cleared: %+v", st)
	}
	for _, ref := range r.enumerate(0) {
		if r.IsStale(ref.v, ref.b, ref.c) {
			t.Fatalf("copy %+v still stale after rebuild", ref)
		}
	}
}

// The rebuilder marks exactly the repaired disk's block copies stale,
// re-copies them in deterministic order, and closes the window: stats
// record downtime + rebuild duration.
func TestRebuilderMarksAndClears(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	sizes := []int64{4 * 1024 * 1024, 4 * 1024 * 1024}
	place := layout.NewStriped(sizes, 1024*1024, 2, 2)
	place.Mirror()
	var ios int
	r := NewRebuilder(k, place, 8*1024*1024, func(p *sim.Proc, g int, offset, size int64) bool {
		ios++
		return true
	})
	want := 0
	for v := 0; v < place.NumVideos(); v++ {
		for b := 0; b < place.NumBlocks(v); b++ {
			for c := 0; c < place.Replicas(); c++ {
				if place.LocateCopy(v, b, c).DiskGlobal == 0 {
					want++
				}
			}
		}
	}
	if want == 0 {
		t.Fatal("disk 0 holds no block copies; probe layout broken")
	}
	r.OnRepair(0, 10*sim.Second)
	// Every disk-0 copy is stale until its rebuild pass reaches it.
	stale := 0
	for v := 0; v < place.NumVideos(); v++ {
		for b := 0; b < place.NumBlocks(v); b++ {
			for c := 0; c < place.Replicas(); c++ {
				if r.IsStale(v, b, c) {
					if place.LocateCopy(v, b, c).DiskGlobal != 0 {
						t.Fatalf("copy (%d,%d,%d) off the repaired disk marked stale", v, b, c)
					}
					stale++
				}
			}
		}
	}
	if stale != want {
		t.Fatalf("stale copies = %d, want %d", stale, want)
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Windows != 1 || st.Rebuilt != int64(want) || st.Aborts != 0 {
		t.Fatalf("rebuild stats %+v, want %d blocks in one window", st, want)
	}
	if ios != 2*want {
		t.Fatalf("ios = %d, want %d (mirror read + target write per block)", ios, 2*want)
	}
	if st.WindowMax <= 10*sim.Second {
		t.Fatalf("window %v must exceed the 10s downtime it began with", st.WindowMax)
	}
	for v := 0; v < place.NumVideos(); v++ {
		for b := 0; b < place.NumBlocks(v); b++ {
			for c := 0; c < place.Replicas(); c++ {
				if r.IsStale(v, b, c) {
					t.Fatalf("copy (%d,%d,%d) still stale after rebuild", v, b, c)
				}
			}
		}
	}
}

// recordingLimiter captures the full SetLimit trajectory so step-response
// tests can assert on the limit's shape, not just its endpoints.
type recordingLimiter struct {
	limit      int
	trajectory []int
}

func (r *recordingLimiter) SetLimit(n int) { r.limit = n; r.trajectory = append(r.trajectory, n) }
func (r *recordingLimiter) Limit() int     { return r.limit }
func (r *recordingLimiter) Active() int    { return r.limit }

// directionChanges counts sign flips in a limit trajectory.
func directionChanges(start int, traj []int) int {
	changes, dir, prev := 0, 0, start
	for _, v := range traj {
		d := 0
		if v > prev {
			d = 1
		} else if v < prev {
			d = -1
		}
		if d != 0 && dir != 0 && d != dir {
			changes++
		}
		if d != 0 {
			dir = d
		}
		prev = v
	}
	return changes
}

// stepFeed replays the estimator's view of an abrupt 3x load step: deep
// pressure, then an oscillating drain (the EWMA alternately reads healthy
// and collapsed while the backlog clears), then steady recovery.
func stepFeed(k *sim.Kernel, c *Controller) {
	feed := func(from, until, slack sim.Duration) {
		for at := from + 100*sim.Millisecond; at < until; at += 200 * sim.Millisecond {
			k.At(sim.Time(at), func() { c.ObserveDispatch(0, slack, 2) })
		}
	}
	feed(0, 3*sim.Second, 50*sim.Millisecond)
	for block := 0; block < 3; block++ {
		base := sim.Duration(3+6*block) * sim.Second
		feed(base, base+3*sim.Second, 5*sim.Second)                    // briefly drained
		feed(base+3*sim.Second, base+6*sim.Second, 50*sim.Millisecond) // backlog returns
	}
	feed(21*sim.Second, 60*sim.Second, 5*sim.Second)
}

// Step response: under the oscillating drain of a 3x load step the
// hysteresis knobs (HoldAfterCut, RaiseStreak) keep the limit monotone —
// it only falls until the load is truly gone, never below the floor, and
// then climbs straight back to the configured maximum. The same feed
// without the knobs saws the limit up and down (the thrash they remove).
func TestControllerStepResponse(t *testing.T) {
	run := func(cfg Config) *recordingLimiter {
		k := sim.NewKernel()
		defer k.Close()
		c := NewController(k, cfg, 1)
		lim := &recordingLimiter{limit: cfg.AdmitLimit}
		c.SetLimiter(lim)
		c.Start()
		stepFeed(k, c)
		if err := k.Run(sim.Time(61 * sim.Second)); err != nil {
			t.Fatal(err)
		}
		return lim
	}

	base := Config{AdmitLimit: 16, Adaptive: true}.Normalize(sim.Second)
	hard := base
	hard.HoldAfterCut = 10 * sim.Second
	hard.RaiseStreak = 3

	lim := run(hard)
	if len(lim.trajectory) == 0 {
		t.Fatal("limit never moved under a 3x step")
	}
	floor := 4 // 25% of 16
	for _, v := range lim.trajectory {
		if v < floor {
			t.Fatalf("limit %d fell below the floor %d: %v", v, floor, lim.trajectory)
		}
	}
	if n := directionChanges(16, lim.trajectory); n != 1 {
		t.Fatalf("hardened trajectory changed direction %d times, want exactly 1 (down, then up): %v",
			n, lim.trajectory)
	}
	if lim.limit != 16 {
		t.Fatalf("limit converged to %d after recovery, want back at 16: %v", lim.limit, lim.trajectory)
	}

	soft := run(base)
	if n := directionChanges(16, soft.trajectory); n < 2 {
		t.Fatalf("expected the un-hysteresed controller to thrash on this feed (got %d direction changes: %v); the step-response scenario no longer discriminates",
			n, soft.trajectory)
	}
}

// The hysteresis knobs' zero values change nothing: both configs must
// produce the identical trajectory on the identical feed.
func TestControllerHysteresisZeroInert(t *testing.T) {
	run := func(cfg Config) []int {
		k := sim.NewKernel()
		defer k.Close()
		c := NewController(k, cfg, 1)
		lim := &recordingLimiter{limit: cfg.AdmitLimit}
		c.SetLimiter(lim)
		c.Start()
		stepFeed(k, c)
		if err := k.Run(sim.Time(61 * sim.Second)); err != nil {
			t.Fatal(err)
		}
		return lim.trajectory
	}
	base := Config{AdmitLimit: 16, Adaptive: true}.Normalize(sim.Second)
	streak1 := base
	streak1.RaiseStreak = 1 // documented as identical to the default
	a, b := run(base), run(streak1)
	if len(a) != len(b) {
		t.Fatalf("RaiseStreak=1 changed the trajectory: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("RaiseStreak=1 changed the trajectory at %d: %v vs %v", i, a, b)
		}
	}
}
