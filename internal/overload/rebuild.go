// Rate-limited mirror rebuild. When a disk repairs after a fail-stop
// its contents are stale: every block copy it held was frozen at the
// failure and may have been superseded (in a real system the drive is
// replaced outright). With RebuildRate > 0 the rebuilder models this
// window of vulnerability explicitly — repaired copies NACK demand
// reads until a background pass has re-copied them from their healthy
// mirror, paced at the configured byte rate and issued through the
// non-real-time queue class so real-time traffic keeps priority.
package overload

import (
	"fmt"

	"spiffi/internal/layout"
	"spiffi/internal/sim"
	"spiffi/internal/trace"
)

// blockRef names one copy of one block.
type blockRef struct{ v, b, c int }

// RebuildStats aggregates rebuild progress for core.Metrics.
type RebuildStats struct {
	Windows   int64        // completed rebuilds (closed redundancy windows)
	WindowSum sim.Duration // total window of vulnerability (downtime + rebuild)
	WindowMax sim.Duration
	Rebuilt   int64 // block copies re-copied
	Aborts    int64 // rebuild passes cut short by the disk re-failing
}

// IOFunc performs one rebuild transfer (a mirror read or a
// reconstruction write) on a disk and reports success. Wired by core
// to Node.RebuildIO; it blocks the calling proc for the disk service
// time and fails when the disk is down.
type IOFunc func(p *sim.Proc, diskGlobal int, offset, size int64) bool

// Rebuilder tracks stale block copies and runs one paced rebuild pass
// per disk repair. Deterministic: block enumeration is in (video,
// block, copy) order and pacing is pure arithmetic.
type Rebuilder struct {
	k     *sim.Kernel
	place *layout.Placement
	rate  int64 // bytes per second
	io    IOFunc
	rec   *trace.Recorder

	stale map[blockRef]bool
	epoch []uint64 // per disk; bumped each repair so superseded passes exit
	stats RebuildStats
}

// NewRebuilder builds a rebuilder over the placement's disks.
func NewRebuilder(k *sim.Kernel, place *layout.Placement, rate int64, io IOFunc) *Rebuilder {
	return &Rebuilder{
		k:     k,
		place: place,
		rate:  rate,
		io:    io,
		stale: make(map[blockRef]bool),
		epoch: make([]uint64, place.TotalDisks()),
	}
}

// SetTrace wires the event recorder (nil is fine).
func (r *Rebuilder) SetTrace(rec *trace.Recorder) { r.rec = rec }

// IsStale reports whether a block copy is awaiting rebuild. The
// server NACKs demand reads of stale copies (unless buffered), which
// the terminals' retry machinery fails over to the healthy mirror.
func (r *Rebuilder) IsStale(video, block, copy int) bool {
	return r.stale[blockRef{video, block, copy}]
}

// Stats returns the rebuild counters.
func (r *Rebuilder) Stats() RebuildStats { return r.stats }

// OnRepair marks every block copy resident on the repaired disk stale
// and spawns the paced rebuild pass. Wired to disk.SetRepairHook;
// downtime is the outage the window of vulnerability started with. A
// repeat failure mid-rebuild bumps the epoch, aborting the old pass —
// the next repair restarts over the full (re-marked) set.
func (r *Rebuilder) OnRepair(diskGlobal int, downtime sim.Duration) {
	r.epoch[diskGlobal]++
	e := r.epoch[diskGlobal]
	refs := r.enumerate(diskGlobal)
	for _, ref := range refs {
		r.stale[ref] = true
	}
	r.rec.RebuildStart(diskGlobal, len(refs))
	start := r.k.Now()
	r.k.Spawn(fmt.Sprintf("rebuild-%d", diskGlobal), func(p *sim.Proc) {
		r.run(p, diskGlobal, e, refs, downtime, start)
	})
}

// enumerate lists the block copies stored on one disk in deterministic
// (video, block, copy) order.
func (r *Rebuilder) enumerate(diskGlobal int) []blockRef {
	var refs []blockRef
	for v := 0; v < r.place.NumVideos(); v++ {
		for b := 0; b < r.place.NumBlocks(v); b++ {
			for c := 0; c < r.place.Replicas(); c++ {
				if r.place.LocateCopy(v, b, c).DiskGlobal == diskGlobal {
					refs = append(refs, blockRef{v, b, c})
				}
			}
		}
	}
	return refs
}

func (r *Rebuilder) run(p *sim.Proc, diskGlobal int, epoch uint64, refs []blockRef, downtime sim.Duration, start sim.Time) {
	rebuilt := 0
	for _, ref := range refs {
		target := r.place.LocateCopy(ref.v, ref.b, ref.c)
		// The pacing sleep is the rate limit; the disk I/O time rides
		// on top, so the configured rate is an upper bound.
		p.Sleep(sim.DurationOfSeconds(float64(target.Size) / float64(r.rate)))
		if r.epoch[diskGlobal] != epoch {
			return // superseded by a later repair
		}
		srcRef := blockRef{ref.v, ref.b, (ref.c + 1) % r.place.Replicas()}
		src := r.place.LocateCopy(srcRef.v, srcRef.b, srcRef.c)
		for r.stale[srcRef] || !r.io(p, src.DiskGlobal, src.Offset, src.Size) {
			// Mirror source unusable: stale from an overlapping rebuild
			// (copying it would spread frozen data and report the window
			// closed over real loss) or its disk is down. Wait for it to
			// become clean and readable; if both copies of a block are
			// stale — overlapping failures of a mirror pair — the data is
			// genuinely gone, the pass parks here and the window stays
			// open, so demand reads keep NACKing and the loss shows up in
			// StaleNacks/LostBlocks instead of being papered over.
			p.Sleep(sim.Second)
			if r.epoch[diskGlobal] != epoch {
				return
			}
		}
		if r.epoch[diskGlobal] != epoch {
			return
		}
		if !r.io(p, diskGlobal, target.Offset, target.Size) {
			// Target re-failed mid-pass; the next repair starts over.
			r.stats.Aborts++
			return
		}
		if r.epoch[diskGlobal] != epoch {
			return
		}
		delete(r.stale, ref)
		rebuilt++
		r.stats.Rebuilt++
	}
	window := downtime + r.k.Now().Sub(start)
	r.stats.Windows++
	r.stats.WindowSum += window
	if window > r.stats.WindowMax {
		r.stats.WindowMax = window
	}
	r.rec.RebuildDone(diskGlobal, rebuilt, window)
}
