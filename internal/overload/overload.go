// Package overload implements the adaptive overload-control and
// recovery subsystem: a measurement-based capacity estimator driving
// the admission controller's limit, graceful load shedding of
// low-priority streams, and rate-limited mirror rebuild after disk
// repair (rebuild.go).
//
// The estimator follows the paper's §4 argument that sustainable load
// must be measured, not precomputed: per-disk deadline slack (how much
// margin each demand read has left when it reaches the disk arm) and
// queue depth are smoothed with an EWMA; when the worst disk's slack
// collapses below SlackLow the system is treated as over capacity —
// the admission limit is stepped down and the lowest-priority active
// streams are downshifted to degraded mode — and when slack recovers
// above SlackHigh the limit is raised and shed streams are restored.
//
// The controller also owns the rejoin warm-up (SetRejoinWarmup,
// NoteRejoin): after a crashed node restarts, its disks return with
// cold buffer pools and a backlog of redirected sessions, so the
// measured slack briefly looks healthy while the rejoining node is
// still fragile. For the configured warm-up the estimator suppresses
// limit *raises* — lowers and sheds still apply, and shed-stream
// restores are unaffected (they return capacity to streams already
// admitted) — letting the node refill its pool before new load is
// admitted against it.
//
// Everything here is deterministic: the controller consumes no
// randomness, and a zero Config arms no timers and changes nothing, so
// runs without overload control reproduce earlier builds bit for bit.
package overload

import (
	"fmt"

	"spiffi/internal/sim"
	"spiffi/internal/trace"
)

// Config configures the overload-control subsystem. The zero value
// disables everything: no admission gate, no controller ticks, no
// rebuild, no RNG draws.
type Config struct {
	// AdmitLimit caps concurrently playing streams (0 = admission
	// control off). With Adaptive set this is the starting and maximum
	// limit; the estimator moves the live limit below it under
	// pressure.
	AdmitLimit int
	// Adaptive lets the capacity estimator adjust the admission limit
	// at runtime.
	Adaptive bool
	// Patience bounds how long a stream waits in the admission queue
	// before it is rejected with a NACK (default 10s when AdmitLimit
	// is set; <0 = wait forever).
	Patience sim.Duration
	// RetryDelay is the base delay before a rejected stream asks for
	// admission again (default 5s; terminals add derived-stream jitter
	// on top so rejected streams do not retry in lockstep).
	RetryDelay sim.Duration

	// Shed enables graceful load shedding: under pressure the
	// controller downshifts the highest-numbered (lowest-priority)
	// active streams to degraded mode, restoring them when slack
	// recovers.
	Shed bool
	// ProtectedFraction is the fraction of terminals (lowest ids
	// first) that are never shed and whose glitches are reported as
	// Metrics.GlitchesProtected. Pure accounting plus a shed floor:
	// setting it alone arms nothing. Defaults to 0.5 when Shed is set.
	ProtectedFraction float64

	// Interval is the estimator's decision period (default 1s).
	Interval sim.Duration
	// SlackLow/SlackHigh are the pressure and recovery thresholds on
	// the worst per-disk slack EWMA. Defaults: 1x and 2x the stripe
	// play time (filled by Normalize from the reference duration).
	// Steady-state dispatch slack is bounded by how far ahead the
	// terminal buffer lets streams request (a few stripe play times),
	// so a recovery threshold much above 2x is never reached even by a
	// healthy system.
	SlackLow  sim.Duration
	SlackHigh sim.Duration
	// Alpha is the EWMA smoothing weight (default 0.1).
	Alpha float64
	// MinLimitFraction floors the adaptive limit at this fraction of
	// AdmitLimit (default 0.25).
	MinLimitFraction float64
	// QueueHigh is the smoothed disk queue depth treated as pressure
	// even when slack still looks healthy (default 16).
	QueueHigh int

	// HoldAfterCut suppresses limit raises for this long after each
	// limit cut (0 = none). Under a step-function load increase the
	// EWMA briefly reads healthy between cuts; without a hold the limit
	// saws up and down while the backlog drains. Shed-stream restores
	// are unaffected, as with the rejoin warm-up.
	HoldAfterCut sim.Duration
	// RaiseStreak requires this many consecutive recovery-qualified
	// ticks before the limit is raised (0 or 1 = raise on the first,
	// the historical behavior). Any pressure or neutral tick resets
	// the streak.
	RaiseStreak int

	// RebuildRate paces background mirror reconstruction after a disk
	// repair, in bytes of re-copied data per second (0 = rebuild off;
	// repaired disks then rejoin with their contents intact, as in
	// builds predating this package). Requires replicated videos.
	RebuildRate int64
}

// Enabled reports whether any overload mechanism is active.
func (c Config) Enabled() bool { return c.AdmitLimit > 0 || c.RebuildRate > 0 }

// Normalize fills defaults. ref is the stripe play time, the natural
// slack unit: a demand read whose deadline is less than one block's
// play time away is about to miss.
func (c Config) Normalize(ref sim.Duration) Config {
	if c.AdmitLimit > 0 {
		if c.Patience == 0 {
			c.Patience = 10 * sim.Second
		}
		if c.RetryDelay == 0 {
			c.RetryDelay = 5 * sim.Second
		}
	}
	if c.Shed && c.ProtectedFraction == 0 {
		c.ProtectedFraction = 0.5
	}
	if c.Adaptive || c.Shed {
		if c.Interval == 0 {
			c.Interval = sim.Second
		}
		if c.SlackLow == 0 {
			c.SlackLow = ref
		}
		if c.SlackHigh == 0 {
			c.SlackHigh = 2 * ref
		}
		if c.Alpha == 0 {
			c.Alpha = 0.1
		}
		if c.MinLimitFraction == 0 {
			c.MinLimitFraction = 0.25
		}
		if c.QueueHigh == 0 {
			c.QueueHigh = 16
		}
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.AdmitLimit < 0 || c.RebuildRate < 0 {
		return fmt.Errorf("overload: negative limit or rebuild rate")
	}
	if (c.Adaptive || c.Shed) && c.AdmitLimit == 0 {
		return fmt.Errorf("overload: adaptive/shed control needs AdmitLimit > 0")
	}
	if c.ProtectedFraction < 0 || c.ProtectedFraction > 1 {
		return fmt.Errorf("overload: ProtectedFraction %v outside [0,1]", c.ProtectedFraction)
	}
	if c.MinLimitFraction < 0 || c.MinLimitFraction > 1 {
		return fmt.Errorf("overload: MinLimitFraction %v outside [0,1]", c.MinLimitFraction)
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return fmt.Errorf("overload: Alpha %v outside [0,1]", c.Alpha)
	}
	if c.Interval < 0 || c.SlackLow < 0 || c.SlackHigh < 0 || c.HoldAfterCut < 0 {
		return fmt.Errorf("overload: negative estimator duration")
	}
	if c.RaiseStreak < 0 {
		return fmt.Errorf("overload: RaiseStreak %d negative", c.RaiseStreak)
	}
	return nil
}

// ProtectedCount returns how many terminals (ids 0..n-1) are
// protected: never shed, and counted in GlitchesProtected. With no
// fraction configured every terminal is protected.
func (c Config) ProtectedCount(terminals int) int {
	if c.ProtectedFraction <= 0 {
		return terminals
	}
	p := int(c.ProtectedFraction * float64(terminals))
	if p < 1 {
		p = 1
	}
	if p > terminals {
		p = terminals
	}
	return p
}

// Limiter is the admission-controller surface the estimator drives
// (implemented by admission.Controller).
type Limiter interface {
	SetLimit(n int)
	Limit() int
	Active() int
}

// Stream is a shedable video stream (implemented by
// terminal.Terminal). SetDegraded(true) halves its block rate.
type Stream interface {
	SetDegraded(on bool)
}

// Stats aggregates the controller's decisions for core.Metrics.
type Stats struct {
	Sheds    int64 // individual stream downshifts
	Restores int64 // individual stream upshifts
	LimitMin int   // lowest admission limit reached
	ShedPeak int   // most streams degraded at once
}

// Controller is the EWMA capacity estimator. It observes every demand
// dispatch on every disk (ObserveDispatch, wired through disk
// observers), and once per Interval compares the worst smoothed slack
// against the thresholds to move the admission limit and the shed
// set. Streams are shed from the highest id down; ids below the
// protected count are never shed.
type Controller struct {
	k   *sim.Kernel
	cfg Config
	rec *trace.Recorder

	lim       Limiter
	streams   []Stream
	protected int

	slack []sim.Duration // per-disk smoothed deadline slack
	seen  []bool         // disk dispatched since last tick
	init  []bool         // slack EWMA has a first sample
	qlen  float64        // smoothed queue depth across dispatches

	degraded int // streams currently shed, from the top of the id range
	running  bool
	stats    Stats

	// Step-response hysteresis (HoldAfterCut / RaiseStreak): raises are
	// held until holdUntil after a cut, and healthy counts consecutive
	// recovery-qualified ticks.
	holdUntil sim.Time
	healthy   int

	// Rejoin warm-up: after a crashed node restarts, raising the
	// admission limit is suppressed until warmupUntil so the rejoining
	// node (serving cold caches and a stale-mirror rebuild) is not
	// instantly re-saturated by a wave of new admissions. Shed-stream
	// restores are unaffected — they return capacity to streams already
	// admitted.
	warmup      sim.Duration
	warmupUntil sim.Time
}

// NewController builds an estimator over disks total disks. The
// limiter and stream set are wired separately (SetLimiter,
// SetStreams); Start arms the tick chain.
func NewController(k *sim.Kernel, cfg Config, disks int) *Controller {
	return &Controller{
		k:     k,
		cfg:   cfg,
		slack: make([]sim.Duration, disks),
		seen:  make([]bool, disks),
		init:  make([]bool, disks),
		stats: Stats{LimitMin: cfg.AdmitLimit},
	}
}

// SetTrace wires the event recorder (nil is fine).
func (c *Controller) SetTrace(rec *trace.Recorder) { c.rec = rec }

// SetLimiter wires the admission controller the estimator drives.
func (c *Controller) SetLimiter(lim Limiter) { c.lim = lim }

// SetStreams wires the shedable stream set in priority order (index =
// terminal id; higher ids shed first). The first protected streams
// are never shed.
func (c *Controller) SetStreams(streams []Stream, protected int) {
	c.streams = streams
	c.protected = protected
}

// Start arms the estimator's tick chain. Core calls it when the
// measurement window opens: during warm-up every stream is priming
// with near-zero slack, which would read as overload. Starting at
// measure open also resets the EWMAs so the estimate reflects steady
// state only. Idempotent.
func (c *Controller) Start() {
	if c.running || !(c.cfg.Adaptive || c.cfg.Shed) {
		return
	}
	c.running = true
	for i := range c.init {
		c.init[i] = false
		c.seen[i] = false
	}
	c.qlen = 0
	c.k.After(c.cfg.Interval, c.tick)
}

// SetRejoinWarmup sets how long after a node rejoin the estimator
// holds the admission limit down (0 = no warm-up).
func (c *Controller) SetRejoinWarmup(d sim.Duration) { c.warmup = d }

// NoteRejoin records a node restart (wired from the server's restart
// hook), opening the warm-up window during which relax() will not
// raise the admission limit.
func (c *Controller) NoteRejoin() {
	if c.warmup <= 0 {
		return
	}
	if until := c.k.Now().Add(c.warmup); until > c.warmupUntil {
		c.warmupUntil = until
	}
}

// ObserveDispatch feeds one demand-read dispatch: the deadline slack
// remaining when the request reached the disk arm, and the queue
// depth behind it. Called from the disk layer; prefetches and
// infinite-deadline requests are filtered out there.
func (c *Controller) ObserveDispatch(disk int, slack sim.Duration, qlen int) {
	a := c.cfg.Alpha
	if !c.init[disk] {
		c.slack[disk] = slack
		c.init[disk] = true
	} else {
		c.slack[disk] = sim.Duration((1-a)*float64(c.slack[disk]) + a*float64(slack))
	}
	c.seen[disk] = true
	c.qlen = (1-a)*c.qlen + a*float64(qlen)
}

// Stats returns the decision counters.
func (c *Controller) Stats() Stats { return c.stats }

// Degraded returns how many streams are currently shed.
func (c *Controller) Degraded() int { return c.degraded }

func (c *Controller) tick() {
	worst := sim.Duration(1<<63 - 1)
	any := false
	for i := range c.slack {
		if !c.seen[i] {
			continue // idle or dead disks carry no capacity signal
		}
		c.seen[i] = false
		any = true
		if c.slack[i] < worst {
			worst = c.slack[i]
		}
	}
	if any {
		switch {
		case worst < c.cfg.SlackLow || c.qlen > float64(c.cfg.QueueHigh):
			c.healthy = 0
			c.pressure(worst)
		case worst > c.cfg.SlackHigh && c.qlen < float64(c.cfg.QueueHigh)/2:
			c.healthy++
			c.relax(worst)
		default:
			c.healthy = 0
		}
	} else {
		c.healthy = 0
	}
	c.k.After(c.cfg.Interval, c.tick)
}

// pressure steps the admission limit down and sheds more streams.
func (c *Controller) pressure(worst sim.Duration) {
	if c.cfg.Adaptive && c.lim != nil {
		cur := c.lim.Limit()
		floor := int(float64(c.cfg.AdmitLimit) * c.cfg.MinLimitFraction)
		if floor < 1 {
			floor = 1
		}
		next := cur - max(1, cur/8)
		if next < floor {
			next = floor
		}
		if next < cur {
			c.lim.SetLimit(next)
			c.rec.OverLimit(next, cur, worst)
			if next < c.stats.LimitMin {
				c.stats.LimitMin = next
			}
			if c.cfg.HoldAfterCut > 0 {
				c.holdUntil = c.k.Now().Add(c.cfg.HoldAfterCut)
			}
		}
	}
	if c.cfg.Shed {
		sheddable := len(c.streams) - c.protected
		step := max(1, sheddable/8)
		for i := 0; i < step && c.degraded < sheddable; i++ {
			id := len(c.streams) - 1 - c.degraded
			c.streams[id].SetDegraded(true)
			c.degraded++
			c.stats.Sheds++
			c.rec.OverShed(id, c.degraded, c.limit(), worst)
			if c.degraded > c.stats.ShedPeak {
				c.stats.ShedPeak = c.degraded
			}
		}
	}
}

// relax restores shed streams and steps the limit back up.
func (c *Controller) relax(worst sim.Duration) {
	if c.cfg.Shed {
		sheddable := len(c.streams) - c.protected
		step := max(1, sheddable/8)
		for i := 0; i < step && c.degraded > 0; i++ {
			c.degraded--
			id := len(c.streams) - 1 - c.degraded
			c.streams[id].SetDegraded(false)
			c.stats.Restores++
			c.rec.OverRestore(id, c.degraded, c.limit(), worst)
		}
	}
	if c.cfg.Adaptive && c.lim != nil {
		if c.k.Now() < c.warmupUntil {
			return // rejoin warm-up: hold the limit down
		}
		if c.k.Now() < c.holdUntil || c.healthy < c.cfg.RaiseStreak {
			return // post-cut hold / recovery streak not yet earned
		}
		cur := c.lim.Limit()
		next := cur + max(1, c.cfg.AdmitLimit/16)
		if next > c.cfg.AdmitLimit {
			next = c.cfg.AdmitLimit
		}
		if next > cur {
			c.lim.SetLimit(next)
			c.rec.OverLimit(next, cur, worst)
		}
	}
}

func (c *Controller) limit() int {
	if c.lim == nil {
		return 0
	}
	return c.lim.Limit()
}
