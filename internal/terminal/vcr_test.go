package terminal

import (
	"testing"

	"spiffi/internal/sim"
)

func vcrCfg(skim bool) Config {
	cfg := baseCfg()
	cfg.RandomInitialPosition = false
	cfg.VCR = &VCRConfig{
		MeanSeeksPerMovie: 6,
		MeanDistanceFrac:  0.2,
		ForwardProb:       0.5,
	}
	if skim {
		cfg.VCR.Skim = true
		cfg.VCR.SkimStrideBlocks = 4
		cfg.VCR.SkimSegmentFrames = 15
	}
	return cfg
}

func TestSeeksExecuteAndMovieCompletes(t *testing.T) {
	r := newRig(t, vcrCfg(false), 10*sim.Millisecond)
	r.term.Start(0)
	if err := r.k.Run(sim.Time(3 * sim.Minute)); err != nil {
		t.Fatal(err)
	}
	defer r.k.Close()
	st := r.term.Stats()
	if st.Seeks == 0 {
		t.Fatal("no seeks executed despite VCR workload")
	}
	if st.MoviesCompleted < 1 {
		t.Fatalf("movie never completed across seeks (seeks=%d glitches=%d)",
			st.Seeks, st.GlitchesTotal)
	}
	if st.GlitchesTotal != 0 {
		t.Fatalf("seeking caused %d glitches with a fast server", st.GlitchesTotal)
	}
	if st.SeekRePrimeMax <= 0 {
		t.Fatal("seek re-prime latency not recorded")
	}
	// A few-second re-prime at most, per §8.1's "at most a few seconds".
	if st.SeekRePrimeMax > sim.Duration(5*sim.Second) {
		t.Fatalf("seek re-prime latency %v implausibly high for a 10ms server", st.SeekRePrimeMax)
	}
}

func TestSkimFetchesSampledBlocks(t *testing.T) {
	r := newRig(t, vcrCfg(true), 10*sim.Millisecond)
	r.term.Start(0)
	if err := r.k.Run(sim.Time(5 * sim.Minute)); err != nil {
		t.Fatal(err)
	}
	defer r.k.Close()
	st := r.term.Stats()
	if st.Seeks == 0 {
		t.Fatal("no seeks")
	}
	if st.SkimBlocks == 0 {
		t.Fatal("visual search fetched no sampled blocks")
	}
	if st.MoviesCompleted < 1 {
		t.Fatal("movie never completed")
	}
}

func TestStaleRepliesDroppedAfterBackwardSeek(t *testing.T) {
	// Force a deterministic backward seek by slowing delivery so that
	// requests are in flight when the seek fires.
	cfg := baseCfg()
	cfg.RandomInitialPosition = false
	cfg.VCR = &VCRConfig{MeanSeeksPerMovie: 10, MeanDistanceFrac: 0.4, ForwardProb: 0}
	r := newRig(t, cfg, 60*sim.Millisecond)
	r.term.Start(0)
	if err := r.k.Run(sim.Time(4 * sim.Minute)); err != nil {
		t.Fatal(err)
	}
	defer r.k.Close()
	st := r.term.Stats()
	if st.Seeks == 0 {
		t.Fatal("no seeks")
	}
	// The movie must still make progress (backward seeks re-watch data).
	if st.BlocksReceived == 0 {
		t.Fatal("no data flowed")
	}
}

func TestRepositionRestartsStreamCleanly(t *testing.T) {
	// Unit-level check of repositionTo: the buffer is emptied (the §8.1
	// re-prime semantics) and fetching restarts at the target block.
	r := newRig(t, baseCfg(), 10*sim.Millisecond)
	defer r.k.Close()
	term := r.term
	r.k.Spawn("setup", func(p *sim.Proc) {
		term.startMovie(0)
		term.ooo[10] = 256 * 1024
		term.ooo[3] = 256 * 1024
		term.oooBytes = 2 * 256 * 1024
		term.nextReq = 12
		term.repositionTo(10)
		if term.frontierBlocks != 10 {
			t.Errorf("frontier = %d, want 10", term.frontierBlocks)
		}
		if term.nextReq != 10 {
			t.Errorf("nextReq = %d, want 10 (fetch restarts at the target)", term.nextReq)
		}
		if len(term.ooo) != 0 || term.oooBytes != 0 {
			t.Errorf("ooo not cleared: %v (%d bytes)", term.ooo, term.oooBytes)
		}
		if term.BufferedBytes() < 0 {
			t.Errorf("negative buffered bytes")
		}
	})
	if err := r.k.Run(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonMean(t *testing.T) {
	r := newRig(t, baseCfg(), sim.Millisecond)
	defer r.k.Close()
	sum := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		sum += r.term.poisson(3.0)
	}
	mean := float64(sum) / draws
	if mean < 2.9 || mean > 3.1 {
		t.Fatalf("poisson(3) sample mean = %v", mean)
	}
}
