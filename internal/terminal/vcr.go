package terminal

import (
	"math"

	"spiffi/internal/proto"
	"spiffi/internal/sim"
)

// VCRConfig enables the §8.1 interactive operations beyond pause:
// rewind and fast-forward. Each playback performs a Poisson-distributed
// number of seeks at uniformly random positions. A seek jumps an
// exponentially distributed distance (as a fraction of the video),
// forward with probability ForwardProb, then re-primes and resumes —
// the paper's basic scheme. With Skim enabled the terminal additionally
// implements the paper's "visual search": while traversing to the
// target it fetches and briefly displays one block out of every
// SkimStrideBlocks, producing the choppy scan picture without reading
// the skipped video.
type VCRConfig struct {
	MeanSeeksPerMovie float64
	MeanDistanceFrac  float64 // mean seek distance as a fraction of the video
	ForwardProb       float64 // probability a seek goes forward (else rewind)

	Skim              bool
	SkimStrideBlocks  int // sample one block per this many blocks traversed
	SkimSegmentFrames int // frames displayed per sampled block
}

// drawSeeks samples this playback's seek schedule (mirrors drawPauses).
func (t *Terminal) drawSeeks() {
	t.seekFrames = t.seekFrames[:0]
	vc := t.cfg.VCR
	if vc == nil || vc.MeanSeeksPerMovie <= 0 {
		return
	}
	if t.video.NumFrames() <= 0 {
		return // degenerate empty video: nowhere to seek
	}
	mean := vc.MeanSeeksPerMovie
	if t.cfg.SeekBoost != nil {
		// VCR-interaction storm: the workload layer scales this movie's
		// seek intensity by the current phase's boost factor.
		mean *= t.cfg.SeekBoost()
	}
	n := t.poisson(mean)
	for i := 0; i < n; i++ {
		t.seekFrames = append(t.seekFrames, t.src.Intn(t.video.NumFrames()))
	}
	for i := 1; i < len(t.seekFrames); i++ {
		for j := i; j > 0 && t.seekFrames[j] < t.seekFrames[j-1]; j-- {
			t.seekFrames[j], t.seekFrames[j-1] = t.seekFrames[j-1], t.seekFrames[j]
		}
	}
}

// doSeek executes one rewind/fast-forward: optional visual-search skim,
// then repositioning. The caller (playMovie) re-primes afterwards.
func (t *Terminal) doSeek(p *sim.Proc) {
	// A seek ends any merge involvement: a repositioned leader no longer
	// paces its followers, and a repositioned follower leaves the
	// forwarded stream behind.
	t.leaveMerge(true)
	vc := t.cfg.VCR
	blockSize := t.place.BlockSize()
	cur := int(t.video.BytesBeforeFrame(t.consumedFrames) / blockSize)

	distBlocks := int(t.src.Exp(vc.MeanDistanceFrac * float64(t.nblocks)))
	if distBlocks < 1 {
		distBlocks = 1
	}
	dir := 1
	if t.src.Float64() >= vc.ForwardProb {
		dir = -1
	}
	// Clamp high before low: with a one-block video nblocks-2 is -1, and
	// the old low-then-high order let the high clamp reintroduce a
	// negative target (repositionTo(-1) corrupted the frontier). For
	// nblocks >= 2 at most one clamp can fire, so the order is
	// behavior-identical there.
	target := cur + dir*distBlocks
	if target > t.nblocks-2 {
		target = t.nblocks - 2
	}
	if target < 0 {
		target = 0
	}

	t.stats.Seeks++
	t.seekStarted = t.k.Now()
	t.rec.TermSeek(t.id, t.vid, target)

	if vc.Skim && vc.SkimStrideBlocks > 0 && target != cur {
		step := vc.SkimStrideBlocks * dir
		for b := cur + step; (dir > 0 && b < target) || (dir < 0 && b > target); b += step {
			t.fetchSkimBlock(p, b)
		}
	}
	t.repositionTo(target)
}

// fetchSkimBlock fetches one sampled block for the visual search and
// "displays" its segment. The block bypasses the playout buffer — it is
// shown immediately and discarded, like a scrub preview.
func (t *Terminal) fetchSkimBlock(p *sim.Proc, block int) {
	addr := t.place.Locate(t.vid, block)
	done := sim.NewEvent(t.k)
	segTime := sim.Duration(t.cfg.VCR.SkimSegmentFrames) * t.video.FramePeriod()
	req := &proto.BlockRequest{
		Video:    t.vid,
		Block:    block,
		Size:     t.place.SizeOfBlock(t.vid, block),
		Deadline: t.k.Now().Add(segTime),
		Terminal: t.id,
		Deliver:  func(*proto.BlockRequest) { done.Fire() },
		Issued:   t.k.Now(),
	}
	if t.cfg.SendLatency > 0 {
		p.Sleep(t.cfg.SendLatency)
	}
	t.send(addr.Node, req)
	if t.cfg.RequestTimeout > 0 {
		// Failsafe under message loss: skim blocks are best-effort and
		// not retried, but the player must not hang forever on one.
		t.k.After(t.cfg.RequestTimeout*sim.Duration(t.cfg.MaxRetries+1), done.Fire)
	}
	done.Wait(p)
	t.stats.SkimBlocks++
	p.Sleep(segTime)
}

// repositionTo moves the playback position to a block boundary and
// discards all buffered data — the paper's §8.1 semantics: a seek
// re-primes the terminal's buffers from the new position. Replies still
// in flight for the old position are dropped on arrival (StaleDrops).
func (t *Terminal) repositionTo(block int) {
	// Forget in-flight requests the retry machinery tracks: their replies
	// are unwanted now, and the fetcher re-requests what the new position
	// needs. (No-op when RequestTimeout is zero — in-flight replies then
	// resolve their own accounting on arrival, as they always have.)
	t.cancelPending()
	blockSize := t.place.BlockSize()
	t.frontierBlocks = block
	t.frontierBytes = int64(block) * blockSize
	// A backward seek re-reads; a forward seek skips. Either way the
	// stream restarts cleanly at the target: no stale out-of-order
	// fragments, and the fetcher resumes from the new frontier.
	t.ooo = make(map[int]int64)
	t.oooBytes = 0
	t.nextReq = block
	t.consumedFrames = t.video.FirstIncompleteFrame(t.frontierBytes)
	t.wakeFetcher()
}

// poisson draws from Poisson(mean) by Knuth's method.
func (t *Terminal) poisson(mean float64) int {
	n := 0
	limit := math.Exp(-mean)
	prod := t.src.Float64()
	for prod > limit {
		n++
		prod *= t.src.Float64()
	}
	return n
}
