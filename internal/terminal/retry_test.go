package terminal

import (
	"testing"

	"spiffi/internal/proto"
	"spiffi/internal/sim"
)

// faultRig extends testRig with a scripted dead disk: a bounded number
// of blocks addressed to (node 0, disk 0) are killed — every attempt of
// a killed block on that disk is NACKed (a live node fronting a
// fail-stopped disk) or silently dropped (a dead node) — while all
// other requests are served normally. Bounding the kill count makes the
// expected NACK/retry/glitch counts exact: every killed chain resolves
// long before the run ends, whatever the terminal plays afterwards.
type faultRig struct {
	*testRig
	silent   bool        // drop instead of NACK
	budget   int         // chains left to kill
	maxChain int         // dead-path attempts per killed chain
	active   map[int]int // block -> dead-path attempts seen so far
	chains   int         // chains actually started
}

func newFaultRig(t *testing.T, cfg Config, budget, maxChain int) *faultRig {
	t.Helper()
	fr := &faultRig{
		budget:   budget,
		maxChain: maxChain,
		active:   make(map[int]int),
	}
	fr.testRig = newRig(t, cfg, 5*sim.Millisecond)
	fr.term.send = fr.route
	return fr
}

func (fr *faultRig) route(node int, req *proto.BlockRequest) {
	fr.reqs++
	addr := fr.place.LocateCopy(req.Video, req.Block, req.Copy)
	if node == 0 && addr.Disk == 0 {
		if _, killed := fr.active[req.Block]; !killed && fr.budget > 0 && req.Attempt == 0 {
			fr.budget--
			fr.chains++
			fr.active[req.Block] = 0
			killed = true
		} else if !killed {
			fr.deliver(req)
			return
		}
		if fr.active[req.Block]++; fr.active[req.Block] >= fr.maxChain {
			delete(fr.active, req.Block) // chain resolves; replays serve normally
		}
		if fr.silent {
			return
		}
		req.Status = proto.StatusNackDiskFailed
		fr.deliver(req)
		return
	}
	fr.deliver(req)
}

func (fr *faultRig) deliver(req *proto.BlockRequest) {
	fr.k.After(fr.delay, func() { req.Deliver(req) })
}

func retryCfg() Config {
	cfg := baseCfg()
	cfg.RandomInitialPosition = false
	cfg.RequestTimeout = 500 * sim.Millisecond
	cfg.MaxRetries = 3
	cfg.RetryBackoff = 10 * sim.Millisecond
	return cfg
}

func (fr *faultRig) run(t *testing.T, until sim.Duration) Stats {
	t.Helper()
	fr.term.Start(0)
	if err := fr.k.Run(sim.Time(until)); err != nil {
		t.Fatal(err)
	}
	fr.k.Close()
	if fr.budget != 0 {
		t.Fatalf("scripted failure underused: %d kills left", fr.budget)
	}
	if len(fr.active) != 0 {
		t.Fatalf("kill chains unresolved at end: %v", fr.active)
	}
	return fr.term.Stats()
}

// With no replica every attempt hammers the dead disk, so each killed
// block costs exactly MaxRetries+1 NACKs and MaxRetries retries before
// it is abandoned with a disk-failure glitch.
func TestRetryExactCountsUnmirrored(t *testing.T) {
	fr := newFaultRig(t, retryCfg(), 5, 4)
	st := fr.run(t, 40*sim.Second)
	if st.Timeouts != 0 {
		t.Fatalf("NACKs should preempt timeouts, got %d timeouts", st.Timeouts)
	}
	if st.Nacks != 20 {
		t.Fatalf("nacks = %d, want 20 (4 per killed block)", st.Nacks)
	}
	if st.Retries != 15 {
		t.Fatalf("retries = %d, want 15 (MaxRetries per killed block)", st.Retries)
	}
	if st.LostBlocks != 5 || st.GlitchesDiskFail != 5 {
		t.Fatalf("lost=%d diskFailGlitches=%d, want both 5", st.LostBlocks, st.GlitchesDiskFail)
	}
	if st.GlitchesTimeout != 0 {
		t.Fatalf("timeout glitches = %d, want 0", st.GlitchesTimeout)
	}
	if st.MoviesCompleted < 1 {
		t.Fatal("playback did not ride over the holes")
	}
}

// With a mirrored layout the first retry fails over to the replica on
// the next disk, so each killed block costs exactly one NACK and one
// retry — and nothing is lost.
func TestRetryFailsOverToReplica(t *testing.T) {
	fr := newFaultRig(t, retryCfg(), 5, 1)
	fr.place.Mirror()
	st := fr.run(t, 40*sim.Second)
	if st.Nacks != 5 {
		t.Fatalf("nacks = %d, want 5 (1 per killed block)", st.Nacks)
	}
	if st.Retries != 5 {
		t.Fatalf("retries = %d, want 5 (each NACK fails over once)", st.Retries)
	}
	if st.LostBlocks != 0 || st.GlitchesDiskFail != 0 {
		t.Fatalf("failover lost data: lost=%d glitches=%d", st.LostBlocks, st.GlitchesDiskFail)
	}
	if st.MoviesCompleted < 1 {
		t.Fatal("movie never completed")
	}
}

// A silent server (dead node) surfaces as timeouts: each killed block
// costs MaxRetries+1 timeouts and MaxRetries retries, then a glitch
// attributed to timeout rather than disk failure.
func TestRetryTimeoutPath(t *testing.T) {
	cfg := retryCfg()
	cfg.RequestTimeout = 100 * sim.Millisecond
	fr := newFaultRig(t, cfg, 5, 4)
	fr.silent = true
	st := fr.run(t, 60*sim.Second)
	if st.Nacks != 0 {
		t.Fatalf("nacks = %d, want 0 (server is silent)", st.Nacks)
	}
	if st.Timeouts != 20 {
		t.Fatalf("timeouts = %d, want 20", st.Timeouts)
	}
	if st.Retries != 15 {
		t.Fatalf("retries = %d, want 15", st.Retries)
	}
	if st.LostBlocks != 5 || st.GlitchesTimeout != 5 {
		t.Fatalf("lost=%d timeoutGlitches=%d, want both 5", st.LostBlocks, st.GlitchesTimeout)
	}
	if st.GlitchesDiskFail != 0 {
		t.Fatalf("disk-fail glitches = %d, want 0", st.GlitchesDiskFail)
	}
}

// The exponential backoff must clamp: unclamped, tries=70 would shift
// the base past int64 into a negative duration. The default cap is 64x
// the base; an explicit RetryBackoffCap overrides it.
func TestRetryBackoffClamped(t *testing.T) {
	cfg := retryCfg()
	rig := newRig(t, cfg, 5*sim.Millisecond)
	defer rig.k.Close()
	tm := rig.term
	base := cfg.RetryBackoff
	cases := []struct {
		tries int
		want  sim.Duration
	}{
		{1, base},
		{2, 2 * base},
		{7, 64 * base},
		{8, 64 * base},  // clamped at the default 64x cap
		{70, 64 * base}, // would be negative without the clamp
		{500, 64 * base},
	}
	for _, c := range cases {
		if got := tm.backoffFor(c.tries); got != c.want {
			t.Fatalf("backoffFor(%d) = %v, want %v", c.tries, got, c.want)
		}
		if got := tm.backoffFor(c.tries); got < 0 {
			t.Fatalf("backoffFor(%d) went negative", c.tries)
		}
	}
	cfg.RetryBackoffCap = 5 * base
	rig2 := newRig(t, cfg, 5*sim.Millisecond)
	defer rig2.k.Close()
	if got := rig2.term.backoffFor(10); got != 5*base {
		t.Fatalf("explicit cap ignored: backoffFor(10) = %v, want %v", got, 5*base)
	}
}

// End-to-end regression: a huge retry budget against a silently dead
// path must resolve through the clamped backoff instead of panicking the
// kernel with a negative ("in the past") timer.
func TestRetryHugeBudgetNoPanic(t *testing.T) {
	cfg := retryCfg()
	cfg.RequestTimeout = 20 * sim.Millisecond
	cfg.RetryBackoff = 1 * sim.Millisecond
	cfg.MaxRetries = 80
	fr := newFaultRig(t, cfg, 1, 81)
	fr.silent = true
	st := fr.run(t, 120*sim.Second)
	if st.Retries != 80 {
		t.Fatalf("retries = %d, want the full 80-attempt budget", st.Retries)
	}
	if st.LostBlocks != 1 || st.GlitchesTimeout != 1 {
		t.Fatalf("lost=%d timeoutGlitches=%d, want both 1", st.LostBlocks, st.GlitchesTimeout)
	}
}

// Retry jitter shifts backoff timing but never the outcome counts:
// the jittered run resolves the same chains with the same NACK, retry
// and glitch totals, and — drawn from a derived seed stream — replays
// bit-identically.
func TestRetryJitterDeterministicCountsExact(t *testing.T) {
	cfg := retryCfg()
	cfg.RetryJitter = 20 * sim.Millisecond
	run := func() Stats {
		fr := newFaultRig(t, cfg, 5, 4)
		return fr.run(t, 40*sim.Second)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("jittered runs diverged:\n%+v\n%+v", a, b)
	}
	if a.Nacks != 20 || a.Retries != 15 || a.LostBlocks != 5 || a.GlitchesDiskFail != 5 {
		t.Fatalf("jitter changed outcome counts: %+v", a)
	}
}

// rejectingGate admits a terminal only after rejecting it a scripted
// number of times — the admission NACK path without a controller.
type rejectingGate struct {
	rejects  int
	admits   int
	releases int
}

func (g *rejectingGate) Admit(p *sim.Proc, terminal int) bool {
	if g.rejects > 0 {
		g.rejects--
		return false
	}
	g.admits++
	return true
}

func (g *rejectingGate) AdmitFailover(p *sim.Proc, terminal int) bool {
	return g.Admit(p, terminal)
}

func (g *rejectingGate) Release(terminal int) { g.releases++ }

// A rejected terminal backs off (base delay + derived jitter) and asks
// again; once admitted it plays normally and releases its slot per
// movie. The rejections are visible in the terminal's stats.
func TestAdmissionRejectRetryLoop(t *testing.T) {
	cfg := baseCfg()
	cfg.RandomInitialPosition = false
	cfg.Admission = &rejectingGate{rejects: 3}
	cfg.AdmitRetryDelay = 100 * sim.Millisecond
	rig := newRig(t, cfg, 5*sim.Millisecond)
	rig.term.Start(0)
	if err := rig.k.Run(sim.Time(40 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	rig.k.Close()
	st := rig.term.Stats()
	gate := cfg.Admission.(*rejectingGate)
	if st.AdmRejects != 3 {
		t.Fatalf("admission rejects = %d, want the scripted 3", st.AdmRejects)
	}
	// At the cutoff the terminal may be mid-movie, holding one slot.
	if gate.admits == 0 || gate.admits-gate.releases > 1 || gate.releases > gate.admits {
		t.Fatalf("slot ledger broken: admits=%d releases=%d", gate.admits, gate.releases)
	}
	if st.MoviesCompleted < 1 {
		t.Fatal("admitted terminal never completed a movie")
	}
}

// Without the retry machinery a NACK must still resolve the block —
// otherwise the outstanding-byte ledger leaks and the stream wedges.
func TestNackWithoutRetryMachinery(t *testing.T) {
	cfg := baseCfg()
	cfg.RandomInitialPosition = false
	fr := newFaultRig(t, cfg, 5, 1)
	st := fr.run(t, 40*sim.Second)
	if st.Nacks != 5 {
		t.Fatalf("nacks = %d, want 5", st.Nacks)
	}
	if st.Retries != 0 {
		t.Fatalf("retries = %d with RequestTimeout unset", st.Retries)
	}
	if st.LostBlocks != 5 {
		t.Fatalf("every NACK must abandon its block immediately: lost=%d, want 5", st.LostBlocks)
	}
	if st.MoviesCompleted < 1 {
		t.Fatal("stream wedged after NACKs")
	}
}
