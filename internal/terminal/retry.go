package terminal

import (
	"spiffi/internal/proto"
	"spiffi/internal/sim"
	"spiffi/internal/trace"
)

// This file is the terminal's degraded-mode machinery: request timeouts,
// bounded retries with exponential backoff, replica failover, and
// glitch-with-cause accounting for blocks the server never delivered.
// None of it runs when Config.RequestTimeout is zero — no timers are
// armed, so fault-free simulations are event-for-event identical to the
// pre-fault-injection behavior.

// pendingReq tracks one logical block request across delivery attempts.
// The outstanding byte count is charged once at the first issue and
// credited once at resolution (data arrival or final abandonment),
// however many attempts happen in between.
type pendingReq struct {
	req   *proto.BlockRequest // current (latest) attempt
	vid   int
	block int
	size  int64
	tries int // attempts issued so far (1 = the original)
	gen   int // bumped on every state change to void stale timers
	node  int // node the current attempt was sent to (health reporting)

	// redirected marks an attempt the failover policy deliberately sent
	// to a mirror because the block's primary node is suspect — proof of
	// service continuing around the dead node, which the session-recovery
	// accounting honors alongside clean first attempts. Blind retry
	// rotation (failover disabled) never sets it.
	redirected bool
}

// glitchCause labels why a block was abandoned.
type glitchCause int

const (
	causeDiskFail glitchCause = iota // NACKed: the disk is fail-stopped
	causeTimeout                     // request or reply lost / server dead
)

// armTimeout schedules the no-reply timer for the entry's current attempt.
func (t *Terminal) armTimeout(pr *pendingReq) {
	pr.gen++
	gen := pr.gen
	t.k.After(t.cfg.RequestTimeout, func() {
		if t.pending[pr.block] != pr || pr.gen != gen {
			return // answered, abandoned, or superseded meanwhile
		}
		t.stats.Timeouts++
		if t.cfg.Health != nil {
			// The watchdog is the only crash signal: a fail-stop node
			// drops requests silently, so NACK handling never sees it.
			t.cfg.Health.ReportTimeout(t.id, pr.node)
			if t.cfg.Health.Suspect(pr.node) {
				t.noteImpact(pr.node)
			}
		}
		t.retryOrGiveUp(pr, causeTimeout)
	})
}

// retryOrGiveUp is the attempt-failed path (timeout or NACK): either
// schedule the next attempt after an exponential backoff, or abandon the
// block and record a glitch with its cause.
func (t *Terminal) retryOrGiveUp(pr *pendingReq, cause glitchCause) {
	pr.gen++ // void the armed timer for the failed attempt
	if pr.tries > t.cfg.MaxRetries {
		t.loseBlock(pr.block, pr.size, cause)
		return
	}
	backoff := t.backoffFor(pr.tries)
	if t.cfg.RetryJitter > 0 {
		// Jitter is applied at the scheduling site, not in backoffFor,
		// so the deterministic schedule stays testable in isolation.
		backoff += sim.Duration(t.jit.Float64() * float64(t.cfg.RetryJitter))
	}
	gen := pr.gen
	t.k.After(backoff+t.cfg.SendLatency, func() {
		if t.pending[pr.block] != pr || pr.gen != gen || t.vid != pr.vid {
			// Late data arrived during the backoff, the block was
			// abandoned, or the stream repositioned: nothing to resend.
			return
		}
		t.resend(pr)
	})
}

// backoffFor returns the exponential backoff before attempt tries+1:
// RetryBackoff doubling per retry, clamped to RetryBackoffCap (64x the
// base when unset). The clamp keeps large retry budgets from shifting
// the duration past int64 into a negative value, which would panic the
// kernel ("scheduling event in the past").
func (t *Terminal) backoffFor(tries int) sim.Duration {
	backoff := t.cfg.RetryBackoff
	limit := t.cfg.RetryBackoffCap
	if limit <= 0 {
		limit = 64 * t.cfg.RetryBackoff
	}
	for i := 1; i < tries && backoff < limit; i++ {
		backoff *= 2
	}
	if backoff > limit {
		backoff = limit
	}
	return backoff
}

// noteImpact records this session as impacted by the given suspect
// node (once per episode) and, with failover enabled, queues the
// failover-priority re-admission on the fetcher.
func (t *Terminal) noteImpact(node int) {
	if t.impactNode >= 0 || t.video == nil {
		return
	}
	t.impactNode = node
	t.impactAt = t.k.Now()
	t.stats.SessionsImpacted++
	if t.cfg.Failover && t.cfg.Admission != nil {
		t.needReadmit = true
		t.wakeFetcher()
	}
}

// resend issues the next attempt for the block, rotating to the replica
// copy (when the layout stores one) so a dead primary disk is routed
// around rather than hammered. With failover enabled the rotation is
// overridden to prefer a copy on a non-suspect node.
func (t *Terminal) resend(pr *pendingReq) {
	pr.tries++
	t.stats.Retries++
	attempt := pr.tries - 1 // 0-based
	copy := attempt % t.place.Replicas()
	if t.cfg.Failover && t.place.Replicas() > 1 &&
		t.cfg.Health.Suspect(t.place.LocateCopy(pr.vid, pr.block, copy).Node) {
		if alt := 1 - copy; !t.cfg.Health.Suspect(t.place.LocateCopy(pr.vid, pr.block, alt).Node) {
			copy = alt
		}
	}
	addr := t.place.LocateCopy(pr.vid, pr.block, copy)
	pr.redirected = t.cfg.Failover && copy != 0 &&
		t.cfg.Health.Suspect(t.place.Locate(pr.vid, pr.block).Node)
	req := &proto.BlockRequest{
		Video:    pr.vid,
		Block:    pr.block,
		Size:     pr.size,
		Deadline: t.deadlineFor(pr.block),
		Terminal: t.id,
		Copy:     copy,
		Attempt:  attempt,
		Deliver:  t.onReply,
		Issued:   t.k.Now(),
	}
	pr.req = req
	pr.node = addr.Node
	t.send(addr.Node, req)
	t.armTimeout(pr)
}

// loseBlock abandons a block the server will never deliver: the viewer
// gets a glitch (attributed to its cause), and playback continues over
// the hole — the frontier advances as if the bytes had arrived, so one
// dead disk costs its blocks, not the whole movie.
func (t *Terminal) loseBlock(block int, size int64, cause glitchCause) {
	delete(t.pending, block)
	t.outstanding -= size
	t.stats.LostBlocks++
	t.stats.GlitchesTotal++
	traceCause := trace.CauseTimeout
	if cause == causeDiskFail {
		traceCause = trace.CauseDiskFail
		t.stats.GlitchesDiskFailTotal++
	} else {
		t.stats.GlitchesTimeoutTotal++
	}
	t.rec.TermGlitch(t.id, traceCause, t.vid, block, t.BufferedBytes())
	if t.measuring() {
		t.stats.Glitches++
		switch cause {
		case causeDiskFail:
			t.stats.GlitchesDiskFail++
		default:
			t.stats.GlitchesTimeout++
		}
	}
	t.admit(block, size)
	t.wakeOnArrival()
}

// cancelPending abandons every tracked request without glitch accounting
// (the data is unwanted after a reposition). Late replies become stale
// drops; the blocks the stream still needs are re-requested afresh.
func (t *Terminal) cancelPending() {
	for b, pr := range t.pending {
		pr.gen++
		t.outstanding -= pr.size
		delete(t.pending, b)
	}
}
