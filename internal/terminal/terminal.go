// Package terminal implements the SPIFFI video terminal (§5.1): a client
// with a small memory that primes its buffer, then displays MPEG frames
// while pipelining stripe-block requests to the server nodes it computes
// addresses for itself (SPIFFI is decentralized). If the playout buffer
// runs dry a glitch is recorded and the terminal re-primes before
// resuming. Terminals assign every request the deadline by which it must
// complete to avoid a glitch (§5.2.2), support pause/resume (§8.1), and
// can be piggybacked onto a shared stream via a start coordinator (§8.2).
//
// Display is frame-exact but event-compressed: instead of one event per
// frame, the terminal computes — from the video's byte prefix sums — the
// exact future instant its buffer runs dry (or frees enough space) and
// sleeps until then, recomputing as blocks arrive. Observable behaviour
// (glitch times, buffer occupancy at any instant) is identical to naive
// per-frame simulation.
package terminal

import (
	"fmt"

	"spiffi/internal/layout"
	"spiffi/internal/mpeg"
	"spiffi/internal/proto"
	"spiffi/internal/rng"
	"spiffi/internal/sim"
	"spiffi/internal/trace"
)

// PauseConfig enables the §8.1 pause experiment: each playback pauses
// MeanPauses times on average (Poisson), each for an exponentially
// distributed duration with mean MeanDuration, at uniformly random
// positions in the video.
type PauseConfig struct {
	MeanPauses   float64
	MeanDuration sim.Duration
}

// AdmissionGate is the admission-control surface a terminal sees
// (implemented by admission.Controller). Admit blocks until a stream
// slot is held (true) or patience expires (false, the NACK path);
// Release returns the slot at movie end. AdmitFailover is the
// failover-priority path: a session migrating off a crashed node
// re-admits ahead of new arrivals, so survivors' spare capacity goes to
// keeping running sessions alive before starting fresh ones.
type AdmissionGate interface {
	Admit(p *sim.Proc, terminal int) bool
	AdmitFailover(p *sim.Proc, terminal int) bool
	Release(terminal int)
}

// StartCoordinator batches terminals that want to start the same video
// (piggybacking, §8.2). JoinOrLead blocks for the batch delay and reports
// whether this terminal leads the batch (and must really stream) or rides
// along on the leader's stream.
type StartCoordinator interface {
	JoinOrLead(p *sim.Proc, terminal, video int) (leader bool)
}

// Merger is the stream-merging surface (core/merge.go, CACHING.md): the
// generalization of piggybacking that lets a cache-started viewer catch
// up to an in-flight disk stream so one disk read feeds N terminals.
//
// Offer asks to ride an in-flight stream of video; on success it returns
// the join block `from` — the terminal plays blocks [0, from) out of the
// node prefix caches (fetched normally, served without disk I/O) and
// receives every block from `from` on forwarded off the leader's reads
// via DeliverMerged. Lead registers the terminal as a disk-streaming
// leader others may merge onto; Advance reports any terminal's contiguous
// receive frontier passing a block (a leader's paces its stream's
// forwards, a follower's frees buffer room for more, everyone else's is
// ignored); Leave removes the terminal from any
// stream it leads or rides (a departing leader detaches its followers
// through Unmerge). All calls run in kernel context and must not block.
// Pull asks the coordinator to forward more blocks to this follower now
// that buffer room has freed; it reports whether anything was forwarded.
type Merger interface {
	Offer(t *Terminal, video int) (from int, ok bool)
	Lead(t *Terminal, video int)
	Advance(t *Terminal, video, block int)
	Pull(t *Terminal) bool
	Leave(t *Terminal)
}

// Config carries the per-terminal parameters.
type Config struct {
	MemBytes int64 // playout buffer size (paper: 2 MB)

	// SendLatency and RecvLatency model the terminal-side CPU cost of
	// message operations (Table 1 instruction counts over the terminal's
	// dedicated hardware).
	SendLatency sim.Duration
	RecvLatency sim.Duration

	Pause  *PauseConfig     // nil = no pausing
	VCR    *VCRConfig       // nil = no rewind/fast-forward activity
	Gate   StartCoordinator // nil = every terminal streams for itself
	Merger Merger           // nil = no stream merging (cache tier off)

	// Admission, when non-nil, gates every movie start on an admission
	// slot; AdmitRetryDelay is the base backoff after a rejection
	// (jittered from the terminal's derived stream so rejected streams
	// spread out; zero picks 5s).
	Admission       AdmissionGate
	AdmitRetryDelay sim.Duration

	// OnRespTime, when non-nil, observes every block request's round
	// trip (the assembly feeds a shared latency histogram).
	OnRespTime func(sim.Duration)

	// Think, when non-nil, is drawn after each completed movie and idles
	// the terminal that long before it selects the next one — binge
	// sessions with inter-video think time, scaled by the workload
	// layer's phase load. Zero means start at once; nil (the default)
	// keeps the historical back-to-back behavior exactly.
	Think func() sim.Duration

	// SeekBoost, when non-nil, multiplies VCRConfig.MeanSeeksPerMovie
	// at each movie start — the workload layer's VCR-interaction storm
	// phases. nil (the default) leaves the configured mean untouched.
	SeekBoost func() float64

	// RandomInitialPosition starts each terminal's FIRST movie at a
	// uniformly random position, so the simulated snapshot begins in the
	// steady state the paper measures (terminals spread across movie
	// positions) without simulating a full movie-length warm-up.
	// Subsequent movies always start from the beginning.
	RandomInitialPosition bool

	// RequestTimeout, when positive, arms a timer per outstanding block
	// request; an unanswered request is retried up to MaxRetries times
	// with exponential backoff starting at RetryBackoff, rotating to the
	// replica copy when the layout has one. A block still unanswered after
	// the final retry is abandoned: the terminal records a glitch with its
	// cause and plays over the hole. Zero (the default) disables the whole
	// machinery — no timers are armed, so fault-free runs are event-for-
	// event identical to a build without it.
	RequestTimeout sim.Duration
	MaxRetries     int
	RetryBackoff   sim.Duration

	// RetryBackoffCap bounds the exponential backoff growth; zero picks
	// 64x RetryBackoff. Without a cap a large retry budget would shift
	// the backoff past the int64 range into a negative duration, which
	// the kernel rejects as scheduling in the past.
	RetryBackoffCap sim.Duration

	// RetryJitter adds a uniform draw from [0, RetryJitter) on top of
	// each retry backoff, desynchronizing the retry storm when many
	// streams hit the same dead disk or restarted node. Zero (the
	// default) draws nothing, keeping scripted retry timing exact.
	RetryJitter sim.Duration

	// Health, when non-nil, is the simulation-wide node suspicion
	// tracker: the terminal reports request timeouts and replies to it,
	// and (with Failover) consults it when resolving block addresses.
	// Requires RequestTimeout > 0 to ever observe a timeout.
	Health *NodeHealth

	// Failover enables session continuity across node crashes: blocks
	// whose primary lives on a suspect node are proactively resolved to
	// their mirror copy, retries prefer copies on non-suspect nodes, and
	// an impacted session re-admits through the failover-priority path.
	// Off (the default), Health still tracks suspicion and sessions are
	// accounted lost — the experiment's comparison baseline.
	Failover bool
}

// Stats aggregates one terminal's counters.
type Stats struct {
	Glitches        int64 // glitches inside the measurement window
	GlitchesTotal   int64 // glitches since simulation start
	MoviesStarted   int64
	MoviesCompleted int64
	BlocksReceived  int64
	BytesReceived   int64
	RespTimeSum     sim.Duration // request round-trip accumulation
	RespTimeMax     sim.Duration
	Primes          int64 // priming cycles (starts + glitch recoveries)

	// §8.1 interactive-operation counters.
	Seeks          int64        // rewind/fast-forward operations
	SkimBlocks     int64        // blocks fetched for visual search
	StaleDrops     int64        // replies discarded after a reposition
	SeekRePrimeSum sim.Duration // seek-to-resume latency accumulation
	SeekRePrimeMax sim.Duration

	// Degraded-mode counters (fault injection). The per-cause glitch
	// counters break the window's glitches down by what the viewer saw:
	// a frozen picture (buffer underrun) or missing data played over
	// (a block abandoned after NACKs from a dead disk, or after repeated
	// timeouts when requests or replies were lost).
	GlitchesUnderrun int64
	GlitchesDiskFail int64
	GlitchesTimeout  int64
	// The *Total variants are lifetime (never window-reset) per-cause
	// counters partitioning GlitchesTotal; the workload layer's
	// phase-bucketed metrics difference them at phase boundaries, which
	// straddle the measurement window.
	GlitchesUnderrunTotal int64
	GlitchesDiskFailTotal int64
	GlitchesTimeoutTotal  int64
	Nacks                 int64 // NACK replies received
	Retries          int64 // re-issued requests
	Timeouts         int64 // request timeouts fired
	LostBlocks       int64 // blocks abandoned after the final retry
	Recoveries       int64 // completed glitch-to-resume recoveries
	RecoverySum      sim.Duration
	RecoveryMax      sim.Duration

	// Overload-control counters: admission rejections seen by this
	// terminal, and blocks/frames skipped while shed to degraded mode.
	AdmRejects     int64
	DegradedBlocks int64
	DegradedFrames int64

	// Failover session accounting (lifetime, not window-reset: a crash
	// may straddle the measurement boundary). A session is "impacted"
	// when one of its request timeouts finds the target node suspect;
	// it is "recovered" when a later first-attempt read of a block whose
	// primary lives on the impacted node succeeds (the session streams
	// on without the retry path), and "lost" if it ends — or the run
	// ends — still unresolved. Impacted == Recovered + Lost once
	// CloseSessionAccounting has run.
	SessionsImpacted  int64
	SessionsRecovered int64
	SessionsLost      int64
	FailoverLatSum    sim.Duration // impact-to-recovery latency accumulation
	FailoverLatMax    sim.Duration
	FailoverRedirects int64 // blocks proactively resolved to the mirror copy
	FailoverReadmits  int64 // failover-priority re-admissions performed

	// MergeDetaches counts mid-stream exits from a merged stream (leader
	// departed, seek, or buffer pressure), after which the terminal
	// fetches for itself. Lifetime, not window-reset: a merge may
	// straddle the measurement boundary.
	MergeDetaches int64
}

// Terminal is one subscriber set-top unit.
type Terminal struct {
	id    int
	k     *sim.Kernel
	cfg   Config
	lib   *mpeg.Library
	place *layout.Placement
	src   *rng.Source

	// send ships a request to a node; wired by the simulation assembly.
	send func(node int, req *proto.BlockRequest)
	// selectVideo draws the next movie (Zipf or uniform over the
	// library); wired by the simulation assembly.
	selectVideo func() int
	// measuring gates glitch counting to the measurement window.
	measuring func() bool
	// onStarted fires once, when the terminal first begins display.
	onStarted func()

	// --- current playback ---
	video   *mpeg.Video
	vid     int
	nblocks int

	nextReq        int           // next block index to request
	frontierBlocks int           // contiguous blocks received
	frontierBytes  int64         // contiguous stream bytes received
	ooo            map[int]int64 // out-of-order arrivals: block -> size
	oooBytes       int64
	outstanding    int64 // requested, not yet arrived

	// pending tracks in-flight requests for the retry machinery, keyed by
	// block. Empty whenever RequestTimeout is zero. An arrival is "live"
	// only if it is the entry's current attempt (pointer identity);
	// replies from superseded attempts are stale-dropped.
	pending  map[int]*pendingReq
	glitchAt sim.Time // when the in-progress glitch stalled display (MTTR)

	// --- failover session state ---
	holdsSlot   bool     // an admission slot is currently held
	needReadmit bool     // impacted with Failover: re-admit at fetcher's next step
	sessAborted bool     // failover re-admission rejected: drain and end the session
	impactNode  int      // node whose suspicion impacted this session (-1 = none)
	impactAt    sim.Time // when the impaction was noted

	playing        bool
	displayStart   sim.Time // frame f displays at displayStart + f*period
	consumedFrames int

	pauseFrames []int
	pauseDurs   []sim.Duration
	seekFrames  []int
	seekStarted sim.Time // when the in-progress seek began (for latency)

	playerWait  *sim.Proc // player parked awaiting priming
	fetcherWait *sim.Proc // fetcher parked awaiting display progress
	movieChange *sim.Event

	// mergedFrom, when >= 0, marks this terminal a merge follower: it
	// fetches blocks [0, mergedFrom) itself (the cached prefix) and
	// receives every later block forwarded off the leader's stream.
	// -1 = not merged.
	mergedFrom int

	started bool
	// degraded marks the stream shed to half block rate by the
	// overload controller: the fetcher skips every other block and the
	// viewer plays over the holes (bounded quality loss, no underruns).
	degraded bool
	stats    Stats
	rec      *trace.Recorder // nil unless tracing is enabled

	// jit is the terminal's jitter stream (derived, so merely creating
	// it consumes nothing from src); drawn only on retry backoffs with
	// RetryJitter set and on admission-rejection backoffs.
	jit *rng.Source
}

// New creates a terminal and starts its player and fetcher processes.
// send, selectVideo, measuring and onStarted wire the terminal into the
// simulation; onStarted may be nil.
func New(
	k *sim.Kernel,
	id int,
	cfg Config,
	lib *mpeg.Library,
	place *layout.Placement,
	src *rng.Source,
	send func(node int, req *proto.BlockRequest),
	selectVideo func() int,
	measuring func() bool,
	onStarted func(),
) *Terminal {
	if cfg.MemBytes < place.BlockSize() {
		panic(fmt.Sprintf("terminal: memory %d smaller than one block %d", cfg.MemBytes, place.BlockSize()))
	}
	t := &Terminal{
		id:          id,
		k:           k,
		cfg:         cfg,
		lib:         lib,
		place:       place,
		src:         src,
		send:        send,
		selectVideo: selectVideo,
		measuring:   measuring,
		onStarted:   onStarted,
		movieChange: sim.NewEvent(k),
		pending:     make(map[int]*pendingReq),
		jit:         src.Derive("jitter"),
		impactNode:  -1,
		mergedFrom:  -1,
	}
	return t
}

// Start spawns the terminal's processes with the given initial delay
// (terminals start movies at staggered random times, §6).
func (t *Terminal) Start(delay sim.Duration) {
	t.k.SpawnAt(t.k.Now().Add(delay), fmt.Sprintf("term-%d-player", t.id), t.player)
}

// ID returns the terminal id.
func (t *Terminal) ID() int { return t.id }

// SetTrace attaches a trace recorder (nil is fine: emits become
// no-ops). Call before Start.
func (t *Terminal) SetTrace(rec *trace.Recorder) { t.rec = rec }

// Stats returns a copy of the terminal's counters.
func (t *Terminal) Stats() Stats { return t.stats }

// ResetWindowStats zeroes the measurement-window counters (blocks,
// response times, movies, glitches) while keeping lifetime counters
// (GlitchesTotal, MoviesStarted).
func (t *Terminal) ResetWindowStats() {
	t.stats.Glitches = 0
	t.stats.BlocksReceived = 0
	t.stats.BytesReceived = 0
	t.stats.RespTimeSum = 0
	t.stats.RespTimeMax = 0
	t.stats.MoviesCompleted = 0
	t.stats.Primes = 0
	t.stats.Seeks = 0
	t.stats.SkimBlocks = 0
	t.stats.StaleDrops = 0
	t.stats.SeekRePrimeSum = 0
	t.stats.SeekRePrimeMax = 0
	t.stats.GlitchesUnderrun = 0
	t.stats.GlitchesDiskFail = 0
	t.stats.GlitchesTimeout = 0
	t.stats.Nacks = 0
	t.stats.Retries = 0
	t.stats.Timeouts = 0
	t.stats.LostBlocks = 0
	t.stats.Recoveries = 0
	t.stats.RecoverySum = 0
	t.stats.RecoveryMax = 0
	t.stats.AdmRejects = 0
	t.stats.DegradedBlocks = 0
	t.stats.DegradedFrames = 0
}

// Started reports whether the terminal has begun displaying its first
// movie (the simulator's warm-up gate, §6).
func (t *Terminal) Started() bool { return t.started }

// HoldsSlot reports whether the terminal currently holds an admission
// slot (invariant-checking hook for the chaos harness).
func (t *Terminal) HoldsSlot() bool { return t.holdsSlot }

// Outstanding returns requested-but-unresolved bytes (invariant hook).
func (t *Terminal) Outstanding() int64 { return t.outstanding }

// BufferedBytes returns bytes held in terminal memory right now.
func (t *Terminal) BufferedBytes() int64 {
	return t.frontierBytes - t.video.BytesBeforeFrame(t.consumedFrames) + t.oooBytes
}

// --- player process ---

func (t *Terminal) player(p *sim.Proc) {
	// The fetcher lives for the terminal's whole life; the player signals
	// it at each movie change.
	t.k.Spawn(fmt.Sprintf("term-%d-fetcher", t.id), t.fetcher)
	for {
		if t.cfg.Think != nil && t.stats.MoviesStarted > 0 {
			// Inter-movie think time: the viewer finished a session and
			// idles before bingeing the next one. The first movie keeps
			// its staggered Start delay instead.
			if d := t.cfg.Think(); d > 0 {
				p.Sleep(d)
			}
		}
		vid := t.selectVideo()
		if t.cfg.Gate != nil {
			if leader := t.cfg.Gate.JoinOrLead(p, t.id, vid); !leader {
				// Piggybacked: ride the leader's stream for the whole
				// video, placing no demands on the server (§8.2).
				t.noteStarted()
				t.stats.MoviesStarted++
				p.Sleep(t.lib.Get(vid).Duration())
				t.stats.MoviesCompleted++
				continue
			}
		}
		if t.cfg.Merger != nil && !(t.cfg.RandomInitialPosition && t.stats.MoviesStarted == 0) {
			if from, ok := t.cfg.Merger.Offer(t, vid); ok {
				// Merged start: the prefix [0, from) is served from the
				// node caches (no disk I/O) and everything after rides
				// the leader's in-flight stream, so the viewer starts
				// without claiming an admission slot — a cache hit
				// bypasses the disk admission cost entirely.
				t.startMovie(vid)
				t.mergedFrom = from
				t.playMovie(p)
				t.leaveMerge(false)
				t.resolveSessionEnd()
				if !t.sessAborted {
					t.stats.MoviesCompleted++
				}
				continue
			}
		}
		if t.cfg.Admission != nil {
			t.awaitAdmission(p)
		}
		t.startMovie(vid)
		if t.cfg.RandomInitialPosition && t.stats.MoviesStarted == 1 {
			t.seekToRandomPosition()
		}
		if t.cfg.Merger != nil && t.nextReq == 0 {
			// Streaming the whole movie from the front: register as a
			// leader others may merge onto. A random-position start is
			// mid-movie and cannot be followed.
			t.cfg.Merger.Lead(t, vid)
		}
		t.playMovie(p)
		t.leaveMerge(false)
		if t.cfg.Admission != nil && t.holdsSlot {
			t.cfg.Admission.Release(t.id)
		}
		t.holdsSlot = false
		t.resolveSessionEnd()
		if !t.sessAborted {
			t.stats.MoviesCompleted++
		}
	}
}

// leaveMerge exits any merge involvement: a departing leader dissolves
// its stream (the coordinator detaches the followers), a follower stops
// riding. detach marks a mid-stream follower exit (seek, abort) in the
// stats and trace; a natural movie end passes false.
func (t *Terminal) leaveMerge(detach bool) {
	if t.cfg.Merger == nil {
		return
	}
	if detach && t.mergedFrom >= 0 {
		t.stats.MergeDetaches++
		t.rec.MergeDetach(t.id, t.vid, t.frontierBlocks)
	}
	t.mergedFrom = -1
	t.cfg.Merger.Leave(t)
	t.wakeFetcher()
}

// Unmerge is the coordinator-initiated detach: the leader departed, so
// the follower resumes fetching for itself from its receive frontier.
// Unlike leaveMerge it must not call back into the coordinator, which
// is mid-removal.
func (t *Terminal) Unmerge() {
	if t.mergedFrom < 0 {
		return
	}
	t.mergedFrom = -1
	t.stats.MergeDetaches++
	t.rec.MergeDetach(t.id, t.vid, t.frontierBlocks)
	t.wakeOnArrival()
}

// detachMerge is the terminal-initiated mid-stream exit (a forwarded
// block found no buffer space: the follower fell behind the leader's
// pace). The dropped block is re-fetched through the normal path.
func (t *Terminal) detachMerge() {
	if t.mergedFrom < 0 {
		return
	}
	t.mergedFrom = -1
	t.stats.MergeDetaches++
	t.rec.MergeDetach(t.id, t.vid, t.frontierBlocks)
	t.cfg.Merger.Leave(t)
	t.wakeFetcher()
}

// DeliverMerged hands the terminal a block forwarded off its merged
// stream's single disk read (kernel context; network delay already
// paid by the forwarder).
func (t *Terminal) DeliverMerged(video, block int, size int64) {
	if t.cfg.RecvLatency > 0 {
		t.k.After(t.cfg.RecvLatency, func() { t.applyMerged(video, block, size) })
		return
	}
	t.applyMerged(video, block, size)
}

func (t *Terminal) applyMerged(video, block int, size int64) {
	if t.mergedFrom < 0 || video != t.vid || t.sessAborted || block < t.frontierBlocks {
		// Detached, repositioned, or aborted since the forward was sent.
		t.stats.StaleDrops++
		return
	}
	if t.BufferedBytes()+size > t.cfg.MemBytes {
		t.detachMerge()
		return
	}
	t.stats.BlocksReceived++
	t.stats.BytesReceived += size
	t.admit(block, size)
	t.rec.TermBuffer(t.id, t.BufferedBytes(), t.outstanding, t.frontierBlocks)
	t.wakeOnArrival()
}

// resolveSessionEnd closes this session's failover accounting: an
// impaction still unresolved when the movie ends counts as lost.
func (t *Terminal) resolveSessionEnd() {
	if t.impactNode >= 0 {
		t.stats.SessionsLost++
		t.impactNode = -1
	}
}

// CloseSessionAccounting resolves an in-flight impacted session at the
// end of the run (called once by the assembly before aggregating stats)
// so Impacted == Recovered + Lost holds in the final metrics.
func (t *Terminal) CloseSessionAccounting() { t.resolveSessionEnd() }

// awaitAdmission claims a stream slot before each movie, looping
// through the rejection (NACK) path with jittered backoff. A terminal
// queued or rejected counts as started: it is an active viewer the
// warm-up gate (§6) must not wait on forever.
func (t *Terminal) awaitAdmission(p *sim.Proc) {
	for {
		enq := t.k.Now()
		if t.cfg.Admission.Admit(p, t.id) {
			t.holdsSlot = true
			if t.k.Now() != enq {
				t.noteStarted()
			}
			return
		}
		t.noteStarted()
		t.stats.AdmRejects++
		delay := t.cfg.AdmitRetryDelay
		if delay <= 0 {
			delay = 5 * sim.Second
		}
		delay += sim.Duration(t.jit.Float64() * float64(delay))
		p.Sleep(delay)
	}
}

// SetDegraded moves the stream in or out of degraded (half block
// rate) mode. Takes effect at the fetcher's next block decision; the
// overload controller calls this in kernel context.
func (t *Terminal) SetDegraded(on bool) { t.degraded = on }

// seekToRandomPosition fast-forwards the freshly selected movie to a
// random block boundary, as if the terminal had already been watching it
// — the steady-state snapshot initialization.
func (t *Terminal) seekToRandomPosition() {
	if t.nblocks < 2 {
		return
	}
	b0 := t.src.Intn(t.nblocks - 1)
	t.nextReq = b0
	t.frontierBlocks = b0
	t.frontierBytes = int64(b0) * t.place.BlockSize()
	t.consumedFrames = t.video.FirstIncompleteFrame(t.frontierBytes)
	// Drop pauses and seeks scheduled before the resume point.
	for len(t.pauseFrames) > 0 && t.pauseFrames[0] < t.consumedFrames {
		t.pauseFrames = t.pauseFrames[1:]
		t.pauseDurs = t.pauseDurs[1:]
	}
	for len(t.seekFrames) > 0 && t.seekFrames[0] < t.consumedFrames {
		t.seekFrames = t.seekFrames[1:]
	}
}

// startMovie resets stream state for the selected video.
func (t *Terminal) startMovie(vid int) {
	t.vid = vid
	t.video = t.lib.Get(vid)
	t.nblocks = t.place.NumBlocks(vid)
	t.nextReq = 0
	t.frontierBlocks = 0
	t.frontierBytes = 0
	t.ooo = make(map[int]int64)
	t.oooBytes = 0
	t.consumedFrames = 0
	t.playing = false
	// A pending re-admission belonged to the previous session; a fresh
	// movie starts clean (late-session impactions are resolved by
	// resolveSessionEnd, not migrated).
	t.needReadmit = false
	t.sessAborted = false
	t.mergedFrom = -1
	t.drawPauses()
	t.drawSeeks()
	t.stats.MoviesStarted++
	// Wake the fetcher for the new movie.
	ev := t.movieChange
	t.movieChange = sim.NewEvent(t.k)
	ev.Fire()
}

// stallReason says why displayUntilStall returned.
type stallReason int

const (
	stallFinished stallReason = iota // all frames displayed
	stallGlitch                      // buffer ran dry mid-movie
	stallSeek                        // user rewind/fast-forward
)

// playMovie runs prime/display cycles until the video completes.
func (t *Terminal) playMovie(p *sim.Proc) {
	for {
		t.waitPrimed(p)
		if t.sessAborted {
			return // failover re-admission rejected: session over
		}
		t.stats.Primes++
		var recovered sim.Duration
		if t.glitchAt != 0 {
			// The prime that just completed recovered from a glitch:
			// record the viewer-visible freeze-to-resume time (MTTR).
			recovered = t.k.Now().Sub(t.glitchAt)
			t.glitchAt = 0
			t.stats.Recoveries++
			t.stats.RecoverySum += recovered
			if recovered > t.stats.RecoveryMax {
				t.stats.RecoveryMax = recovered
			}
		}
		t.rec.TermPrime(t.id, t.vid, recovered, int(t.stats.Primes))
		if t.seekStarted != 0 {
			// The prime that just completed was a seek recovery; record
			// the user-visible seek-to-resume latency.
			lat := t.k.Now().Sub(t.seekStarted)
			t.stats.SeekRePrimeSum += lat
			if lat > t.stats.SeekRePrimeMax {
				t.stats.SeekRePrimeMax = lat
			}
			t.seekStarted = 0
		}
		// Begin (or resume) display at frame consumedFrames.
		t.playing = true
		t.displayStart = t.k.Now() - sim.Time(t.consumedFrames)*sim.Time(t.video.FramePeriod())
		t.noteStarted()
		t.wakeFetcher()
		reason := t.displayUntilStall(p)
		t.playing = false
		if t.sessAborted {
			// Aborted mid-display: the buffered tail has been shown; end
			// the session without glitch accounting (it is counted lost).
			return
		}
		switch reason {
		case stallFinished:
			return
		case stallSeek:
			t.doSeek(p)
			// Loop: waitPrimed re-primes at the new position (§8.1).
		case stallGlitch:
			// Glitch: the buffer ran dry mid-movie (§5.1). Re-prime
			// fully before restarting so a second glitch does not
			// follow at once.
			t.stats.GlitchesTotal++
			t.stats.GlitchesUnderrunTotal++
			t.glitchAt = t.k.Now()
			t.rec.TermGlitch(t.id, trace.CauseUnderrun, t.vid, t.consumedFrames, t.BufferedBytes())
			if t.measuring() {
				t.stats.Glitches++
				t.stats.GlitchesUnderrun++
			}
		}
	}
}

// primed reports whether the buffer is as full as the fetcher can make
// it: nothing outstanding and no room (or no need) for another block.
// This is the §5.1 "fills or primes its buffers" condition, robust to
// partial-frame residues and end-of-video tails.
func (t *Terminal) primed() bool {
	if t.sessAborted {
		return true // nothing more will arrive; let the player run out
	}
	if t.outstanding > 0 {
		return false
	}
	if t.nextReq < t.nblocks && (t.mergedFrom < 0 || t.nextReq < t.mergedFrom) {
		free := t.cfg.MemBytes - t.BufferedBytes()
		if free >= t.place.SizeOfBlock(t.vid, t.nextReq) {
			return false // the fetcher still has room to fill
		}
	}
	// Guard: a "full" buffer must actually contain something displayable
	// (at least one complete frame past the consumption point), or
	// resuming would glitch-loop without advancing time. This state is
	// unreachable in normal operation; blocking here turns a hypothetical
	// livelock into a visible stall.
	if t.consumedFrames < t.video.NumFrames() &&
		t.video.FirstIncompleteFrame(t.frontierBytes) <= t.consumedFrames {
		return false
	}
	return true
}

// waitPrimed parks the player until the priming target is met; block
// arrivals wake it.
func (t *Terminal) waitPrimed(p *sim.Proc) {
	for !t.primed() {
		t.playerWait = p
		p.Block()
	}
}

// displayUntilStall advances display until the movie completes, the
// buffer runs dry, or a scheduled seek takes effect, handling pauses
// along the way.
func (t *Terminal) displayUntilStall(p *sim.Proc) stallReason {
	period := sim.Time(t.video.FramePeriod())
	for {
		f := t.video.FirstIncompleteFrame(t.frontierBytes) // stall frame

		// A scheduled seek before the stall point (and before any pause)
		// interrupts display.
		if len(t.seekFrames) > 0 && t.seekFrames[0] < f &&
			(len(t.pauseFrames) == 0 || t.seekFrames[0] <= t.pauseFrames[0]) {
			sf := t.seekFrames[0]
			t.seekFrames = t.seekFrames[1:]
			if sf > t.consumedFrames {
				p.SleepUntil(t.displayStart + sim.Time(sf)*period)
				t.syncConsumption()
			}
			return stallSeek
		}

		stallAt := t.displayStart + sim.Time(f)*period

		// A scheduled pause before the stall point takes effect first.
		if len(t.pauseFrames) > 0 && t.pauseFrames[0] < f {
			pf := t.pauseFrames[0]
			dur := t.pauseDurs[0]
			t.pauseFrames = t.pauseFrames[1:]
			t.pauseDurs = t.pauseDurs[1:]
			p.SleepUntil(t.displayStart + sim.Time(pf)*period)
			t.syncConsumption()
			t.playing = false
			p.Sleep(dur)
			t.playing = true
			t.displayStart = t.k.Now() - sim.Time(pf)*period
			t.wakeFetcher()
			continue
		}

		p.SleepUntil(stallAt)
		t.syncConsumption()
		if f == t.video.NumFrames() {
			return stallFinished
		}
		if t.video.FirstIncompleteFrame(t.frontierBytes) > f {
			continue // arrivals extended the frontier; keep displaying
		}
		return stallGlitch // dry at frame f
	}
}

// syncConsumption advances consumedFrames to the current instant.
func (t *Terminal) syncConsumption() {
	if !t.playing {
		return
	}
	f := int((t.k.Now() - t.displayStart) / sim.Time(t.video.FramePeriod()))
	if cap := t.video.FirstIncompleteFrame(t.frontierBytes); f > cap {
		f = cap
	}
	if f > t.consumedFrames {
		t.consumedFrames = f
	}
}

func (t *Terminal) noteStarted() {
	if !t.started {
		t.started = true
		if t.onStarted != nil {
			t.onStarted()
		}
	}
}

func (t *Terminal) wakeFetcher() {
	if t.fetcherWait != nil {
		w := t.fetcherWait
		t.fetcherWait = nil
		t.k.Wake(w)
	}
}

// drawPauses samples this playback's pause schedule.
func (t *Terminal) drawPauses() {
	t.pauseFrames = t.pauseFrames[:0]
	t.pauseDurs = t.pauseDurs[:0]
	pc := t.cfg.Pause
	if pc == nil || pc.MeanPauses <= 0 {
		return
	}
	if t.video.NumFrames() <= 0 {
		return // degenerate empty video: nowhere to pause
	}
	n := t.poisson(pc.MeanPauses)
	if n == 0 {
		return
	}
	frames := make([]int, n)
	for i := range frames {
		frames[i] = t.src.Intn(t.video.NumFrames())
	}
	// Insertion sort (n is tiny) and deduplicate.
	for i := 1; i < len(frames); i++ {
		for j := i; j > 0 && frames[j] < frames[j-1]; j-- {
			frames[j], frames[j-1] = frames[j-1], frames[j]
		}
	}
	for i, fr := range frames {
		if i > 0 && fr == t.pauseFrames[len(t.pauseFrames)-1] {
			continue
		}
		t.pauseFrames = append(t.pauseFrames, fr)
		t.pauseDurs = append(t.pauseDurs, sim.Duration(t.src.Exp(float64(pc.MeanDuration))))
	}
}

// --- fetcher process ---

func (t *Terminal) fetcher(p *sim.Proc) {
	for {
		if t.needReadmit {
			t.needReadmit = false
			t.readmitFailover(p)
			continue
		}
		if t.video == nil || t.nextReq >= t.nblocks {
			// Nothing left to request for this movie; await the next one.
			t.movieChange.Wait(p)
			continue
		}
		if t.nextReq < t.frontierBlocks {
			// Blocks below the frontier already arrived (forwarded off a
			// merged stream before a detach); skip to the first gap.
			t.nextReq = t.frontierBlocks
			continue
		}
		if _, buffered := t.ooo[t.nextReq]; buffered {
			t.nextReq++
			continue
		}
		if t.mergedFrom >= 0 && t.nextReq >= t.mergedFrom {
			// Riding a merged stream: everything from the join point
			// arrives forwarded, so the fetcher's only job is pacing
			// buffer room. It pulls forwards whenever space allows and
			// sleeps until display frees more — a timed wake, because
			// once the leader has read to end-of-video its frontier
			// stops advancing and nothing else would restart the
			// forwarding pump (core/merge.go).
			t.syncConsumption()
			size := t.place.SizeOfBlock(t.vid, t.nextReq)
			free := t.cfg.MemBytes - t.BufferedBytes() - t.outstanding
			if free >= size {
				if !t.cfg.Merger.Pull(t) {
					// Caught up to the leader's reads: only a new
					// frontier advance, arrival, or detach changes
					// anything; park until then.
					t.fetcherWait = p
					p.Block()
				}
				continue
			}
			if !t.playing {
				t.fetcherWait = p
				p.Block()
				continue
			}
			t.sleepUntilSpace(p, size-free)
			continue
		}
		size := t.place.SizeOfBlock(t.vid, t.nextReq)
		if t.degraded && t.nextReq%2 == 1 {
			// Shed stream: skip every other block. The hole is admitted
			// as if it had arrived — display plays over the missing
			// frames (bounded quality loss) while the disks see half
			// this stream's demand.
			b := t.nextReq
			t.nextReq++
			lo := int64(b) * t.place.BlockSize()
			t.stats.DegradedBlocks++
			t.stats.DegradedFrames += int64(t.video.FramesSpanned(lo, lo+size))
			t.admit(b, size)
			t.wakeOnArrival()
			continue
		}
		t.syncConsumption()
		free := t.cfg.MemBytes - t.BufferedBytes() - t.outstanding
		if free < size {
			if !t.playing {
				// No consumption while primed/paused/stalled: park until
				// display progresses.
				t.fetcherWait = p
				p.Block()
				continue
			}
			t.sleepUntilSpace(p, size-free)
			continue
		}
		t.issue(p, size)
	}
}

// readmitFailover migrates an impacted session's admission slot through
// the failover-priority path: the old slot is returned (the crashed
// node's share of capacity is gone) and the session re-admits ahead of
// new arrivals. Runs on the fetcher so the player keeps displaying
// buffered data while the re-admission waits. A rejection — the
// survivors genuinely cannot carry the stream — aborts the session,
// which is then accounted lost.
func (t *Terminal) readmitFailover(p *sim.Proc) {
	if t.cfg.Admission == nil || !t.holdsSlot {
		return
	}
	t.stats.FailoverReadmits++
	t.cfg.Admission.Release(t.id)
	t.holdsSlot = false
	if t.cfg.Admission.AdmitFailover(p, t.id) {
		t.holdsSlot = true
		return
	}
	t.stats.AdmRejects++
	t.abortSession()
}

// abortSession ends the current session early: pending requests are
// cancelled, no further blocks are fetched, and the player drains the
// buffered tail and returns. resolveSessionEnd then counts it lost.
func (t *Terminal) abortSession() {
	t.sessAborted = true
	t.leaveMerge(true)
	t.cancelPending()
	t.nextReq = t.nblocks
	t.wakeOnArrival()
}

// sleepUntilSpace waits until display will have freed `need` more bytes.
func (t *Terminal) sleepUntilSpace(p *sim.Proc, need int64) {
	period := sim.Time(t.video.FramePeriod())
	base := t.video.BytesBeforeFrame(t.consumedFrames)
	// First frame count cf with BytesBeforeFrame(cf) >= base+need.
	lo, hi := t.consumedFrames, t.video.NumFrames()
	for lo < hi {
		mid := (lo + hi) / 2
		if t.video.BytesBeforeFrame(mid) >= base+need {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	wake := t.displayStart + sim.Time(lo)*period
	if wake <= t.k.Now() {
		// Consumption is capped by the frontier (display is about to
		// stall); park instead of spinning.
		t.fetcherWait = p
		p.Block()
		return
	}
	p.SleepUntil(wake)
}

// issue sends the request for block t.nextReq. With failover enabled,
// a block whose primary node is suspect is resolved to its mirror copy
// up front — the session streams on from survivors instead of paying a
// timeout-and-retry round trip per block.
func (t *Terminal) issue(p *sim.Proc, size int64) {
	b := t.nextReq
	t.nextReq++
	t.outstanding += size
	addr := t.place.Locate(t.vid, b)
	copy := 0
	if t.cfg.Failover && t.place.Replicas() > 1 && t.cfg.Health.Suspect(addr.Node) {
		if alt := t.place.LocateCopy(t.vid, b, 1); !t.cfg.Health.Suspect(alt.Node) {
			t.rec.SessFailover(t.id, addr.Node, t.vid, b)
			t.stats.FailoverRedirects++
			addr, copy = alt, 1
		}
	}
	req := &proto.BlockRequest{
		Video:    t.vid,
		Block:    b,
		Size:     size,
		Deadline: t.deadlineFor(b),
		Terminal: t.id,
		Copy:     copy,
		Deliver:  t.onReply,
		Issued:   t.k.Now(),
	}
	if t.cfg.SendLatency > 0 {
		p.Sleep(t.cfg.SendLatency)
	}
	t.send(addr.Node, req)
	if t.cfg.RequestTimeout > 0 {
		pr := &pendingReq{req: req, vid: t.vid, block: b, size: size, tries: 1, node: addr.Node}
		t.pending[b] = pr
		t.armTimeout(pr)
	}
}

// deadlineFor computes the §5.2.2 deadline: the display time of the first
// byte of block b. While display is stalled the projection assumes
// display resumes immediately, making priming requests urgent.
func (t *Terminal) deadlineFor(b int) sim.Time {
	off := int64(b) * t.place.BlockSize()
	fo := t.video.FirstIncompleteFrame(off) // frame that needs byte `off`
	period := sim.Time(t.video.FramePeriod())
	if t.playing {
		return t.displayStart + sim.Time(fo)*period
	}
	return t.k.Now() + sim.Time(fo-t.consumedFrames)*period
}

// onReply handles a data reply, in kernel context. The terminal-side
// receive latency is modeled as a delivery delay.
func (t *Terminal) onReply(req *proto.BlockRequest) {
	if t.cfg.RecvLatency > 0 {
		t.k.After(t.cfg.RecvLatency, func() { t.applyArrival(req) })
		return
	}
	t.applyArrival(req)
}

func (t *Terminal) applyArrival(req *proto.BlockRequest) {
	if t.cfg.Health != nil {
		// Any reply — data, NACK, even a stale one — proves the sending
		// node is alive.
		t.cfg.Health.ReportOK(t.id, t.place.LocateCopy(req.Video, req.Block, req.Copy).Node)
	}
	pr := t.pending[req.Block]
	live := pr != nil && pr.req == req && req.Video == t.vid
	if t.cfg.RequestTimeout > 0 && !live {
		// A reply from a superseded attempt (a retry was already issued),
		// an already-resolved block, or a leftover from a previous movie:
		// the retry machinery owns the accounting, nothing to do.
		t.stats.StaleDrops++
		return
	}
	if req.Video != t.vid {
		// Unreachable without the retry machinery (a movie only ends once
		// every block arrived), but tolerate rather than crash.
		t.stats.StaleDrops++
		return
	}
	if req.Status != proto.StatusOK {
		// NACK: the block's disk is fail-stopped. Fail over to a replica
		// (or back off and retry the same copy) until retries run out.
		t.stats.Nacks++
		if pr == nil {
			// Timeouts disabled (direct fault injection in tests): no
			// retry machinery, the block is simply lost.
			t.loseBlock(req.Block, req.Size, causeDiskFail)
			return
		}
		t.retryOrGiveUp(pr, causeDiskFail)
		return
	}
	if live {
		delete(t.pending, req.Block)
	}
	t.outstanding -= req.Size
	t.stats.BlocksReceived++
	t.stats.BytesReceived += req.Size
	rt := t.k.Now().Sub(req.Issued)
	t.stats.RespTimeSum += rt
	if rt > t.stats.RespTimeMax {
		t.stats.RespTimeMax = rt
	}
	if t.cfg.OnRespTime != nil {
		t.cfg.OnRespTime(rt)
	}
	if t.impactNode >= 0 && live && (pr.tries == 1 || pr.redirected) &&
		req.Issued >= t.impactAt &&
		t.place.Locate(req.Video, req.Block).Node == t.impactNode {
		// Recovery: a block homed on the impacted node arrived on its
		// first attempt (proactive mirror redirect, or the node's own
		// restarted primary) or via a deliberate failover resend around
		// the suspect — the session streams on without paying further
		// timeout penalties. Pre-impaction stragglers (Issued < impactAt)
		// and blind retry rotation don't count.
		lat := t.k.Now().Sub(t.impactAt)
		t.stats.SessionsRecovered++
		t.stats.FailoverLatSum += lat
		if lat > t.stats.FailoverLatMax {
			t.stats.FailoverLatMax = lat
		}
		t.impactNode = -1
	}
	t.admit(req.Block, req.Size)
	t.rec.TermBuffer(t.id, t.BufferedBytes(), t.outstanding, t.frontierBlocks)
	t.wakeOnArrival()
}

// admit merges an arrived (or abandoned-hole) block into the stream
// buffer, advancing the contiguous frontier over any out-of-order run.
func (t *Terminal) admit(block int, size int64) {
	_, dup := t.ooo[block]
	if block < t.frontierBlocks || dup {
		// Stale block from before a seek repositioned the stream (or a
		// duplicate): the data is no longer wanted; only the space
		// accounting mattered. The priming check must still run — this
		// arrival may have been the last outstanding one.
		t.stats.StaleDrops++
		return
	}
	t.ooo[block] = size
	t.oooBytes += size
	for {
		sz, ok := t.ooo[t.frontierBlocks]
		if !ok {
			break
		}
		delete(t.ooo, t.frontierBlocks)
		t.oooBytes -= sz
		t.frontierBytes += sz
		b := t.frontierBlocks
		t.frontierBlocks++
		if t.cfg.Merger != nil {
			// A leader's frontier advancing paces the merged stream's
			// forwards; a follower's reports retire in-flight bytes so
			// more can be forwarded (core/merge.go ignores the rest).
			t.cfg.Merger.Advance(t, t.vid, b)
		}
	}
}

// wakeOnArrival re-evaluates the parked player and fetcher after any
// change to the buffer or outstanding accounting.
func (t *Terminal) wakeOnArrival() {
	if t.playerWait != nil && t.primed() {
		w := t.playerWait
		t.playerWait = nil
		t.k.Wake(w)
	}
	// A stale arrival frees space without extending the buffer (the
	// outstanding count drops), so a parked fetcher must re-evaluate;
	// it re-parks immediately if nothing changed for it.
	t.wakeFetcher()
}
