package terminal

import (
	"testing"

	"spiffi/internal/layout"
	"spiffi/internal/mpeg"
	"spiffi/internal/proto"
	"spiffi/internal/rng"
	"spiffi/internal/sim"
)

// testRig wires one terminal to a fake server that answers every block
// request after a configurable delay.
type testRig struct {
	k       *sim.Kernel
	lib     *mpeg.Library
	place   *layout.Placement
	term    *Terminal
	delay   sim.Duration
	stall   bool // when true, requests are dropped until released
	held    []*proto.BlockRequest
	reqs    int
	started int
}

func newRig(t *testing.T, cfg Config, delay sim.Duration) *testRig {
	t.Helper()
	params := mpeg.DefaultParams()
	params.Length = 30 * sim.Second
	lib := mpeg.NewLibrary(params, 2, 7)
	sizes := []int64{lib.Get(0).TotalBytes(), lib.Get(1).TotalBytes()}
	place := layout.NewStriped(sizes, 256*1024, 2, 2)
	r := &testRig{
		k:     sim.NewKernel(),
		lib:   lib,
		place: place,
		delay: delay,
	}
	measuring := func() bool { return true }
	r.term = New(r.k, 0, cfg, lib, place, rng.New(3),
		r.send,
		func() int { return 0 },
		measuring,
		func() { r.started++ },
	)
	return r
}

func (r *testRig) send(node int, req *proto.BlockRequest) {
	r.reqs++
	if r.stall {
		r.held = append(r.held, req)
		return
	}
	r.k.After(r.delay, func() { req.Deliver(req) })
}

func (r *testRig) release() {
	for _, req := range r.held {
		req := req
		r.k.After(r.delay, func() { req.Deliver(req) })
	}
	r.held = nil
	r.stall = false
}

func baseCfg() Config {
	return Config{MemBytes: 1024 * 1024} // 4 blocks of 256 KB
}

func TestPrimesBeforeDisplay(t *testing.T) {
	r := newRig(t, baseCfg(), 10*sim.Millisecond)
	r.term.Start(0)
	// After a short while the terminal must have started and requested
	// at least its buffer's worth of blocks.
	if err := r.k.Run(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	defer r.k.Close()
	if r.started != 1 {
		t.Fatal("terminal did not start display")
	}
	if r.reqs < 4 {
		t.Fatalf("only %d requests before display; want a primed buffer (4 blocks)", r.reqs)
	}
	if got := r.term.Stats().Primes; got != 1 {
		t.Fatalf("primes = %d, want 1", got)
	}
}

func TestSteadyStreamNoGlitches(t *testing.T) {
	r := newRig(t, baseCfg(), 20*sim.Millisecond)
	r.term.Start(0)
	// Play the whole 30-second video.
	if err := r.k.Run(sim.Time(40 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	defer r.k.Close()
	st := r.term.Stats()
	if st.GlitchesTotal != 0 {
		t.Fatalf("fast server still produced %d glitches", st.GlitchesTotal)
	}
	if st.MoviesCompleted < 1 {
		t.Fatalf("movie never completed (completed=%d)", st.MoviesCompleted)
	}
}

func TestServerStallCausesGlitchAndReprime(t *testing.T) {
	cfg := baseCfg()
	cfg.RandomInitialPosition = false
	r := newRig(t, cfg, 5*sim.Millisecond)
	r.term.Start(0)
	// Let it prime and play ~2s, then stall the server for 10s.
	if err := r.k.Run(sim.Time(2 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	r.stall = true
	if err := r.k.Run(sim.Time(12 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	defer r.k.Close()
	st := r.term.Stats()
	if st.GlitchesTotal == 0 {
		t.Fatal("10s server stall did not glitch a 1MB-buffer terminal")
	}
	if st.GlitchesTotal > 1 {
		t.Fatalf("glitched %d times during one stall; re-priming must prevent rapid repeats", st.GlitchesTotal)
	}
	// Release the server: playback must resume and finish.
	r.release()
	if err := r.k.Run(sim.Time(60 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if r.term.Stats().MoviesCompleted < 1 {
		t.Fatal("movie never completed after recovery")
	}
}

func TestGlitchCountingGatedByMeasuring(t *testing.T) {
	params := mpeg.DefaultParams()
	params.Length = 30 * sim.Second
	lib := mpeg.NewLibrary(params, 1, 7)
	place := layout.NewStriped([]int64{lib.Get(0).TotalBytes()}, 256*1024, 2, 2)
	k := sim.NewKernel()
	defer k.Close()
	measuring := false
	var r2 *testRig // reuse send helper shape inline
	_ = r2
	var term *Terminal
	stall := false
	send := func(node int, req *proto.BlockRequest) {
		if !stall {
			k.After(5*sim.Millisecond, func() { req.Deliver(req) })
		}
	}
	cfg := Config{MemBytes: 1024 * 1024, RandomInitialPosition: false}
	term = New(k, 0, cfg, lib, place, rng.New(3), send,
		func() int { return 0 },
		func() bool { return measuring },
		nil)
	term.Start(0)
	if err := k.Run(sim.Time(2 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	stall = true // glitch happens while NOT measuring
	if err := k.Run(sim.Time(10 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	st := term.Stats()
	if st.GlitchesTotal == 0 {
		t.Fatal("no glitch during stall")
	}
	if st.Glitches != 0 {
		t.Fatalf("unmeasured glitch was counted: %d", st.Glitches)
	}
}

func TestDeadlinesReflectBufferedPlaytime(t *testing.T) {
	cfg := baseCfg()
	cfg.RandomInitialPosition = false
	params := mpeg.DefaultParams()
	params.Length = 30 * sim.Second
	lib := mpeg.NewLibrary(params, 1, 7)
	place := layout.NewStriped([]int64{lib.Get(0).TotalBytes()}, 256*1024, 2, 2)
	k := sim.NewKernel()
	defer k.Close()
	var deadlines []sim.Time
	var issued []sim.Time
	send := func(node int, req *proto.BlockRequest) {
		deadlines = append(deadlines, req.Deadline)
		issued = append(issued, k.Now())
		k.After(10*sim.Millisecond, func() { req.Deliver(req) })
	}
	term := New(k, 0, cfg, lib, place, rng.New(3), send,
		func() int { return 0 }, func() bool { return true }, nil)
	term.Start(0)
	if err := k.Run(sim.Time(10 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if len(deadlines) < 6 {
		t.Fatalf("too few requests: %d", len(deadlines))
	}
	// The very first request (empty buffer) is maximally urgent.
	if deadlines[0] != issued[0] {
		t.Fatalf("first deadline %v != issue time %v", deadlines[0], issued[0])
	}
	// Once playing, deadlines must exceed issue times (buffered slack)
	// and be strictly increasing block over block.
	last := deadlines[4]
	for i := 5; i < len(deadlines); i++ {
		if deadlines[i] <= last {
			t.Fatalf("deadline %d (%v) not increasing past %v", i, deadlines[i], last)
		}
		if deadlines[i] < issued[i] {
			t.Fatalf("deadline %d (%v) before issue time %v", i, deadlines[i], issued[i])
		}
		last = deadlines[i]
	}
}

func TestPauseExtendsPlaybackWithoutGlitch(t *testing.T) {
	cfg := baseCfg()
	cfg.RandomInitialPosition = false
	cfg.Pause = &PauseConfig{MeanPauses: 3, MeanDuration: 2 * sim.Second}
	r := newRig(t, cfg, 10*sim.Millisecond)
	r.term.Start(0)
	if err := r.k.Run(sim.Time(90 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	defer r.k.Close()
	st := r.term.Stats()
	if st.GlitchesTotal != 0 {
		t.Fatalf("pausing produced %d glitches", st.GlitchesTotal)
	}
	if st.MoviesCompleted < 1 {
		t.Fatal("paused movie never completed")
	}
}

func TestRandomInitialPositionShortensFirstMovie(t *testing.T) {
	cfg := baseCfg()
	cfg.RandomInitialPosition = true
	r := newRig(t, cfg, 5*sim.Millisecond)
	r.term.Start(0)
	// A 30s video started at a random position should complete well
	// before 30s; by 29s the first completion must have happened.
	if err := r.k.Run(sim.Time(29 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	defer r.k.Close()
	if r.term.Stats().MoviesCompleted < 1 {
		t.Fatal("random-position first movie did not finish early")
	}
}

// fakeGate makes terminal 0 a follower of a phantom leader.
type fakeGate struct {
	k      *sim.Kernel
	delay  sim.Duration
	leader bool
	calls  int
}

func (g *fakeGate) JoinOrLead(p *sim.Proc, term, video int) bool {
	g.calls++
	p.Sleep(g.delay)
	return g.leader
}

func TestFollowerPlacesNoServerLoad(t *testing.T) {
	cfg := baseCfg()
	gate := &fakeGate{delay: sim.Second, leader: false}
	r := newRig(t, cfg, 5*sim.Millisecond)
	r.term.cfg.Gate = gate
	gate.k = r.k
	r.term.Start(0)
	if err := r.k.Run(sim.Time(35 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	defer r.k.Close()
	if r.reqs != 0 {
		t.Fatalf("follower issued %d requests; must be zero", r.reqs)
	}
	if gate.calls == 0 {
		t.Fatal("gate never consulted")
	}
	if r.started == 0 {
		t.Fatal("follower never reported started")
	}
	// It must have "completed" at least one ridden movie by 35s.
	if r.term.Stats().MoviesCompleted < 1 {
		t.Fatal("follower did not ride a movie to completion")
	}
}

func TestOutOfOrderArrivalAssembledContiguously(t *testing.T) {
	// Deliver block replies in reverse order: display must still work.
	params := mpeg.DefaultParams()
	params.Length = 30 * sim.Second
	lib := mpeg.NewLibrary(params, 1, 7)
	place := layout.NewStriped([]int64{lib.Get(0).TotalBytes()}, 256*1024, 2, 2)
	k := sim.NewKernel()
	defer k.Close()
	// Even blocks answer slowly, odd blocks quickly, so consecutive
	// requests issued together arrive out of order.
	send := func(node int, req *proto.BlockRequest) {
		d := 5 * sim.Millisecond
		if req.Block%2 == 0 {
			d = 40 * sim.Millisecond
		}
		k.After(d, func() { req.Deliver(req) })
	}
	cfg := Config{MemBytes: 1024 * 1024, RandomInitialPosition: false}
	term := New(k, 0, cfg, lib, place, rng.New(3), send,
		func() int { return 0 }, func() bool { return true }, nil)
	term.Start(0)
	if err := k.Run(sim.Time(45 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	st := term.Stats()
	if st.MoviesCompleted < 1 {
		t.Fatalf("movie never completed with out-of-order delivery (glitches=%d)", st.GlitchesTotal)
	}
}
