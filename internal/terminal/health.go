package terminal

import (
	"spiffi/internal/sim"
	"spiffi/internal/trace"
)

// NodeHealth is the shared per-node suspicion tracker behind node
// failover. Crashed nodes are fail-stop silent — they NACK nothing —
// so the only crash signal terminals get is the request-timeout
// watchdog. Every timeout against a node bumps its consecutive-timeout
// count; at Threshold the node is marked suspect and terminals with
// failover enabled re-resolve its blocks to mirror copies. Any reply
// from the node (data or NACK — both prove liveness) clears the count,
// as does an observed restart: terminals avoiding a suspect node stop
// talking to it, so without the restart hook a recovered node would
// stay suspect forever.
//
// One tracker is shared by all terminals of a simulation, so the first
// terminal to trip the threshold warns the rest. All methods run in
// kernel context (single-threaded); updates are pure counter state and
// trace emits — no events are scheduled and no randomness is drawn, so
// an enabled-but-untripped tracker leaves the event stream untouched.
// A nil *NodeHealth is valid and inert.
type NodeHealth struct {
	k         *sim.Kernel
	rec       *trace.Recorder
	threshold int
	consec    []int      // consecutive timeouts per node, any terminal
	suspect   []bool     // currently suspected down
	suspectAt []sim.Time // when suspicion started (for rejoin downtime)

	suspects int64 // suspicion episodes opened
	rejoins  int64 // suspicion episodes cleared
}

// NewNodeHealth creates a tracker for the given node count. threshold
// is the consecutive-timeout count at which a node becomes suspect
// (minimum 1).
func NewNodeHealth(k *sim.Kernel, nodes, threshold int) *NodeHealth {
	if threshold < 1 {
		threshold = 1
	}
	return &NodeHealth{
		k:         k,
		threshold: threshold,
		consec:    make([]int, nodes),
		suspect:   make([]bool, nodes),
		suspectAt: make([]sim.Time, nodes),
	}
}

// SetTrace attaches a trace recorder (nil is fine).
func (h *NodeHealth) SetTrace(rec *trace.Recorder) { h.rec = rec }

// Suspect reports whether the node is currently suspected down.
func (h *NodeHealth) Suspect(node int) bool { return h != nil && h.suspect[node] }

// ReportTimeout records a request timeout against the node, observed by
// the given terminal, possibly opening a suspicion episode.
func (h *NodeHealth) ReportTimeout(terminal, node int) {
	if h == nil {
		return
	}
	h.consec[node]++
	if !h.suspect[node] && h.consec[node] >= h.threshold {
		h.suspect[node] = true
		h.suspectAt[node] = h.k.Now()
		h.suspects++
		h.rec.NodeSuspect(terminal, node, h.consec[node])
	}
}

// ReportOK records any reply from the node — data or NACK, both prove
// the node is alive — clearing its timeout count and any suspicion.
func (h *NodeHealth) ReportOK(terminal, node int) {
	if h == nil || (h.consec[node] == 0 && !h.suspect[node]) {
		return
	}
	h.consec[node] = 0
	if h.suspect[node] {
		h.clear(terminal, node, h.k.Now().Sub(h.suspectAt[node]))
	}
}

// NoteRestart records an observed node restart (wired from the server's
// restart hook), clearing suspicion with the node's true downtime.
func (h *NodeHealth) NoteRestart(node int, downtime sim.Duration) {
	if h == nil {
		return
	}
	h.consec[node] = 0
	if h.suspect[node] {
		h.clear(-1, node, downtime)
	}
}

func (h *NodeHealth) clear(terminal, node int, downtime sim.Duration) {
	h.suspect[node] = false
	h.rejoins++
	h.rec.NodeRejoin(terminal, node, downtime)
}

// Suspects returns the number of suspicion episodes opened.
func (h *NodeHealth) Suspects() int64 {
	if h == nil {
		return 0
	}
	return h.suspects
}

// Rejoins returns the number of suspicion episodes cleared.
func (h *NodeHealth) Rejoins() int64 {
	if h == nil {
		return 0
	}
	return h.rejoins
}
