package prefetch

import (
	"testing"

	"spiffi/internal/sim"
)

func TestFIFOOrder(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	q := NewFIFO(k)
	var got []int
	k.Spawn("w", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p).Block)
		}
	})
	k.At(0, func() {
		q.Put(Job{Block: 1})
		q.Put(Job{Block: 2})
		q.Put(Job{Block: 3})
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
}

func TestDeadlineOrdersByUrgency(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	q := NewDeadline(k, 0)
	var got []int
	k.At(0, func() {
		q.Put(Job{Block: 1, Deadline: sim.Time(30 * sim.Second)})
		q.Put(Job{Block: 2, Deadline: sim.Time(10 * sim.Second)})
		q.Put(Job{Block: 3, Deadline: sim.Time(20 * sim.Second)})
	})
	k.SpawnAt(1, "w", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p).Block)
		}
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[1] != 3 || got[2] != 1 {
		t.Fatalf("order = %v, want most urgent first", got)
	}
}

func TestDeadlineTiesFIFO(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	q := NewDeadline(k, 0)
	var got []int
	k.At(0, func() {
		q.Put(Job{Block: 7, Deadline: 100})
		q.Put(Job{Block: 8, Deadline: 100})
	})
	k.SpawnAt(1, "w", func(p *sim.Proc) {
		got = append(got, q.Get(p).Block, q.Get(p).Block)
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 || got[1] != 8 {
		t.Fatalf("tie order = %v", got)
	}
}

func TestDelayedWithholdsUntilWindow(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	// Max advance 8s: a job due at t=20s may issue from t=12s.
	q := NewDeadline(k, 8*sim.Second)
	var issuedAt sim.Time = -1
	k.At(0, func() {
		q.Put(Job{Block: 1, Deadline: sim.Time(20 * sim.Second)})
	})
	k.Spawn("w", func(p *sim.Proc) {
		q.Get(p)
		issuedAt = p.Now()
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if want := sim.Time(12 * sim.Second); issuedAt != want {
		t.Fatalf("issued at %v, want %v (deadline - max advance)", issuedAt, want)
	}
}

func TestDelayedIssuesImmediatelyInsideWindow(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	q := NewDeadline(k, 8*sim.Second)
	var issuedAt sim.Time = -1
	k.At(sim.Time(15*sim.Second), func() {
		q.Put(Job{Block: 1, Deadline: sim.Time(20 * sim.Second)}) // already within 8s
	})
	k.Spawn("w", func(p *sim.Proc) {
		q.Get(p)
		issuedAt = p.Now()
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if want := sim.Time(15 * sim.Second); issuedAt != want {
		t.Fatalf("issued at %v, want %v", issuedAt, want)
	}
}

func TestDelayedUrgentArrivalPreemptsParkedTimer(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	q := NewDeadline(k, 4*sim.Second)
	var got []int
	var times []sim.Time
	k.Spawn("w", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			j := q.Get(p)
			got = append(got, j.Block)
			times = append(times, p.Now())
		}
	})
	k.At(0, func() {
		q.Put(Job{Block: 1, Deadline: sim.Time(100 * sim.Second)}) // releases at 96s
	})
	// At t=10s an urgent job arrives (releases at 16s): it must be served
	// first, long before the original timer.
	k.At(sim.Time(10*sim.Second), func() {
		q.Put(Job{Block: 2, Deadline: sim.Time(20 * sim.Second)})
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Fatalf("order = %v, urgent job must issue first", got)
	}
	if times[0] != sim.Time(16*sim.Second) {
		t.Fatalf("urgent issued at %v, want 16s", times[0])
	}
	if times[1] != sim.Time(96*sim.Second) {
		t.Fatalf("lazy issued at %v, want 96s", times[1])
	}
}

func TestMultipleWorkersDrainQueue(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	q := NewDeadline(k, 0)
	served := 0
	for w := 0; w < 3; w++ {
		k.Spawn("w", func(p *sim.Proc) {
			for {
				q.Get(p)
				served++
				p.Sleep(10)
			}
		})
	}
	k.At(0, func() {
		for i := 0; i < 10; i++ {
			q.Put(Job{Block: i, Deadline: sim.Time(i)})
		}
	})
	if err := k.Run(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	if served != 10 {
		t.Fatalf("served = %d, want 10", served)
	}
	if q.Len() != 0 {
		t.Fatalf("queue len = %d", q.Len())
	}
}

func TestConfigNewQueue(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	if _, ok := (Config{Mode: ModeBasic}).NewQueue(k).(*FIFO); !ok {
		t.Fatal("basic mode should build FIFO")
	}
	q, ok := (Config{Mode: ModeRealTime}).NewQueue(k).(*Deadline)
	if !ok || q.MaxAdvance() != 0 {
		t.Fatal("real-time mode should build ungated deadline queue")
	}
	dq, ok := (Config{Mode: ModeDelayed, MaxAdvance: 8 * sim.Second}).NewQueue(k).(*Deadline)
	if !ok || dq.MaxAdvance() != 8*sim.Second {
		t.Fatal("delayed mode should carry max advance")
	}
}
