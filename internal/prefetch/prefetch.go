// Package prefetch implements the three SPIFFI prefetching strategies of
// §5.2.3. Prefetch requests for each disk wait in a queue drained by a
// fixed set of prefetch worker processes (the number of workers sets the
// prefetching "aggressiveness"):
//
//   - Basic: a FIFO queue; requests reach the disk with no deadline and
//     ride in the lowest real-time priority class (or are
//     indistinguishable from demand reads under non-real-time
//     scheduling).
//   - Real-time prefetching: the queue orders requests by the deadline
//     the anticipated true request is estimated to carry, and that
//     deadline accompanies the disk request so the real-time disk
//     scheduler can prioritize urgent prefetches above lazy demand reads.
//   - Delayed prefetching: additionally, a request may not be issued
//     until it is within MaxAdvance of its estimated deadline (Figure 7),
//     bounding how long prefetched data occupies server memory.
package prefetch

import (
	"spiffi/internal/sim"
)

// Job is one prefetch request: fetch block of video, wanted by deadline.
type Job struct {
	Video    int
	Block    int
	Deadline sim.Time // estimated deadline of the anticipated true request
	seq      uint64
}

// Queue is the per-disk prefetch request queue.
type Queue interface {
	// Put enqueues a job (never blocks).
	Put(j Job)
	// Get blocks the worker until a job is eligible for issue, then
	// dequeues and returns it.
	Get(p *sim.Proc) Job
	// Len reports queued jobs.
	Len() int
}

// FIFO is the basic prefetching queue: jobs issue in arrival order as
// soon as a worker is free.
type FIFO struct {
	mbox *sim.Mailbox[Job]
}

// NewFIFO creates the basic queue.
func NewFIFO(k *sim.Kernel) *FIFO {
	return &FIFO{mbox: sim.NewMailbox[Job](k)}
}

// Put implements Queue.
func (f *FIFO) Put(j Job) { f.mbox.Put(j) }

// Get implements Queue.
func (f *FIFO) Get(p *sim.Proc) Job { return f.mbox.Get(p) }

// Len implements Queue.
func (f *FIFO) Len() int { return f.mbox.Len() }

// Deadline is the real-time prefetching queue: a priority queue on
// estimated deadline. With MaxAdvance > 0 it is the delayed prefetching
// queue: the head job is withheld until now >= deadline - MaxAdvance.
type Deadline struct {
	k *sim.Kernel
	// MaxAdvance is the maximum advance prefetch time; zero means issue
	// immediately (pure real-time prefetching).
	maxAdvance sim.Duration

	heap    []Job
	seq     uint64
	waiters []*sim.Proc // parked workers
	timer   bool        // a release timer is pending
	timerAt sim.Time    // when the pending timer fires
}

// NewDeadline creates a real-time (maxAdvance == 0) or delayed
// (maxAdvance > 0) prefetch queue.
func NewDeadline(k *sim.Kernel, maxAdvance sim.Duration) *Deadline {
	if maxAdvance < 0 {
		panic("prefetch: negative max advance prefetch time")
	}
	return &Deadline{k: k, maxAdvance: maxAdvance}
}

// MaxAdvance returns the configured maximum advance prefetch time.
func (d *Deadline) MaxAdvance() sim.Duration { return d.maxAdvance }

// Put implements Queue.
func (d *Deadline) Put(j Job) {
	d.seq++
	j.seq = d.seq
	d.push(j)
	d.kick()
}

// Len implements Queue.
func (d *Deadline) Len() int { return len(d.heap) }

// releaseTime is when job j may be issued.
func (d *Deadline) releaseTime(j Job) sim.Time {
	if d.maxAdvance == 0 {
		return 0 // immediately
	}
	return j.Deadline.Add(-d.maxAdvance)
}

// Get implements Queue.
func (d *Deadline) Get(p *sim.Proc) Job {
	for {
		if len(d.heap) > 0 {
			head := d.heap[0]
			rel := d.releaseTime(head)
			if rel <= d.k.Now() {
				return d.pop()
			}
			// Park until the head becomes eligible; a new, earlier job may
			// arrive meanwhile, in which case kick() reschedules us.
			d.armTimer(rel)
		}
		d.waiters = append(d.waiters, p)
		p.Block()
	}
}

// kick wakes one parked worker if a job is currently eligible, or arms a
// release timer otherwise.
func (d *Deadline) kick() {
	if len(d.waiters) == 0 || len(d.heap) == 0 {
		return
	}
	rel := d.releaseTime(d.heap[0])
	if rel <= d.k.Now() {
		w := d.waiters[0]
		copy(d.waiters, d.waiters[1:])
		d.waiters = d.waiters[:len(d.waiters)-1]
		d.k.Wake(w)
		return
	}
	d.armTimer(rel)
}

// armTimer schedules a kick at time t. A pending timer is kept only if it
// fires no later than t; an urgent new job arms an earlier timer (the
// superseded one fires harmlessly and re-checks).
func (d *Deadline) armTimer(t sim.Time) {
	if d.timer && d.timerAt <= t {
		return
	}
	d.timer = true
	d.timerAt = t
	d.k.At(t, func() {
		if d.timerAt == t {
			d.timer = false
		}
		d.kick()
	})
}

// --- min-heap on (Deadline, seq) ---

func (d *Deadline) push(j Job) {
	d.heap = append(d.heap, j)
	i := len(d.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !jobLess(d.heap[i], d.heap[parent]) {
			break
		}
		d.heap[i], d.heap[parent] = d.heap[parent], d.heap[i]
		i = parent
	}
}

func (d *Deadline) pop() Job {
	top := d.heap[0]
	n := len(d.heap) - 1
	d.heap[0] = d.heap[n]
	d.heap = d.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && jobLess(d.heap[l], d.heap[smallest]) {
			smallest = l
		}
		if r < n && jobLess(d.heap[r], d.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		d.heap[i], d.heap[smallest] = d.heap[smallest], d.heap[i]
		i = smallest
	}
	return top
}

func jobLess(a, b Job) bool {
	if a.Deadline != b.Deadline {
		return a.Deadline < b.Deadline
	}
	return a.seq < b.seq
}

// Mode selects the prefetching strategy.
type Mode string

// The strategies of §5.2.3 plus "off".
const (
	ModeOff      Mode = "off"
	ModeBasic    Mode = "basic"
	ModeRealTime Mode = "real-time"
	ModeDelayed  Mode = "delayed"
)

// Config declares a node's prefetch machinery.
type Config struct {
	Mode Mode
	// WorkersPerDisk sets prefetch aggressiveness (§5.2.3). Zero selects
	// a per-scheduler default at simulation assembly.
	WorkersPerDisk int
	// MaxAdvance is the maximum advance prefetch time for ModeDelayed
	// (paper explores 8s and 4s).
	MaxAdvance sim.Duration
}

// NewQueue builds the queue for one disk.
func (c Config) NewQueue(k *sim.Kernel) Queue {
	switch c.Mode {
	case ModeBasic:
		return NewFIFO(k)
	case ModeRealTime:
		return NewDeadline(k, 0)
	case ModeDelayed:
		return NewDeadline(k, c.MaxAdvance)
	default:
		panic("prefetch: NewQueue with mode " + string(c.Mode))
	}
}
