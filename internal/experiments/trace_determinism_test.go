package experiments

import (
	"bytes"
	"sort"
	"sync"
	"testing"

	"spiffi/internal/trace"
)

// traceBlob runs fig09 at bench fidelity with tracing enabled and
// returns every delivered trace rendered to JSONL, concatenated in
// sorted-label order. Delivery order varies with scheduling, but the
// set of (label, events) pairs must not — traces surface only through
// consumed search results, the same discipline that makes every other
// metric bit-identical across worker counts.
func traceBlob(t *testing.T, workers int) []byte {
	t.Helper()
	f := Bench()
	f.Workers = workers
	f.run = nil
	f.Trace = trace.Options{Enabled: true}
	var mu sync.Mutex
	got := map[string][]byte{}
	f.TraceSink = func(label string, d *trace.Data) {
		var buf bytes.Buffer
		if err := trace.WriteJSONL(&buf, d); err != nil {
			t.Errorf("WriteJSONL(%s): %v", label, err)
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if prev, ok := got[label]; ok && !bytes.Equal(prev, buf.Bytes()) {
			t.Errorf("workers=%d: label %q delivered twice with different bytes", workers, label)
		}
		got[label] = buf.Bytes()
	}
	if _, err := Run("fig09", f); err != nil {
		t.Fatalf("fig09 workers=%d: %v", workers, err)
	}
	labels := make([]string, 0, len(got))
	for l := range got {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var out bytes.Buffer
	for _, l := range labels {
		out.WriteString("== " + l + " ==\n")
		out.Write(got[l])
	}
	return out.Bytes()
}

// The traced runs a search consumes — and therefore the exported JSONL
// bytes — must be identical whatever the worker count. Speculative
// probes record traces too, but only consumed results ever reach the
// sink.
func TestTraceDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy; trace export determinism is also covered by internal/trace tests")
	}
	seq := traceBlob(t, 1)
	par := traceBlob(t, 8)
	if len(seq) == 0 {
		t.Fatal("no traces delivered with tracing enabled")
	}
	if !bytes.Equal(seq, par) {
		t.Errorf("trace JSONL differs between workers=1 (%d bytes) and workers=8 (%d bytes)",
			len(seq), len(par))
	}
}
