package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestFig08ZipfAnalytic(t *testing.T) {
	r, err := Fig08Zipf(Bench())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(r.Series))
	}
	// Uniform is flat at 1/64; z=1.5 is the most skewed.
	u, ok := r.seriesY("uniform", 1)
	if !ok || math.Abs(u-1.0/64) > 1e-9 {
		t.Fatalf("uniform P(rank1) = %v", u)
	}
	z15, _ := r.seriesY("z=1.5", 1)
	z10, _ := r.seriesY("z=1.0", 1)
	z05, _ := r.seriesY("z=0.5", 1)
	if !(z15 > z10 && z10 > z05 && z05 > u) {
		t.Fatalf("skew ordering broken: %v %v %v %v", z15, z10, z05, u)
	}
	// Each PMF sums to ~1.
	for _, s := range r.Series {
		sum := 0.0
		for _, p := range s.Points {
			sum += p.Y
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s sums to %v", s.Name, sum)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17", "fig18", "fig19",
		"table2", "table3", "piggyback",
		"ablation-rt", "ablation-prefetch", "ablation-cache",
		"ablation-sched", "ablation-zoned", "admission", "vcr",
		"faults", "overload", "failover", "caching", "storms",
	}
	reg := Registry()
	for _, id := range want {
		if _, ok := reg[id]; !ok {
			t.Fatalf("experiment %s missing from registry", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Fatalf("registry has %d ids, want %d", len(IDs()), len(want))
	}
	if _, err := Run("nope", Bench()); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestFidelityByName(t *testing.T) {
	for _, n := range []string{"bench", "quick", "full"} {
		f, ok := ByName(n)
		if !ok || f.Name != n {
			t.Fatalf("fidelity %s unresolvable", n)
		}
		if f.Step <= 0 || len(f.Seeds) == 0 || f.MeasureTime <= 0 {
			t.Fatalf("fidelity %s incomplete: %+v", n, f)
		}
	}
	if _, ok := ByName("hyper"); ok {
		t.Fatal("bogus fidelity resolved")
	}
}

func TestResultFormat(t *testing.T) {
	r := Result{
		ID: "figX", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", Points: []Point{{1, 10}, {2, 20}}},
			{Name: "b", Points: []Point{{1, 11}}},
		},
		Notes: []string{"hello"},
	}
	out := r.Format()
	for _, want := range []string{"figX", "demo", "a", "b", "10", "20", "11", "hello", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted output missing %q:\n%s", want, out)
		}
	}
}

func TestFig09KneeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r, err := Fig09GlitchCurve(Bench())
	if err != nil {
		t.Fatal(err)
	}
	pts := r.Series[0].Points
	if len(pts) < 4 {
		t.Fatalf("too few points: %d", len(pts))
	}
	// Glitches must be zero at (or below) the reported max and positive
	// at the top of the sweep.
	sawZero, sawPositive := false, false
	for _, p := range pts {
		if p.Y == 0 {
			sawZero = true
		}
		if p.Y > 0 {
			sawPositive = true
		}
	}
	if !sawZero || !sawPositive {
		t.Fatalf("glitch curve has no knee: %+v", pts)
	}
	// The rightmost point must glitch.
	if pts[len(pts)-1].Y <= 0 {
		t.Fatalf("highest terminal count did not glitch: %+v", pts)
	}
}

func TestPiggybackMultiplier(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r, err := Piggyback(Bench())
	if err != nil {
		t.Fatal(err)
	}
	pts := r.Series[0].Points
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[1].Y < 1.3*pts[0].Y {
		t.Fatalf("piggybacking multiplier too small: %v -> %v", pts[0].Y, pts[1].Y)
	}
}

func TestScaleupDataShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	f := Bench()
	f.ScaleFactors = []int{1, 2}
	// Restrict to two configurations' worth of time by using the bench
	// fidelity as-is (RunScaleup runs all four; still the heaviest test).
	d, err := RunScaleup(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Configs) != 4 || len(d.Max) != 4 {
		t.Fatalf("configs = %d", len(d.Configs))
	}
	for c := range d.Configs {
		if d.Max[c][0] <= 0 {
			t.Fatalf("%s base max = %d", d.Configs[c], d.Max[c][0])
		}
		// Doubling disks must increase capacity substantially.
		if float64(d.Max[c][1]) < 1.3*float64(d.Max[c][0]) {
			t.Fatalf("%s did not scale: %v", d.Configs[c], d.Max[c])
		}
	}
	// Rendering the four outputs must not panic and must carry data.
	for _, r := range []Result{d.Table2(), d.Fig17(), d.Fig18(), d.Table3()} {
		if len(r.Series) == 0 {
			t.Fatalf("%s: empty", r.ID)
		}
	}
}

func TestFailoverExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r, err := Failover(Bench())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(r.Series))
	}
	// Cross-node mirroring with failover recovers essentially every
	// impacted session at every restart time, including never.
	for _, p := range r.Series[0].Points {
		if p.Y < 95 {
			t.Fatalf("cross-node+failover recovered only %.1f%% at restart=%vs", p.Y, p.X)
		}
	}
	// Without failover and without a restart, essentially nothing
	// recovers. (Not exactly zero: the retry storm against the dead node
	// can overload a live node past the watchdog's timeout, and sessions
	// "impacted" by that false suspicion recover once the live node
	// drains. The dead node's own sessions stay lost.)
	noFailover := r.Series[1].Points
	if noFailover[0].X != 0 || noFailover[0].Y >= 5 {
		t.Fatalf("no-failover never-restart point = %+v, want ~0%% recovered", noFailover[0])
	}
	// A restart must help the no-failover variant: later points recover.
	if noFailover[len(noFailover)-1].Y <= 0 {
		t.Fatalf("no-failover with restart recovered nothing: %+v", noFailover)
	}
}

func TestCSVExport(t *testing.T) {
	r := Result{
		ID: "figX", XLabel: "mem", YLabel: "terms",
		Series: []Series{
			{Name: "a", Points: []Point{{128, 190}, {512, 195}}},
			{Name: "b", Points: []Point{{128, 30}}},
		},
	}
	var buf strings.Builder
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "mem,a,b\n128,190,30\n512,195,\n"
	if got != want {
		t.Fatalf("csv = %q, want %q", got, want)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := Result{
		ID: "fig10", Title: "t", XLabel: "x", YLabel: "y",
		Series: []Series{{Name: "s", Points: []Point{{1, 2}, {3, 4.5}}}},
		Notes:  []string{"n1"},
	}
	var buf strings.Builder
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != r.ID || back.Title != r.Title || len(back.Series) != 1 {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if back.Series[0].Points[1] != (Point{3, 4.5}) {
		t.Fatalf("points corrupted: %+v", back.Series[0].Points)
	}
	if len(back.Notes) != 1 || back.Notes[0] != "n1" {
		t.Fatalf("notes lost: %v", back.Notes)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}
