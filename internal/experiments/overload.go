package experiments

import (
	"fmt"

	"spiffi/internal/core"
	"spiffi/internal/sim"
)

// Overload is the adaptive overload-control experiment: a mirrored
// system offered 25% more streams than its fault-free glitch-free
// capacity, swept over disk fail-stop rates, under three control
// policies — none (every stream admitted), a static admission limit at
// the fault-free capacity, and the adaptive controller (measurement-
// based limit, load shedding, rate-limited mirror rebuild). The metric
// is glitches suffered by the protected half of the terminals: the
// viewers the operator promised quality to. Static admission protects
// them while the hardware is healthy but keeps admitting to a capacity
// the system no longer has once disks start failing; the adaptive
// controller sheds the unprotected half and tightens the limit as
// measured slack collapses, so protected-stream quality degrades far
// less.
//
// Two scripted probes quantify the mirror rebuild's window of
// vulnerability: after a repaired disk rejoins, a second failure of its
// neighbor during the rebuild loses blocks (both copies unavailable:
// one stale, one dead), while the same failure after the rebuild
// completes loses nothing.
func Overload(f Fidelity) (Result, error) {
	res := Result{
		ID:     "overload",
		Title:  "Adaptive overload control under disk fail-stops",
		XLabel: "disk fail-stops per disk-hour",
		YLabel: "protected-stream glitches",
	}

	// The fault-free mirrored capacity anchors both the admission limit
	// and the offered load (25% above it, so admission always matters).
	capCfg := base()
	capCfg.ReplicateVideos = true
	r, err := f.search(capCfg, 0, 0)
	if err != nil {
		return res, fmt.Errorf("capacity search: %w", err)
	}
	limit := r.MaxTerminals
	offered := limit + max(limit/4, 1)
	res.Notes = append(res.Notes, fmt.Sprintf(
		"fault-free mirrored capacity %d, offered load %d, admission limit %d", limit, offered, limit))

	rates := []float64{0, 1, 2}
	const repair = 30 * sim.Second
	variants := []struct {
		name  string
		apply func(*core.Config)
	}{
		// ProtectedFraction alone is pure accounting: it defines which
		// terminals GlitchesProtected counts, arming nothing, so all
		// three variants report over the same protected set.
		{"none", func(c *core.Config) {
			c.Overload.ProtectedFraction = 0.5
		}},
		{"static", func(c *core.Config) {
			c.Overload.AdmitLimit = limit
			c.Overload.ProtectedFraction = 0.5
		}},
		{"adaptive", func(c *core.Config) {
			c.Overload.AdmitLimit = limit
			c.Overload.Adaptive = true
			c.Overload.Shed = true
			c.Overload.RebuildRate = 16 * core.MB
		}},
	}

	// One flat batch in deterministic index order; the pool fans it out.
	var cfgs []core.Config
	for _, v := range variants {
		for _, rate := range rates {
			cfg := f.apply(base())
			cfg.Terminals = offered
			cfg.ReplicateVideos = true
			cfg.Faults.DiskFailRate = rate
			cfg.Faults.DiskRepairTime = repair
			v.apply(&cfg)
			cfgs = append(cfgs, cfg)
		}
	}
	ms, err := f.pool().RunMany(cfgs)
	if err != nil {
		return res, err
	}
	for vi, v := range variants {
		s := Series{Name: v.name}
		for ri, rate := range rates {
			m := ms[vi*len(rates)+ri]
			s.Points = append(s.Points, Point{X: rate, Y: float64(m.GlitchesProtected)})
			res.Notes = append(res.Notes, fmt.Sprintf(
				"%s rate=%.0f: protected glitches %d (all %d), admitted=%d waited=%d rejected=%d, limit min %d, sheds=%d restores=%d peak=%d, degraded blocks=%d, rebuilt=%d stalenacks=%d",
				v.name, rate, m.GlitchesProtected, m.Glitches,
				m.Admitted, m.AdmWaited, m.AdmRejected, m.AdmLimitMin,
				m.Sheds, m.Restores, m.ShedPeak, m.DegradedBlocks,
				m.RebuiltBlocks, m.StaleNacks))
		}
		res.Series = append(res.Series, s)
	}

	// Redundancy-window probes: second fail-stop during vs. after the
	// neighbor's rebuild.
	during, err := RebuildProbe(true)
	if err != nil {
		return res, fmt.Errorf("rebuild probe (during): %w", err)
	}
	after, err := RebuildProbe(false)
	if err != nil {
		return res, fmt.Errorf("rebuild probe (after): %w", err)
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("rebuild probe, 2nd failure during window: lost=%d stalenacks=%d rebuilt=%d windows=%d",
			during.LostBlocks, during.StaleNacks, during.RebuiltBlocks, during.RebuildWindows),
		fmt.Sprintf("rebuild probe, 2nd failure after window: lost=%d window avg=%v rebuilt=%d windows=%d",
			after.LostBlocks, after.RebuildWindowAvg, after.RebuiltBlocks, after.RebuildWindows))
	return res, nil
}

// RebuildProbe runs the scripted window-of-vulnerability scenario on a
// small mirrored system: disk 0 fail-stops at t=30s and repairs 5s
// later, starting a paced rebuild of its (now stale) contents. The
// second failure hits disk 1 — where disk 0's primaries keep their
// replicas — either during the rebuild (both copies of those blocks
// unavailable: blocks are lost) or well after it (the redundancy window
// has closed: nothing is lost). Exported so the core test suite asserts
// both outcomes.
func RebuildProbe(duringWindow bool) (core.Metrics, error) {
	cfg := core.DefaultConfig(8)
	cfg.Nodes = 2
	cfg.DisksPerNode = 2
	cfg.VideosPerDisk = 1
	cfg.Video.Length = sim.Minute
	cfg.ServerMemBytes = 16 * core.MB
	cfg.StartWindow = 10 * sim.Second
	cfg.MeasureTime = 80 * sim.Second
	cfg.StartupGrace = 5 * sim.Minute
	cfg.ReplicateVideos = true
	cfg.RequestTimeout = 2 * sim.Second
	cfg.MaxRetries = 3
	cfg.RetryBackoff = 50 * sim.Millisecond
	cfg.Overload.RebuildRate = 16 * core.MB
	s, err := core.NewSimulation(cfg)
	if err != nil {
		return core.Metrics{}, err
	}
	s.ScheduleDiskFailStop(0, sim.Time(30*sim.Second), 5*sim.Second)
	second := sim.Time(75 * sim.Second) // after the window closes
	if duringWindow {
		second = sim.Time(37 * sim.Second) // mid-rebuild
	}
	s.ScheduleDiskFailStop(1, second, 5*sim.Second)
	return s.Run()
}
