package experiments

import (
	"fmt"

	"spiffi/internal/admission"

	"spiffi/internal/bufferpool"
	"spiffi/internal/core"
	"spiffi/internal/dsched"
	"spiffi/internal/prefetch"
	"spiffi/internal/sim"
	"spiffi/internal/terminal"
)

// The experiments in this file go beyond the paper's published plots:
// they ablate design choices the paper asserts in prose (§5.2.3's
// prefetch configuration, §7.2's claim that real-time parameters barely
// matter, the disk read-ahead cache, and the §8.1 VCR operations).

// AblationRTParams checks §7.2's claim: "We explored a wide variety of
// settings for these parameters [priority classes and spacing] and
// found that regardless of how they were set there was little variation
// in the performance of the system."
func AblationRTParams(f Fidelity) (Result, error) {
	res := Result{
		ID:     "ablation-rt",
		Title:  "Real-time scheduler parameter insensitivity (§7.2 claim)",
		XLabel: "priority spacing (s)",
		YLabel: "max terminals",
	}
	for _, classes := range []int{2, 3, 8} {
		s := Series{Name: fmt.Sprintf("%d classes", classes)}
		for _, spacing := range []sim.Duration{1 * sim.Second, 4 * sim.Second, 8 * sim.Second} {
			cfg := base()
			cfg.Sched = dsched.Config{Kind: dsched.KindRealTime, Classes: classes, Spacing: spacing}
			cfg.Replacement = bufferpool.PolicyLovePrefetch
			cfg.ServerMemBytes = 512 * core.MB
			r, err := f.search(cfg, 0, 0)
			if err != nil {
				return res, err
			}
			s.Points = append(s.Points, Point{X: spacing.Seconds(), Y: float64(r.MaxTerminals)})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// AblationPrefetch measures what prefetching buys: no prefetching vs.
// basic FIFO (one worker) vs. deadline-aware real-time prefetching,
// everything else held at the paper's real-time configuration.
func AblationPrefetch(f Fidelity) (Result, error) {
	res := Result{
		ID:     "ablation-prefetch",
		Title:  "Value of prefetching (real-time scheduling, 512 MB)",
		XLabel: "variant",
		YLabel: "max terminals",
	}
	variants := []struct {
		idx  float64
		name string
		pf   prefetch.Config
	}{
		{1, "off", prefetch.Config{Mode: prefetch.ModeOff}},
		{2, "basic(1 worker)", prefetch.Config{Mode: prefetch.ModeBasic, WorkersPerDisk: 1}},
		{3, "real-time(4 workers)", prefetch.Config{Mode: prefetch.ModeRealTime, WorkersPerDisk: 4}},
	}
	s := Series{Name: "max terminals"}
	for _, v := range variants {
		cfg := base()
		cfg.Sched = rt34()
		cfg.Replacement = bufferpool.PolicyLovePrefetch
		cfg.ServerMemBytes = 512 * core.MB
		cfg.Prefetch = v.pf
		r, err := f.search(cfg, 0, 0)
		if err != nil {
			return res, fmt.Errorf("%s: %w", v.name, err)
		}
		s.Points = append(s.Points, Point{X: v.idx, Y: float64(r.MaxTerminals)})
		res.Notes = append(res.Notes, fmt.Sprintf("x=%g is %s", v.idx, v.name))
	}
	res.Series = append(res.Series, s)
	return res, nil
}

// AblationDiskCache removes the drive's segmented read-ahead cache to
// quantify how much the sequential-continuation optimization matters at
// video-server stripe sizes (the paper models 8x128 KB contexts).
func AblationDiskCache(f Fidelity) (Result, error) {
	res := Result{
		ID:     "ablation-cache",
		Title:  "Drive read-ahead cache on vs. off",
		XLabel: "stripe size (KB)",
		YLabel: "max terminals",
	}
	for _, contexts := range []int{8, 0} {
		name := "8 contexts"
		if contexts == 0 {
			name = "no cache"
		}
		s := Series{Name: name}
		for _, kb := range f.StripePointsKB {
			cfg := base()
			cfg.StripeBytes = kb * core.KB
			cfg.DiskParams.CacheContexts = contexts
			r, err := f.search(cfg, 0, 0)
			if err != nil {
				return res, err
			}
			s.Points = append(s.Points, Point{X: float64(kb), Y: float64(r.MaxTerminals)})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// AblationSchedulerZoo adds SSTF and C-SCAN (classic algorithms the
// paper does not evaluate) next to elevator and FCFS at the optimal
// stripe size.
func AblationSchedulerZoo(f Fidelity) (Result, error) {
	res := Result{
		ID:     "ablation-sched",
		Title:  "Extra disk schedulers at 512 KB stripes",
		XLabel: "variant",
		YLabel: "max terminals",
	}
	s := Series{Name: "max terminals"}
	for i, sc := range []dsched.Config{
		{Kind: dsched.KindElevator},
		{Kind: dsched.KindCSCAN},
		{Kind: dsched.KindSSTF},
		{Kind: dsched.KindFCFS},
	} {
		cfg := base()
		cfg.Sched = sc
		r, err := f.search(cfg, 0, 0)
		if err != nil {
			return res, fmt.Errorf("%v: %w", sc, err)
		}
		s.Points = append(s.Points, Point{X: float64(i + 1), Y: float64(r.MaxTerminals)})
		res.Notes = append(res.Notes, fmt.Sprintf("x=%d is %s", i+1, sc.String()))
	}
	res.Series = append(res.Series, s)
	return res, nil
}

// Admission reproduces §4's design argument: the worst-case analytical
// capacity (every access pays a full-span seek and full rotation) that a
// provably glitch-free system would admit, the mean-value analytical
// capacity, and the capacity the simulation actually sustains. The
// paper: "a system that is designed around an analytical study and is
// proven never to cause a glitch is unlikely to achieve high utilization
// of the hardware."
func Admission(f Fidelity) (Result, error) {
	res := Result{
		ID:     "admission",
		Title:  "Analytical admission bounds vs. simulated capacity (§4)",
		XLabel: "variant",
		YLabel: "terminals",
	}
	cfg := base()
	a := admission.Analysis{
		Disk:        cfg.DiskParams,
		Cylinders:   4000,
		StripeBytes: cfg.StripeBytes,
		BitRate:     cfg.Video.BitRate,
		TotalDisks:  cfg.TotalDisks(),
	}
	r, err := f.search(cfg, 0, 0)
	if err != nil {
		return res, err
	}
	s := Series{Name: "terminals", Points: []Point{
		{X: 1, Y: float64(a.WorstCaseTerminals())},
		{X: 2, Y: float64(a.ExpectedCaseTerminals())},
		{X: 3, Y: float64(r.MaxTerminals)},
	}}
	res.Series = append(res.Series, s)
	res.Notes = append(res.Notes,
		"x=1 worst-case analytical bound (provably glitch-free, §4)",
		"x=2 expected-case analytical bound",
		"x=3 simulated maximum (this system's methodology)")
	return res, nil
}

// AblationZonedDisks ablates the paper's §6.2 simplification ("for
// simplicity ... a constant cylinder size is assumed") by running the
// same configurations on zoned-bit-recording drives whose outer zones
// hold more data and transfer ~30% faster than inner zones.
func AblationZonedDisks(f Fidelity) (Result, error) {
	res := Result{
		ID:     "ablation-zoned",
		Title:  "Constant cylinders vs. zoned-bit-recording geometry (§6.2 simplification)",
		XLabel: "stripe size (KB)",
		YLabel: "max terminals",
	}
	for _, zoned := range []bool{false, true} {
		name := "constant cylinders"
		if zoned {
			name = "zoned (8 zones)"
		}
		s := Series{Name: name}
		for _, kb := range f.StripePointsKB {
			cfg := base()
			cfg.StripeBytes = kb * core.KB
			cfg.ZonedDisks = zoned
			r, err := f.search(cfg, 0, 0)
			if err != nil {
				return res, err
			}
			s.Points = append(s.Points, Point{X: float64(kb), Y: float64(r.MaxTerminals)})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// VCRSeek exercises the §8.1 rewind/fast-forward implementation: max
// terminals without seeks, with jump seeks (seek + re-prime), and with
// the visual-search skim scheme. The paper predicts the skim scheme
// "will not significantly increase the load on the video server".
func VCRSeek(f Fidelity) (Result, error) {
	res := Result{
		ID:     "vcr",
		Title:  "Rewind/fast-forward and visual search (§8.1)",
		XLabel: "variant",
		YLabel: "max terminals",
	}
	mk := func(v *terminal.VCRConfig) core.Config {
		cfg := base()
		cfg.Replacement = bufferpool.PolicyLovePrefetch
		cfg.ServerMemBytes = 512 * core.MB
		cfg.VCR = v
		return cfg
	}
	variants := []struct {
		idx  float64
		name string
		cfg  core.Config
	}{
		{1, "no seeks", mk(nil)},
		{2, "jump seeks", mk(&terminal.VCRConfig{
			MeanSeeksPerMovie: 2, MeanDistanceFrac: 0.25, ForwardProb: 0.5,
		})},
		{3, "visual search", mk(&terminal.VCRConfig{
			MeanSeeksPerMovie: 2, MeanDistanceFrac: 0.25, ForwardProb: 0.5,
			Skim: true, SkimStrideBlocks: 8, SkimSegmentFrames: 30,
		})},
	}
	s := Series{Name: "max terminals"}
	for _, v := range variants {
		r, err := f.search(v.cfg, 0, 0)
		if err != nil {
			return res, fmt.Errorf("%s: %w", v.name, err)
		}
		s.Points = append(s.Points, Point{X: v.idx, Y: float64(r.MaxTerminals)})
		res.Notes = append(res.Notes, fmt.Sprintf("x=%g is %s", v.idx, v.name))
	}
	res.Series = append(res.Series, s)
	return res, nil
}
