// Package experiments regenerates every table and figure of the SPIFFI
// paper's evaluation (§7 and §8). Each harness builds the paper's
// workload, sweeps the paper's parameter, and returns rows/series shaped
// exactly like the published plot, at a selectable fidelity.
//
// Fidelity trades wall-clock time for measurement quality. The paper's
// own runs simulate an hour of video per data point on 1995 hardware;
// Full approximates that, Quick keeps the full 16-disk system but
// shortens videos and windows, and Bench is sized for `go test -bench`.
// Shapes — who wins, by what rough factor, where the crossovers fall —
// hold at every fidelity; absolute terminal counts shift slightly with
// video length and window size.
package experiments

import (
	"fmt"
	"sync"

	"spiffi/internal/core"
	"spiffi/internal/sim"
	"spiffi/internal/trace"
)

// Fidelity scales an experiment's cost.
type Fidelity struct {
	Name        string
	VideoLength sim.Duration
	MeasureTime sim.Duration
	StartWindow sim.Duration
	Step        int      // max-terminal search resolution
	Seeds       []uint64 // replications per evaluated point

	// MemoryPointsMB and StripePointsKB override the default sweep
	// points of the memory and stripe-size experiments (nil = paper's
	// full set).
	MemoryPointsMB []int64
	StripePointsKB []int64

	// ScaleFactors lists the scaleup multipliers for Table 2 (nil = the
	// paper's 1, 2, 4).
	ScaleFactors []int

	// Workers bounds how many simulations run concurrently across the
	// whole experiment (sweep points, search probes, seed replications
	// all share the bound); <= 0 selects GOMAXPROCS. Results are
	// bit-identical whatever the value — see core.Runner.
	Workers int

	// Trace enables structured event tracing (internal/trace) on every
	// simulation the experiment runs. Traces ride the run's Metrics and
	// surface only through TraceSink; Result data and its JSON/CSV
	// exports never change, enabled or not.
	Trace trace.Options

	// TraceSink, when set alongside Trace.Enabled, receives the trace of
	// each *consumed* passing run at a search's maximum — the same runs
	// whose Metrics populate SearchResult.AtMax, so the delivered set of
	// (label, data) pairs is bit-identical for every worker count. The
	// label ("max<terminals>-seed<seed>") is deterministic but not
	// globally unique across a multi-point sweep; sinks that file traces
	// should key on the label and tolerate concurrent calls (sweep points
	// fan out, so delivery order — not content — varies between runs).
	TraceSink func(label string, d *trace.Data)

	// run is the shared worker pool, created lazily by withPool so one
	// experiment's nested fan-out shares a single concurrency bound.
	run *core.Runner
}

// withPool returns f with its worker pool materialized. Every exported
// harness calls it on entry; interior helpers (memSweep, search) then
// find the pool already set and share it.
func (f Fidelity) withPool() Fidelity {
	if f.run == nil {
		f.run = core.NewRunner(f.Workers)
	}
	return f
}

// pool returns the fidelity's worker pool, creating a fresh one if the
// harness was somehow entered without withPool.
func (f Fidelity) pool() *core.Runner {
	if f.run == nil {
		return core.NewRunner(f.Workers)
	}
	return f.run
}

// Bench is the smallest fidelity, sized so that one experiment fits in a
// few seconds of a `go test -bench` run.
func Bench() Fidelity {
	return Fidelity{
		Name:           "bench",
		VideoLength:    6 * sim.Minute,
		MeasureTime:    45 * sim.Second,
		StartWindow:    20 * sim.Second,
		Step:           20,
		Seeds:          []uint64{1},
		MemoryPointsMB: []int64{128, 512, 2048},
		StripePointsKB: []int64{128, 512, 1024},
		ScaleFactors:   []int{1, 2},
	}
}

// Quick keeps the paper's full system but shortens videos and windows;
// an experiment takes on the order of a minute.
func Quick() Fidelity {
	return Fidelity{
		Name:           "quick",
		VideoLength:    10 * sim.Minute,
		MeasureTime:    2 * sim.Minute,
		StartWindow:    30 * sim.Second,
		Step:           10,
		Seeds:          []uint64{1},
		MemoryPointsMB: []int64{128, 256, 512, 1024, 2048, 4096},
		StripePointsKB: []int64{128, 256, 512, 1024},
		ScaleFactors:   []int{1, 2, 4},
	}
}

// Full approximates the paper's own fidelity: hour-long videos, long
// measurement windows, multi-seed replication at 5-terminal resolution.
func Full() Fidelity {
	return Fidelity{
		Name:           "full",
		VideoLength:    60 * sim.Minute,
		MeasureTime:    10 * sim.Minute,
		StartWindow:    60 * sim.Second,
		Step:           5,
		Seeds:          []uint64{1, 2, 3},
		MemoryPointsMB: []int64{128, 256, 512, 1024, 2048, 4096},
		StripePointsKB: []int64{128, 256, 512, 1024},
		ScaleFactors:   []int{1, 2, 4},
	}
}

// ByName resolves a fidelity level.
func ByName(name string) (Fidelity, bool) {
	switch name {
	case "bench":
		return Bench(), true
	case "quick":
		return Quick(), true
	case "full":
		return Full(), true
	}
	return Fidelity{}, false
}

// apply stamps the fidelity onto a configuration.
func (f Fidelity) apply(cfg core.Config) core.Config {
	cfg.Video.Length = f.VideoLength
	cfg.MeasureTime = f.MeasureTime
	cfg.StartWindow = f.StartWindow
	cfg.Trace = f.Trace
	return cfg
}

// search runs the max-terminal search at this fidelity on the shared
// worker pool, delivering the consumed at-max traces to TraceSink.
func (f Fidelity) search(cfg core.Config, hintLo, hintHi int) (core.SearchResult, error) {
	r, err := f.pool().FindMaxTerminals(f.apply(cfg), core.SearchOptions{
		Lo: hintLo, Hi: hintHi, Step: f.Step, Seeds: f.Seeds,
	})
	if err == nil && f.TraceSink != nil {
		for i, m := range r.AtMax {
			if m.Trace != nil && i < len(f.Seeds) {
				f.TraceSink(fmt.Sprintf("max%d-seed%d", r.MaxTerminals, f.Seeds[i]), m.Trace)
			}
		}
	}
	return r, err
}

// fanout runs n independent jobs concurrently, collecting results by
// index. The worker pool bounds actual simulation concurrency, so these
// goroutines are cheap coordinators; on failure the first error in index
// order is returned, matching what a sequential loop would report.
func fanout(n int, job func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = job(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
