package experiments

import (
	"fmt"

	"spiffi/internal/core"
	"spiffi/internal/sim"
)

// Failover is the node-failover experiment: a mirrored system running at
// 80% of its admitted capacity loses 1 of its N nodes mid-measurement,
// swept over node restart times (0 = the node never comes back), under
// three policies — cross-node mirroring with failover, cross-node
// mirroring with failover disabled (sessions keep hammering the dead
// primary and survive only on per-retry copy rotation), and intra-node
// chained mirroring with failover (the mirror of a dead node's disk
// lives on the same dead node, so redirection has nowhere useful to go
// until the node restarts). The metric is the fraction of impacted
// sessions — sessions a timeout caught talking to the dead node — that
// recover, i.e. resume first-attempt fetches of the dead node's blocks.
//
// Cross-node + failover recovers essentially everything at every
// restart time, including never: the per-local-slot rotation spreads the
// dead node's load across all survivors and the failover-priority
// re-admission keeps the survivors from starving migrants. Without
// failover, sessions recover only once the node itself restarts; with
// intra-node mirroring, redirection is useless for a whole-node crash
// and the restart time is all that matters.
func Failover(f Fidelity) (Result, error) {
	res := Result{
		ID:     "failover",
		Title:  "Node failover and session continuity after a node crash",
		XLabel: "node restart delay (seconds; 0 = never restarts)",
		YLabel: "impacted sessions recovered (%)",
	}

	// The paper's 16 disks, spread wide: 8 thin nodes instead of 4 fat
	// ones, so one crash takes out 12.5% of capacity and the 80% offered
	// load leaves the survivors headroom to absorb the redirected
	// streams. (Losing 1 of 4 nodes at 80% load puts the survivors at
	// ~107% — past saturation, where no redirection policy can win.)
	shape := func(c *core.Config) {
		c.Nodes = 8
		c.DisksPerNode = 2
	}

	// The fault-free mirrored capacity anchors the admission limit; the
	// run is offered 80% of it.
	capCfg := base()
	shape(&capCfg)
	capCfg.ReplicateVideos = true
	r, err := f.search(capCfg, 0, 0)
	if err != nil {
		return res, fmt.Errorf("capacity search: %w", err)
	}
	limit := r.MaxTerminals
	offered := max(limit*4/5, 1)
	res.Notes = append(res.Notes, fmt.Sprintf(
		"fault-free mirrored capacity %d, offered load %d (80%%), admission limit %d",
		limit, offered, limit))

	// The crash lands a quarter into the measurement window; restarts are
	// swept from never through half the window.
	crashAt := sim.Time(0).Add(f.StartWindow).Add(f.MeasureTime / 4)
	restarts := []sim.Duration{0, f.MeasureTime / 4, f.MeasureTime / 2}

	variants := []struct {
		name  string
		apply func(*core.Config)
	}{
		{"cross-node + failover", func(c *core.Config) {
			c.MirrorCrossNode = true
			c.Failover = true
		}},
		// SuspectThreshold alone arms the watchdog accounting (impacted /
		// recovered / lost) without redirection or re-admission.
		{"cross-node, no failover", func(c *core.Config) {
			c.MirrorCrossNode = true
			c.SuspectThreshold = 2
		}},
		{"intra-node + failover", func(c *core.Config) {
			c.Failover = true
		}},
	}

	type cell struct {
		m   core.Metrics
		err error
	}
	cells := make([]cell, len(variants)*len(restarts))
	err = fanout(len(cells), func(i int) error {
		v, ri := variants[i/len(restarts)], i%len(restarts)
		cfg := f.apply(base())
		shape(&cfg)
		cfg.Terminals = offered
		cfg.ReplicateVideos = true
		cfg.Overload.AdmitLimit = limit
		cfg.Overload.Adaptive = true
		cfg.Overload.Shed = true
		cfg.Overload.RebuildRate = 16 * core.MB
		v.apply(&cfg)
		s, err := core.NewSimulation(cfg)
		if err != nil {
			return err
		}
		s.ScheduleNodeCrash(1, crashAt, restarts[ri])
		cells[i].m, cells[i].err = s.Run()
		return cells[i].err
	})
	if err != nil {
		return res, err
	}

	for vi, v := range variants {
		s := Series{Name: v.name}
		for ri, restart := range restarts {
			m := cells[vi*len(restarts)+ri].m
			recovered := 100.0
			if m.SessionsImpacted > 0 {
				recovered = 100 * float64(m.SessionsRecovered) / float64(m.SessionsImpacted)
			}
			s.Points = append(s.Points, Point{X: restart.Seconds(), Y: recovered})
			res.Notes = append(res.Notes, fmt.Sprintf(
				"%s restart=%v: impacted=%d recovered=%d lost=%d, failover lat avg/max=%v/%v, redirects=%d readmits=%d (rejected=%d), drops req/reply=%d/%d, protected glitches=%d",
				v.name, restart, m.SessionsImpacted, m.SessionsRecovered, m.SessionsLost,
				m.FailoverLatAvg, m.FailoverLatMax,
				m.FailoverRedirects, m.FailoverReadmits, m.FailoverRejected,
				m.Nodes.DroppedReqs, m.Nodes.DroppedReplies, m.GlitchesProtected))
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// FailoverProbe runs the scripted crashed-node scenario the test suite
// asserts against: a small 2-node mirrored system whose node 1 crashes
// at t=30s and restarts after `restart` (<= 0: never). With cross-node
// mirroring and failover, every session the crash impacts re-resolves to
// node 0's mirror copies and recovers; with failover disabled and no
// restart, the same sessions end the run lost. Exported so the core test
// suite asserts both outcomes.
func FailoverProbe(crossNode, failover bool, restart sim.Duration) (core.Metrics, error) {
	cfg := core.DefaultConfig(8)
	cfg.Nodes = 2
	cfg.DisksPerNode = 2
	cfg.VideosPerDisk = 1
	cfg.Video.Length = sim.Minute
	cfg.ServerMemBytes = 16 * core.MB
	cfg.StartWindow = 10 * sim.Second
	cfg.MeasureTime = 80 * sim.Second
	cfg.StartupGrace = 5 * sim.Minute
	cfg.ReplicateVideos = true
	cfg.MirrorCrossNode = crossNode
	cfg.Failover = failover
	cfg.SuspectThreshold = 2
	cfg.RequestTimeout = 2 * sim.Second
	cfg.MaxRetries = 3
	cfg.RetryBackoff = 50 * sim.Millisecond
	cfg.Overload.AdmitLimit = 12
	cfg.Overload.RebuildRate = 16 * core.MB
	s, err := core.NewSimulation(cfg)
	if err != nil {
		return core.Metrics{}, err
	}
	s.ScheduleNodeCrash(1, sim.Time(30*sim.Second), restart)
	return s.Run()
}
