package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Point is one (x, y) sample of a series.
type Point struct {
	X float64
	Y float64
}

// Series is one labeled curve of a figure (or one column of a table).
type Series struct {
	Name   string
	Points []Point
}

// Result is one regenerated figure or table.
type Result struct {
	ID     string // "fig10", "table2", ...
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string

	// Workers and WallClock record how the experiment was executed —
	// provenance only, stamped by Run. The data above is bit-identical
	// for every worker count.
	Workers   int
	WallClock time.Duration
}

// Format renders the result as an aligned text table: the X column
// followed by one column per series, matching how the paper's plots read.
func (r Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Series) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	// Collect the x values in first-series order, then any extras.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range r.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	header := []string{r.XLabel}
	for _, s := range r.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range r.Series {
			cell := "-"
			for _, p := range s.Points {
				if p.X == x {
					cell = trimFloat(p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteString("\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3g", v)
}

// seriesY extracts a series' Y value at x, for tests.
func (r Result) seriesY(name string, x float64) (float64, bool) {
	for _, s := range r.Series {
		if s.Name != name {
			continue
		}
		for _, p := range s.Points {
			if p.X == x {
				return p.Y, true
			}
		}
	}
	return 0, false
}
