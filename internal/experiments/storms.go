package experiments

import (
	"fmt"

	"spiffi/internal/cache"
	"spiffi/internal/core"
	"spiffi/internal/sim"
	"spiffi/internal/workload"
)

// stormsPremiere is the flash-crowd scenario: steady viewing, then a
// premiere that triples the arrival rate, concentrates 70% of selections
// on one video and doubles VCR seeking, then an open-ended recovery in
// which the popularity ranking has reshuffled (the premiere's churn).
const stormsPremiere = "think=20s; steady:60s; " +
	"premiere:45s load=3 promote=0 share=0.7 seekboost=2; recover:* shuffle"

// stormsChurn reshuffles the popularity ranking every 40 seconds — the
// cache-hostile shape: whatever the rank policy learned about yesterday's
// hits is wrong today.
const stormsChurn = "think=15s; a:40s; b:40s shuffle; c:40s shuffle; d:* shuffle"

// Storms is the production-traffic-shapes experiment (WORKLOADS.md): the
// premiere flash crowd hits a system offered 25% more terminals than its
// steady glitch-free capacity, under two postures — a baseline with every
// mechanism off, and a hardened build running adaptive admission with
// shedding (plus the step-response hysteresis knobs) and the churn-aware
// zipf-rank prefix cache. The series are phase-resolved: glitches per
// workload phase, so the JSON shows *when* each posture degrades, not
// just how much. A second pair of runs sweeps popularity churn (rank
// reshuffles every 40 s) over the cache's decay knob, reporting the
// per-phase hit rate the decay recovers.
func Storms(f Fidelity) (Result, error) {
	res := Result{
		ID:     "storms",
		Title:  "Graceful degradation under flash crowds and popularity churn",
		XLabel: "phase index (premiere: 0 steady, 1 premiere, 2 recover)",
		YLabel: "glitches in phase",
	}

	// Capacity anchor: the steady-state (no premiere) glitch-free
	// terminal count of the same short-session system, viewers thinking
	// between movies. The premiere then arrives against a system already
	// offered 25% more than this.
	capCfg := stormsBase(f)
	var err error
	capCfg.Workload, err = workload.ParseSpec("think=20s; steady:*")
	if err != nil {
		return res, err
	}
	r, err := f.pool().FindMaxTerminals(capCfg, core.SearchOptions{
		Lo: 40, Hi: 400, Step: f.Step, Seeds: f.Seeds,
	})
	if err != nil {
		return res, fmt.Errorf("capacity search: %w", err)
	}
	limit := r.MaxTerminals
	offered := limit + max(limit/4, 1)
	res.Notes = append(res.Notes, fmt.Sprintf(
		"steady capacity %d, offered load %d (125%%), admission limit %d", limit, offered, limit))

	premiere, err := workload.ParseSpec(stormsPremiere)
	if err != nil {
		return res, err
	}
	churn, err := workload.ParseSpec(stormsChurn)
	if err != nil {
		return res, err
	}
	const budget = 32 * core.MB
	variants := []struct {
		name string
		wl   workload.Config
		// series selects what the phase-resolved points plot.
		y     func(core.PhaseMetrics) float64
		apply func(*core.Config)
	}{
		{"baseline", premiere, phaseGlitches, func(c *core.Config) {
			c.Overload.ProtectedFraction = 0.5 // accounting only, arms nothing
		}},
		{"hardened", premiere, phaseGlitches, func(c *core.Config) {
			c.Overload.AdmitLimit = limit
			c.Overload.Adaptive = true
			c.Overload.Shed = true
			c.Overload.HoldAfterCut = 5 * sim.Second
			c.Overload.RaiseStreak = 2
			c.Cache = cache.Config{BudgetBytes: budget, Policy: cache.PolicyZipfRank,
				PrefixBlocks: 16, DecayEvery: 2000}
		}},
		{"churn-decay-off", churn, phaseHitRate, func(c *core.Config) {
			c.Cache = cache.Config{BudgetBytes: budget, Policy: cache.PolicyZipfRank, PrefixBlocks: 16}
		}},
		{"churn-decay-on", churn, phaseHitRate, func(c *core.Config) {
			c.Cache = cache.Config{BudgetBytes: budget, Policy: cache.PolicyZipfRank,
				PrefixBlocks: 16, DecayEvery: 2000}
		}},
	}

	// One flat batch in deterministic index order; the pool fans it out.
	var cfgs []core.Config
	for _, v := range variants {
		cfg := stormsBase(f)
		cfg.Terminals = offered
		cfg.Workload = v.wl
		v.apply(&cfg)
		cfgs = append(cfgs, cfg)
	}
	ms, err := f.pool().RunMany(cfgs)
	if err != nil {
		return res, err
	}
	for vi, v := range variants {
		m := ms[vi]
		s := Series{Name: v.name}
		for _, ps := range m.PhaseStats {
			s.Points = append(s.Points, Point{X: float64(ps.Index), Y: v.y(ps)})
			res.Notes = append(res.Notes, fmt.Sprintf(
				"%s phase %d %s [%v..%v): glitches=%d (underrun/diskfail/timeout=%d/%d/%d) sheds=%d rejects=%d cache hit rate=%.2f movies=%d",
				v.name, ps.Index, ps.Name, ps.Start, ps.End,
				ps.Glitches, ps.GlitchesUnderrun, ps.GlitchesDiskFail, ps.GlitchesTimeout,
				ps.Sheds, ps.AdmRejected, ps.CacheHitRate(), ps.MoviesStarted))
		}
		res.Series = append(res.Series, s)
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s totals: glitches=%d protected=%d (over %d terminals) admitted=%d rejected=%d limit min=%d sheds=%d cache hits/misses=%d/%d",
			v.name, m.Glitches, m.GlitchesProtected, m.ProtectedTerminals,
			m.Admitted, m.AdmRejected, m.AdmLimitMin, m.Sheds, m.CacheHits, m.CacheMisses))
	}
	return res, nil
}

func phaseGlitches(ps core.PhaseMetrics) float64 { return float64(ps.Glitches) }
func phaseHitRate(ps core.PhaseMetrics) float64  { return ps.CacheHitRate() }

// stormsBase is the experiment's system, deliberately independent of the
// fidelity's video/window timings for the same reason as cachingBase:
// workload phases act on session *starts*, so movies must be short
// enough that terminals keep returning to the selector inside the
// measured window, and the window must span the phase timeline. The
// fidelity still scales the search and worker pool.
func stormsBase(f Fidelity) core.Config {
	cfg := base()
	cfg.ServerMemBytes = 96 * core.MB
	cfg.TerminalMemBytes = 16 * core.MB
	cfg.RandomInitialPosition = false
	cfg.Video.Length = 90 * sim.Second
	cfg.StartWindow = 30 * sim.Second
	cfg.MeasureTime = 2 * sim.Minute
	cfg.Trace = f.Trace
	return cfg
}
