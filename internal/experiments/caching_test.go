package experiments

import (
	"testing"

	"spiffi/internal/cache"
	"spiffi/internal/core"
)

// The caching experiment's headline claim: at skew z >= 1.0 the
// Zipf-rank prefix cache strictly beats the cache-less baseline on
// disk reads per admitted terminal, on identical total hardware (the
// cache budget is carved out of the same server memory). This runs
// the experiment's own workload directly rather than through the
// harness so a regression points at the simulator, not the sweep.
func TestCachingDominance(t *testing.T) {
	if testing.Short() {
		t.Skip("full caching workload; skipped in -short")
	}
	run := func(cfg core.Config) core.Metrics {
		s, err := core.NewSimulation(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	for _, z := range []float64{1.0, 1.5} {
		none := cachingBase()
		none.ZipfZ = z
		ranked := cachingBase()
		ranked.ZipfZ = z
		ranked.Cache = cache.Config{BudgetBytes: 32 * core.MB, Policy: cache.PolicyZipfRank, PrefixBlocks: 16}
		mn, mr := run(none), run(ranked)
		if mn.Glitches != 0 || mr.Glitches != 0 {
			t.Fatalf("z=%.1f: glitches none=%d ranked=%d, want 0", z, mn.Glitches, mr.Glitches)
		}
		if mr.DiskReads >= mn.DiskReads {
			t.Fatalf("z=%.1f: zipf-rank disk reads %d >= no-cache %d — the cache stopped paying for its carve",
				z, mr.DiskReads, mn.DiskReads)
		}
	}
}
