package experiments

import (
	"fmt"

	"spiffi/internal/core"
	"spiffi/internal/sim"
)

// Faults is the fault-injection experiment: how many glitch-free
// terminals the system sustains as the disk fail-stop rate rises, with
// and without a declustered replica of every video. A mirrored layout
// lets the terminals' retry machinery route around a dead disk, so its
// capacity should degrade far more gracefully than the no-replica
// layout, where every fail-stop leaves unreadable blocks until repair.
//
// Besides the capacity curve, each nonzero fault rate also runs one
// probe at that layout's fault-free maximum and reports its degraded-
// mode accounting (per-cause glitches, NACKs, retries, timeouts, mean
// time to recover) in the notes — the per-viewer cost of operating a
// faulty system at full load.
func Faults(f Fidelity) (Result, error) {
	res := Result{
		ID:     "faults",
		Title:  "Degraded-mode capacity under disk fail-stops",
		XLabel: "disk fail-stops per disk-hour",
		YLabel: "max glitch-free terminals",
	}
	rates := []float64{0, 0.5, 1, 2}
	const repair = 30 * sim.Second
	variants := []struct {
		name   string
		mirror bool
	}{
		{"no-replica", false},
		{"mirrored", true},
	}
	for _, v := range variants {
		s := Series{Name: v.name}
		baseline := 0
		for _, rate := range rates {
			cfg := base()
			cfg.ReplicateVideos = v.mirror
			cfg.Faults.DiskFailRate = rate
			cfg.Faults.DiskRepairTime = repair
			r, err := f.search(cfg, 0, 0)
			if err != nil {
				return res, fmt.Errorf("%s rate=%.1f: %w", v.name, rate, err)
			}
			s.Points = append(s.Points, Point{X: rate, Y: float64(r.MaxTerminals)})
			if rate == 0 {
				baseline = r.MaxTerminals
				continue
			}
			if baseline == 0 {
				continue
			}
			// Probe the degraded accounting at the fault-free maximum.
			probe := f.apply(cfg)
			probe.Terminals = baseline
			m, err := core.Run(probe)
			if err != nil {
				return res, fmt.Errorf("%s rate=%.1f probe: %w", v.name, rate, err)
			}
			res.Notes = append(res.Notes, fmt.Sprintf(
				"%s rate=%.1f probe@%d: glitches underrun/diskfail/timeout = %d/%d/%d, nacks=%d retries=%d timeouts=%d lost=%d, failstops=%d, mttr avg/max = %v/%v",
				v.name, rate, baseline,
				m.GlitchesUnderrun, m.GlitchesDiskFail, m.GlitchesTimeout,
				m.Nacks, m.Retries, m.Timeouts, m.LostBlocks,
				m.DiskFailStops, m.MTTRAvg, m.MTTRMax))
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}
