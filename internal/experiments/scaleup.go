package experiments

import (
	"fmt"

	"spiffi/internal/bufferpool"
	"spiffi/internal/core"
	"spiffi/internal/dsched"
	"spiffi/internal/prefetch"
	"spiffi/internal/sim"
)

// scaleConfig is one of Table 2's four base configurations.
type scaleConfig struct {
	name       string
	sched      dsched.Config
	termMB     float64 // terminal memory, MB
	serverMB   int64   // server memory at the 16-disk base, MB
	delayed    bool    // love prefetch + delayed prefetching (8 s)
	lovePolicy bool
}

// table2Configs are §7.6's four configurations: the tuned elevator and
// real-time systems plus two comparison points.
func table2Configs() []scaleConfig {
	return []scaleConfig{
		{name: "elevator 2MB/128MB", sched: dsched.Config{Kind: dsched.KindElevator},
			termMB: 2, serverMB: 128, lovePolicy: true},
		{name: "elevator 2.5MB/128MB", sched: dsched.Config{Kind: dsched.KindElevator},
			termMB: 2.5, serverMB: 128, lovePolicy: true},
		{name: "elevator 2MB/512MB", sched: dsched.Config{Kind: dsched.KindElevator},
			termMB: 2, serverMB: 512, lovePolicy: true},
		{name: "real-time 2MB/512MB", sched: rt34(),
			termMB: 2, serverMB: 512, lovePolicy: true, delayed: true},
	}
}

// configAtScale builds a scaleConfig's system at a disk multiplier:
// disks, videos and server memory scale together; CPUs stay at 4 (§7.6).
func (sc scaleConfig) configAtScale(factor int) core.Config {
	cfg := base()
	cfg.DisksPerNode = 4 * factor
	cfg.ServerMemBytes = sc.serverMB * int64(factor) * core.MB
	cfg.TerminalMemBytes = int64(sc.termMB * float64(core.MB))
	cfg.Sched = sc.sched
	if sc.lovePolicy {
		cfg.Replacement = bufferpool.PolicyLovePrefetch
	}
	if sc.delayed {
		cfg.Prefetch = prefetch.Config{Mode: prefetch.ModeDelayed, MaxAdvance: 8 * sim.Second}
	}
	return cfg
}

// ScaleupData carries the raw scaleup measurements shared by Table 2,
// Figure 17, Figure 18 and Table 3.
type ScaleupData struct {
	Fidelity Fidelity
	Configs  []string
	Factors  []int
	// Max[c][i] is config c's max terminals at Factors[i].
	Max [][]int
	// CPUUtil[c][i] and PeakNetMBs[c][i] come from the passing runs.
	CPUUtil    [][]float64
	PeakNetMBs [][]float64
	DiskUtil   [][]float64
}

// RunScaleup executes the §7.6 scaleup experiment for every Table 2
// configuration and scale factor.
func RunScaleup(f Fidelity) (*ScaleupData, error) {
	f = f.withPool()
	factors := f.ScaleFactors
	if len(factors) == 0 {
		factors = []int{1, 2, 4}
	}
	configs := table2Configs()
	data := &ScaleupData{Fidelity: f, Factors: factors}
	data.Max = make([][]int, len(configs))
	data.CPUUtil = make([][]float64, len(configs))
	data.PeakNetMBs = make([][]float64, len(configs))
	data.DiskUtil = make([][]float64, len(configs))
	err := fanout(len(configs), func(c int) error {
		sc := configs[c]
		data.Max[c] = make([]int, len(factors))
		data.CPUUtil[c] = make([]float64, len(factors))
		data.PeakNetMBs[c] = make([]float64, len(factors))
		data.DiskUtil[c] = make([]float64, len(factors))
		return fanout(len(factors), func(i int) error {
			factor := factors[i]
			cfg := sc.configAtScale(factor)
			r, err := f.search(cfg, 0, 0)
			if err != nil {
				return fmt.Errorf("%s x%d: %w", sc.name, factor, err)
			}
			data.Max[c][i] = r.MaxTerminals
			if len(r.AtMax) > 0 {
				m := r.AtMax[0]
				data.CPUUtil[c][i] = m.CPUUtilAvg * 100
				data.PeakNetMBs[c][i] = m.PeakNetBandwidth / 1e6
				data.DiskUtil[c][i] = m.DiskUtilAvg * 100
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	for _, sc := range configs {
		data.Configs = append(data.Configs, sc.name)
	}
	return data, nil
}

// Table2 renders the scaleup table: max terminals per configuration and
// scale, with the scaleup fraction relative to a linear extrapolation of
// the base (the parenthesized numbers in the paper's Table 2).
func (d *ScaleupData) Table2() Result {
	res := Result{
		ID:     "table2",
		Title:  "Scaleup",
		XLabel: "disks",
		YLabel: "max terminals",
	}
	for c, name := range d.Configs {
		s := Series{Name: name}
		frac := Series{Name: name + " scaleup"}
		for i, factor := range d.Factors {
			disks := float64(16 * factor)
			s.Points = append(s.Points, Point{X: disks, Y: float64(d.Max[c][i])})
			if i > 0 && d.Max[c][0] > 0 {
				linear := float64(d.Max[c][0]) * float64(factor)
				frac.Points = append(frac.Points, Point{X: disks, Y: float64(d.Max[c][i]) / linear})
			}
		}
		res.Series = append(res.Series, s, frac)
	}
	return res
}

// Fig17 renders CPU utilization vs. system size (Figure 17).
func (d *ScaleupData) Fig17() Result {
	res := Result{
		ID:     "fig17",
		Title:  "CPU utilization during scaleup",
		XLabel: "disks",
		YLabel: "avg CPU utilization (%)",
	}
	for c, name := range d.Configs {
		s := Series{Name: name}
		for i, factor := range d.Factors {
			s.Points = append(s.Points, Point{X: float64(16 * factor), Y: d.CPUUtil[c][i]})
		}
		res.Series = append(res.Series, s)
	}
	return res
}

// Fig18 renders peak aggregate network bandwidth vs. system size
// (Figure 18).
func (d *ScaleupData) Fig18() Result {
	res := Result{
		ID:     "fig18",
		Title:  "Peak aggregate network bandwidth requirements",
		XLabel: "disks",
		YLabel: "peak bandwidth (MB/s)",
	}
	for c, name := range d.Configs {
		s := Series{Name: name}
		for i, factor := range d.Factors {
			s.Points = append(s.Points, Point{X: float64(16 * factor), Y: d.PeakNetMBs[c][i]})
		}
		res.Series = append(res.Series, s)
	}
	return res
}

// diskPricing1995 holds Table 3's price points: capacity (GB) and cost
// per disk for systems of 16, 32 and 64 disks storing the same 64
// videos.
var diskPricing1995 = []struct {
	disks      int
	capacityGB float64
	costPerDsk float64
}{
	{16, 9.0, 4000},
	{32, 4.5, 2500},
	{64, 2.2, 1500},
}

// Table3 combines measured max terminals (the real-time configuration,
// matching the paper's 200/395/760 row sources) with 1995 disk prices to
// compare cost per supported terminal (the paper's Table 3).
func (d *ScaleupData) Table3() Result {
	res := Result{
		ID:     "table3",
		Title:  "Comparison of disk costs per terminal (1995 prices)",
		XLabel: "disks",
	}
	// Use the last configuration (real-time) as the paper does; fall
	// back to the first if absent.
	c := len(d.Configs) - 1
	costS := Series{Name: "total cost ($)"}
	termS := Series{Name: "max terminals"}
	perS := Series{Name: "cost/terminal ($)"}
	cpmS := Series{Name: "cost/MB ($)"}
	for i, factor := range d.Factors {
		disks := 16 * factor
		var price *struct {
			disks      int
			capacityGB float64
			costPerDsk float64
		}
		for j := range diskPricing1995 {
			if diskPricing1995[j].disks == disks {
				price = &diskPricing1995[j]
			}
		}
		if price == nil {
			continue
		}
		total := float64(price.disks) * price.costPerDsk
		terms := float64(d.Max[c][i])
		costS.Points = append(costS.Points, Point{X: float64(disks), Y: total})
		termS.Points = append(termS.Points, Point{X: float64(disks), Y: terms})
		if terms > 0 {
			perS.Points = append(perS.Points, Point{X: float64(disks), Y: total / terms})
		}
		cpmS.Points = append(cpmS.Points, Point{
			X: float64(disks),
			Y: price.costPerDsk / (price.capacityGB * 1024),
		})
	}
	res.Series = []Series{termS, costS, cpmS, perS}
	res.Notes = append(res.Notes,
		"9GB/$4000, 4.5GB/$2500, 2.2GB/$1500 drives (paper's 1995 prices); "+
			"minimizing $/MB does not minimize $/terminal")
	return res
}
