package experiments

import (
	"fmt"

	"spiffi/internal/bufferpool"
	"spiffi/internal/core"
	"spiffi/internal/dsched"
	"spiffi/internal/prefetch"
	"spiffi/internal/rng"
	"spiffi/internal/sim"
	"spiffi/internal/terminal"
)

// base returns the paper's §7 base configuration (terminal count filled
// by the search).
func base() core.Config { return core.DefaultConfig(1) }

// rt34 is the paper's tuned real-time scheduler: 3 classes, 4 s spacing.
func rt34() dsched.Config {
	return dsched.Config{Kind: dsched.KindRealTime, Classes: 3, Spacing: 4 * sim.Second}
}

// Fig08Zipf reproduces Figure 8: the Zipfian video-access distribution
// for 64 videos at z in {0.5, 1.0, 1.5} plus uniform. Analytic — no
// simulation.
func Fig08Zipf(f Fidelity) (Result, error) {
	res := Result{
		ID:     "fig08",
		Title:  "Zipfian distribution over 64 videos",
		XLabel: "video rank",
		YLabel: "access probability",
	}
	for _, z := range []float64{0, 0.5, 1.0, 1.5} {
		name := fmt.Sprintf("z=%.1f", z)
		if z == 0 {
			name = "uniform"
		}
		zf := rng.NewZipf(64, z)
		s := Series{Name: name}
		for i := 0; i < 64; i++ {
			s.Points = append(s.Points, Point{X: float64(i + 1), Y: zf.PMF(i)})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Fig09GlitchCurve reproduces Figure 9: glitches vs. the number of
// terminals for the base configuration, showing the knee the §7.1
// methodology searches for.
func Fig09GlitchCurve(f Fidelity) (Result, error) {
	cfg := base()
	cfg.ServerMemBytes = 4 * core.GB
	r, err := f.search(cfg, 0, 0)
	if err != nil {
		return Result{}, err
	}
	max := r.MaxTerminals
	var counts []int
	for _, d := range []int{-2 * f.Step, -f.Step, 0, f.Step, 2 * f.Step, 4 * f.Step} {
		if max+d > 0 {
			counts = append(counts, max+d)
		}
	}
	curve, err := core.GlitchCurve(f.apply(cfg), counts)
	if err != nil {
		return Result{}, err
	}
	s := Series{Name: "glitches"}
	for _, c := range counts {
		s.Points = append(s.Points, Point{X: float64(c), Y: float64(curve[c])})
	}
	return Result{
		ID:     "fig09",
		Title:  "Finding the maximum number of terminals without glitches",
		XLabel: "terminals",
		YLabel: "glitches",
		Series: []Series{s},
		Notes:  []string{fmt.Sprintf("max glitch-free terminals = %d", max)},
	}, nil
}

// fig10Algs lists Figure 10's disk scheduling algorithms.
func fig10Algs() []dsched.Config {
	return []dsched.Config{
		{Kind: dsched.KindElevator},
		{Kind: dsched.KindGSS, Groups: 1},
		{Kind: dsched.KindRoundRobin},
		{Kind: dsched.KindRealTime, Classes: 2, Spacing: 4 * sim.Second},
		{Kind: dsched.KindRealTime, Classes: 3, Spacing: 4 * sim.Second},
	}
}

// Fig10SchedStripe reproduces Figure 10: max terminals vs. stripe size
// for each disk scheduling algorithm, with plentiful (4 GB) memory and
// global LRU.
func Fig10SchedStripe(f Fidelity) (Result, error) {
	res := Result{
		ID:     "fig10",
		Title:  "Comparison of disk scheduling algorithms and stripe sizes",
		XLabel: "stripe size (KB)",
		YLabel: "max terminals",
	}
	for _, sc := range fig10Algs() {
		s := Series{Name: sc.String()}
		for _, kb := range f.StripePointsKB {
			cfg := base()
			cfg.Sched = sc
			cfg.StripeBytes = kb * core.KB
			r, err := f.search(cfg, 0, 0)
			if err != nil {
				return res, fmt.Errorf("%v stripe=%dKB: %w", sc, kb, err)
			}
			s.Points = append(s.Points, Point{X: float64(kb), Y: float64(r.MaxTerminals)})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// memSweep runs a server-memory sweep for one configuration variant.
func memSweep(f Fidelity, name string, mutate func(*core.Config)) (Series, []core.SearchResult, error) {
	s := Series{Name: name}
	var results []core.SearchResult
	for _, mb := range f.MemoryPointsMB {
		cfg := base()
		cfg.ServerMemBytes = mb * core.MB
		mutate(&cfg)
		r, err := f.search(cfg, 0, 0)
		if err != nil {
			return s, nil, fmt.Errorf("%s mem=%dMB: %w", name, mb, err)
		}
		s.Points = append(s.Points, Point{X: float64(mb), Y: float64(r.MaxTerminals)})
		results = append(results, r)
	}
	return s, results, nil
}

// Fig11MemoryElevator reproduces Figure 11: max terminals vs. server
// memory under elevator scheduling, global LRU vs. love prefetch.
func Fig11MemoryElevator(f Fidelity) (Result, error) {
	res := Result{
		ID:     "fig11",
		Title:  "Reducing server memory requirements (elevator)",
		XLabel: "server memory (MB)",
		YLabel: "max terminals",
	}
	variants := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"global-lru", func(c *core.Config) { c.Replacement = bufferpool.PolicyGlobalLRU }},
		{"love-prefetch", func(c *core.Config) { c.Replacement = bufferpool.PolicyLovePrefetch }},
	}
	for _, v := range variants {
		s, _, err := memSweep(f, v.name, v.mutate)
		if err != nil {
			return res, err
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Fig12MemoryRealTime reproduces Figure 12: the same sweep under
// real-time scheduling (3 classes, 4 s) with global LRU, love prefetch,
// and love prefetch + delayed prefetching at 8 s and 4 s maximum advance.
func Fig12MemoryRealTime(f Fidelity) (Result, error) {
	res := Result{
		ID:     "fig12",
		Title:  "Reducing server memory requirements (real-time)",
		XLabel: "server memory (MB)",
		YLabel: "max terminals",
	}
	variants := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"global-lru", func(c *core.Config) {
			c.Sched = rt34()
			c.Replacement = bufferpool.PolicyGlobalLRU
		}},
		{"love-prefetch", func(c *core.Config) {
			c.Sched = rt34()
			c.Replacement = bufferpool.PolicyLovePrefetch
		}},
		{"love+delayed(8s)", func(c *core.Config) {
			c.Sched = rt34()
			c.Replacement = bufferpool.PolicyLovePrefetch
			c.Prefetch = prefetch.Config{Mode: prefetch.ModeDelayed, MaxAdvance: 8 * sim.Second}
		}},
		{"love+delayed(4s)", func(c *core.Config) {
			c.Sched = rt34()
			c.Replacement = bufferpool.PolicyLovePrefetch
			c.Prefetch = prefetch.Config{Mode: prefetch.ModeDelayed, MaxAdvance: 4 * sim.Second}
		}},
	}
	for _, v := range variants {
		s, _, err := memSweep(f, v.name, v.mutate)
		if err != nil {
			return res, err
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Fig13And14Striping reproduces Figures 13 and 14: max terminals (13)
// and average disk utilization at that maximum (14) for striped vs.
// non-striped layouts under Zipf and uniform access, with love prefetch
// and elevator scheduling.
func Fig13And14Striping(f Fidelity) (Result, Result, error) {
	fig13 := Result{
		ID:     "fig13",
		Title:  "Striped vs. non-striped layouts",
		XLabel: "server memory (MB)",
		YLabel: "max terminals",
	}
	fig14 := Result{
		ID:     "fig14",
		Title:  "Average disk utilization, striped vs. non-striped",
		XLabel: "server memory (MB)",
		YLabel: "avg disk utilization (%)",
	}
	variants := []struct {
		name    string
		striped bool
		zipf    float64
	}{
		{"striped/zipf", true, 1.0},
		{"striped/uniform", true, 0},
		{"non-striped/zipf", false, 1.0},
		{"non-striped/uniform", false, 0},
	}
	for _, v := range variants {
		v := v
		s, results, err := memSweep(f, v.name, func(c *core.Config) {
			c.Replacement = bufferpool.PolicyLovePrefetch
			c.Striped = v.striped
			c.ZipfZ = v.zipf
		})
		if err != nil {
			return fig13, fig14, err
		}
		fig13.Series = append(fig13.Series, s)
		util := Series{Name: v.name}
		for i, r := range results {
			u := 0.0
			if len(r.AtMax) > 0 {
				u = r.AtMax[0].DiskUtilAvg * 100
			}
			util.Points = append(util.Points, Point{X: s.Points[i].X, Y: u})
		}
		fig14.Series = append(fig14.Series, util)
	}
	return fig13, fig14, nil
}

// Fig15And16AccessFrequencies reproduces Figures 15 and 16: max
// terminals (15) and the fraction of buffer references to pages
// previously referenced by another terminal (16), as video access skew
// varies (uniform, z = 0.5, 1.0, 1.5).
func Fig15And16AccessFrequencies(f Fidelity) (Result, Result, error) {
	fig15 := Result{
		ID:     "fig15",
		Title:  "Varying the video access frequencies",
		XLabel: "server memory (MB)",
		YLabel: "max terminals",
	}
	fig16 := Result{
		ID:     "fig16",
		Title:  "Buffer references to pages previously referenced by another terminal",
		XLabel: "server memory (MB)",
		YLabel: "shared references (%)",
	}
	for _, z := range []float64{0, 0.5, 1.0, 1.5} {
		z := z
		name := fmt.Sprintf("z=%.1f", z)
		if z == 0 {
			name = "uniform"
		}
		s, results, err := memSweep(f, name, func(c *core.Config) {
			c.Replacement = bufferpool.PolicyLovePrefetch
			c.ZipfZ = z
		})
		if err != nil {
			return fig15, fig16, err
		}
		fig15.Series = append(fig15.Series, s)
		shared := Series{Name: name}
		for i, r := range results {
			v := 0.0
			if len(r.AtMax) > 0 {
				v = r.AtMax[0].Pool.SharedFraction() * 100
			}
			shared.Points = append(shared.Points, Point{X: s.Points[i].X, Y: v})
		}
		fig16.Series = append(fig16.Series, shared)
	}
	return fig15, fig16, nil
}

// Fig19Pause reproduces Figure 19 (§8.1): pausing — two pauses per
// movie averaging two minutes each — does not change the maximum number
// of supportable terminals.
func Fig19Pause(f Fidelity) (Result, error) {
	res := Result{
		ID:     "fig19",
		Title:  "Effect of pausing videos",
		XLabel: "server memory (MB)",
		YLabel: "max terminals",
	}
	// Pause durations scale with fidelity so that short bench videos
	// still spend a comparable fraction of time paused.
	pauseDur := 2 * sim.Minute
	if f.VideoLength < 30*sim.Minute {
		pauseDur = f.VideoLength / 30
	}
	variants := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"no pauses", func(c *core.Config) { c.Replacement = bufferpool.PolicyLovePrefetch }},
		{"with pauses", func(c *core.Config) {
			c.Replacement = bufferpool.PolicyLovePrefetch
			c.Pause = &terminal.PauseConfig{MeanPauses: 2, MeanDuration: pauseDur}
		}},
	}
	for _, v := range variants {
		s, _, err := memSweep(f, v.name, v.mutate)
		if err != nil {
			return res, err
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Piggyback reproduces the §8.2 claim: delaying video starts to batch
// terminals onto shared streams ("piggybacking") more than doubles the
// number of supportable terminals at Zipf z=1.
func Piggyback(f Fidelity) (Result, error) {
	res := Result{
		ID:     "piggyback",
		Title:  "Piggybacking terminals with delayed starts (§8.2)",
		XLabel: "start delay (s)",
		YLabel: "max terminals",
	}
	// The paper's 5-minute delay scaled to the fidelity's video length.
	delay := 5 * sim.Minute
	if f.VideoLength < 60*sim.Minute {
		delay = f.VideoLength / 12
	}
	s := Series{Name: "max terminals"}
	for _, d := range []sim.Duration{0, delay} {
		cfg := base()
		cfg.Replacement = bufferpool.PolicyLovePrefetch
		cfg.ServerMemBytes = 512 * core.MB
		cfg.PiggybackDelay = d
		hi := 0
		if d > 0 {
			// Piggybacking multiplies capacity; widen the cap.
			hi = 100 * cfg.TotalDisks()
		}
		r, err := f.search(cfg, 0, hi)
		if err != nil {
			return res, fmt.Errorf("delay=%v: %w", d, err)
		}
		s.Points = append(s.Points, Point{X: d.Seconds(), Y: float64(r.MaxTerminals)})
	}
	res.Series = append(res.Series, s)
	if len(s.Points) == 2 && s.Points[0].Y > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf("multiplier = %.2fx",
			s.Points[1].Y/s.Points[0].Y))
	}
	return res, nil
}
