package experiments

import (
	"fmt"

	"spiffi/internal/bufferpool"
	"spiffi/internal/core"
	"spiffi/internal/dsched"
	"spiffi/internal/prefetch"
	"spiffi/internal/rng"
	"spiffi/internal/sim"
	"spiffi/internal/terminal"
)

// base returns the paper's §7 base configuration (terminal count filled
// by the search).
func base() core.Config { return core.DefaultConfig(1) }

// rt34 is the paper's tuned real-time scheduler: 3 classes, 4 s spacing.
func rt34() dsched.Config {
	return dsched.Config{Kind: dsched.KindRealTime, Classes: 3, Spacing: 4 * sim.Second}
}

// Fig08Zipf reproduces Figure 8: the Zipfian video-access distribution
// for 64 videos at z in {0.5, 1.0, 1.5} plus uniform. Analytic — no
// simulation.
func Fig08Zipf(f Fidelity) (Result, error) {
	res := Result{
		ID:     "fig08",
		Title:  "Zipfian distribution over 64 videos",
		XLabel: "video rank",
		YLabel: "access probability",
	}
	for _, z := range []float64{0, 0.5, 1.0, 1.5} {
		name := fmt.Sprintf("z=%.1f", z)
		if z == 0 {
			name = "uniform"
		}
		zf := rng.NewZipf(64, z)
		s := Series{Name: name}
		for i := 0; i < 64; i++ {
			s.Points = append(s.Points, Point{X: float64(i + 1), Y: zf.PMF(i)})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Fig09GlitchCurve reproduces Figure 9: glitches vs. the number of
// terminals for the base configuration, showing the knee the §7.1
// methodology searches for.
func Fig09GlitchCurve(f Fidelity) (Result, error) {
	f = f.withPool()
	cfg := base()
	cfg.ServerMemBytes = 4 * core.GB
	r, err := f.search(cfg, 0, 0)
	if err != nil {
		return Result{}, err
	}
	max := r.MaxTerminals
	var counts []int
	for _, d := range []int{-2 * f.Step, -f.Step, 0, f.Step, 2 * f.Step, 4 * f.Step} {
		if max+d > 0 {
			counts = append(counts, max+d)
		}
	}
	curve, err := f.pool().GlitchCurve(f.apply(cfg), counts)
	if err != nil {
		return Result{}, err
	}
	s := Series{Name: "glitches"}
	for _, c := range counts {
		s.Points = append(s.Points, Point{X: float64(c), Y: float64(curve[c])})
	}
	return Result{
		ID:     "fig09",
		Title:  "Finding the maximum number of terminals without glitches",
		XLabel: "terminals",
		YLabel: "glitches",
		Series: []Series{s},
		Notes:  []string{fmt.Sprintf("max glitch-free terminals = %d", max)},
	}, nil
}

// fig10Algs lists Figure 10's disk scheduling algorithms.
func fig10Algs() []dsched.Config {
	return []dsched.Config{
		{Kind: dsched.KindElevator},
		{Kind: dsched.KindGSS, Groups: 1},
		{Kind: dsched.KindRoundRobin},
		{Kind: dsched.KindRealTime, Classes: 2, Spacing: 4 * sim.Second},
		{Kind: dsched.KindRealTime, Classes: 3, Spacing: 4 * sim.Second},
	}
}

// Fig10SchedStripe reproduces Figure 10: max terminals vs. stripe size
// for each disk scheduling algorithm, with plentiful (4 GB) memory and
// global LRU.
func Fig10SchedStripe(f Fidelity) (Result, error) {
	res := Result{
		ID:     "fig10",
		Title:  "Comparison of disk scheduling algorithms and stripe sizes",
		XLabel: "stripe size (KB)",
		YLabel: "max terminals",
	}
	f = f.withPool()
	algs := fig10Algs()
	series := make([]Series, len(algs))
	err := fanout(len(algs), func(a int) error {
		sc := algs[a]
		maxes := make([]int, len(f.StripePointsKB))
		err := fanout(len(f.StripePointsKB), func(i int) error {
			kb := f.StripePointsKB[i]
			cfg := base()
			cfg.Sched = sc
			cfg.StripeBytes = kb * core.KB
			r, err := f.search(cfg, 0, 0)
			if err != nil {
				return fmt.Errorf("%v stripe=%dKB: %w", sc, kb, err)
			}
			maxes[i] = r.MaxTerminals
			return nil
		})
		if err != nil {
			return err
		}
		s := Series{Name: sc.String()}
		for i, kb := range f.StripePointsKB {
			s.Points = append(s.Points, Point{X: float64(kb), Y: float64(maxes[i])})
		}
		series[a] = s
		return nil
	})
	if err != nil {
		return res, err
	}
	res.Series = series
	return res, nil
}

// memSweep runs a server-memory sweep for one configuration variant,
// searching the sweep points concurrently on the shared pool.
func memSweep(f Fidelity, name string, mutate func(*core.Config)) (Series, []core.SearchResult, error) {
	f = f.withPool()
	s := Series{Name: name}
	results := make([]core.SearchResult, len(f.MemoryPointsMB))
	err := fanout(len(f.MemoryPointsMB), func(i int) error {
		mb := f.MemoryPointsMB[i]
		cfg := base()
		cfg.ServerMemBytes = mb * core.MB
		mutate(&cfg)
		r, err := f.search(cfg, 0, 0)
		if err != nil {
			return fmt.Errorf("%s mem=%dMB: %w", name, mb, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return s, nil, err
	}
	for i, mb := range f.MemoryPointsMB {
		s.Points = append(s.Points, Point{X: float64(mb), Y: float64(results[i].MaxTerminals)})
	}
	return s, results, nil
}

// variantSweep fans the named memSweep variants out concurrently,
// returning one series per variant in input order.
func variantSweep(f Fidelity, names []string, mutates []func(*core.Config)) ([]Series, [][]core.SearchResult, error) {
	f = f.withPool()
	series := make([]Series, len(names))
	results := make([][]core.SearchResult, len(names))
	err := fanout(len(names), func(i int) error {
		s, rs, err := memSweep(f, names[i], mutates[i])
		if err != nil {
			return err
		}
		series[i], results[i] = s, rs
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return series, results, nil
}

// Fig11MemoryElevator reproduces Figure 11: max terminals vs. server
// memory under elevator scheduling, global LRU vs. love prefetch.
func Fig11MemoryElevator(f Fidelity) (Result, error) {
	res := Result{
		ID:     "fig11",
		Title:  "Reducing server memory requirements (elevator)",
		XLabel: "server memory (MB)",
		YLabel: "max terminals",
	}
	series, _, err := variantSweep(f,
		[]string{"global-lru", "love-prefetch"},
		[]func(*core.Config){
			func(c *core.Config) { c.Replacement = bufferpool.PolicyGlobalLRU },
			func(c *core.Config) { c.Replacement = bufferpool.PolicyLovePrefetch },
		})
	if err != nil {
		return res, err
	}
	res.Series = series
	return res, nil
}

// Fig12MemoryRealTime reproduces Figure 12: the same sweep under
// real-time scheduling (3 classes, 4 s) with global LRU, love prefetch,
// and love prefetch + delayed prefetching at 8 s and 4 s maximum advance.
func Fig12MemoryRealTime(f Fidelity) (Result, error) {
	res := Result{
		ID:     "fig12",
		Title:  "Reducing server memory requirements (real-time)",
		XLabel: "server memory (MB)",
		YLabel: "max terminals",
	}
	series, _, err := variantSweep(f,
		[]string{"global-lru", "love-prefetch", "love+delayed(8s)", "love+delayed(4s)"},
		[]func(*core.Config){
			func(c *core.Config) {
				c.Sched = rt34()
				c.Replacement = bufferpool.PolicyGlobalLRU
			},
			func(c *core.Config) {
				c.Sched = rt34()
				c.Replacement = bufferpool.PolicyLovePrefetch
			},
			func(c *core.Config) {
				c.Sched = rt34()
				c.Replacement = bufferpool.PolicyLovePrefetch
				c.Prefetch = prefetch.Config{Mode: prefetch.ModeDelayed, MaxAdvance: 8 * sim.Second}
			},
			func(c *core.Config) {
				c.Sched = rt34()
				c.Replacement = bufferpool.PolicyLovePrefetch
				c.Prefetch = prefetch.Config{Mode: prefetch.ModeDelayed, MaxAdvance: 4 * sim.Second}
			},
		})
	if err != nil {
		return res, err
	}
	res.Series = series
	return res, nil
}

// Fig13And14Striping reproduces Figures 13 and 14: max terminals (13)
// and average disk utilization at that maximum (14) for striped vs.
// non-striped layouts under Zipf and uniform access, with love prefetch
// and elevator scheduling.
func Fig13And14Striping(f Fidelity) (Result, Result, error) {
	fig13 := Result{
		ID:     "fig13",
		Title:  "Striped vs. non-striped layouts",
		XLabel: "server memory (MB)",
		YLabel: "max terminals",
	}
	fig14 := Result{
		ID:     "fig14",
		Title:  "Average disk utilization, striped vs. non-striped",
		XLabel: "server memory (MB)",
		YLabel: "avg disk utilization (%)",
	}
	variants := []struct {
		name    string
		striped bool
		zipf    float64
	}{
		{"striped/zipf", true, 1.0},
		{"striped/uniform", true, 0},
		{"non-striped/zipf", false, 1.0},
		{"non-striped/uniform", false, 0},
	}
	names := make([]string, len(variants))
	mutates := make([]func(*core.Config), len(variants))
	for i, v := range variants {
		v := v
		names[i] = v.name
		mutates[i] = func(c *core.Config) {
			c.Replacement = bufferpool.PolicyLovePrefetch
			c.Striped = v.striped
			c.ZipfZ = v.zipf
		}
	}
	series, results, err := variantSweep(f, names, mutates)
	if err != nil {
		return fig13, fig14, err
	}
	for vi, s := range series {
		fig13.Series = append(fig13.Series, s)
		util := Series{Name: s.Name}
		for i, r := range results[vi] {
			u := 0.0
			if len(r.AtMax) > 0 {
				u = r.AtMax[0].DiskUtilAvg * 100
			}
			util.Points = append(util.Points, Point{X: s.Points[i].X, Y: u})
		}
		fig14.Series = append(fig14.Series, util)
	}
	return fig13, fig14, nil
}

// Fig15And16AccessFrequencies reproduces Figures 15 and 16: max
// terminals (15) and the fraction of buffer references to pages
// previously referenced by another terminal (16), as video access skew
// varies (uniform, z = 0.5, 1.0, 1.5).
func Fig15And16AccessFrequencies(f Fidelity) (Result, Result, error) {
	fig15 := Result{
		ID:     "fig15",
		Title:  "Varying the video access frequencies",
		XLabel: "server memory (MB)",
		YLabel: "max terminals",
	}
	fig16 := Result{
		ID:     "fig16",
		Title:  "Buffer references to pages previously referenced by another terminal",
		XLabel: "server memory (MB)",
		YLabel: "shared references (%)",
	}
	zs := []float64{0, 0.5, 1.0, 1.5}
	names := make([]string, len(zs))
	mutates := make([]func(*core.Config), len(zs))
	for i, z := range zs {
		z := z
		names[i] = fmt.Sprintf("z=%.1f", z)
		if z == 0 {
			names[i] = "uniform"
		}
		mutates[i] = func(c *core.Config) {
			c.Replacement = bufferpool.PolicyLovePrefetch
			c.ZipfZ = z
		}
	}
	series, results, err := variantSweep(f, names, mutates)
	if err != nil {
		return fig15, fig16, err
	}
	for vi, s := range series {
		fig15.Series = append(fig15.Series, s)
		shared := Series{Name: s.Name}
		for i, r := range results[vi] {
			v := 0.0
			if len(r.AtMax) > 0 {
				v = r.AtMax[0].Pool.SharedFraction() * 100
			}
			shared.Points = append(shared.Points, Point{X: s.Points[i].X, Y: v})
		}
		fig16.Series = append(fig16.Series, shared)
	}
	return fig15, fig16, nil
}

// Fig19Pause reproduces Figure 19 (§8.1): pausing — two pauses per
// movie averaging two minutes each — does not change the maximum number
// of supportable terminals.
func Fig19Pause(f Fidelity) (Result, error) {
	res := Result{
		ID:     "fig19",
		Title:  "Effect of pausing videos",
		XLabel: "server memory (MB)",
		YLabel: "max terminals",
	}
	// Pause durations scale with fidelity so that short bench videos
	// still spend a comparable fraction of time paused.
	pauseDur := 2 * sim.Minute
	if f.VideoLength < 30*sim.Minute {
		pauseDur = f.VideoLength / 30
	}
	series, _, err := variantSweep(f,
		[]string{"no pauses", "with pauses"},
		[]func(*core.Config){
			func(c *core.Config) { c.Replacement = bufferpool.PolicyLovePrefetch },
			func(c *core.Config) {
				c.Replacement = bufferpool.PolicyLovePrefetch
				c.Pause = &terminal.PauseConfig{MeanPauses: 2, MeanDuration: pauseDur}
			},
		})
	if err != nil {
		return res, err
	}
	res.Series = series
	return res, nil
}

// Piggyback reproduces the §8.2 claim: delaying video starts to batch
// terminals onto shared streams ("piggybacking") more than doubles the
// number of supportable terminals at Zipf z=1.
func Piggyback(f Fidelity) (Result, error) {
	res := Result{
		ID:     "piggyback",
		Title:  "Piggybacking terminals with delayed starts (§8.2)",
		XLabel: "start delay (s)",
		YLabel: "max terminals",
	}
	// The paper's 5-minute delay scaled to the fidelity's video length.
	delay := 5 * sim.Minute
	if f.VideoLength < 60*sim.Minute {
		delay = f.VideoLength / 12
	}
	f = f.withPool()
	delays := []sim.Duration{0, delay}
	maxes := make([]int, len(delays))
	err := fanout(len(delays), func(i int) error {
		d := delays[i]
		cfg := base()
		cfg.Replacement = bufferpool.PolicyLovePrefetch
		cfg.ServerMemBytes = 512 * core.MB
		cfg.PiggybackDelay = d
		hi := 0
		if d > 0 {
			// Piggybacking multiplies capacity; widen the cap.
			hi = 100 * cfg.TotalDisks()
		}
		r, err := f.search(cfg, 0, hi)
		if err != nil {
			return fmt.Errorf("delay=%v: %w", d, err)
		}
		maxes[i] = r.MaxTerminals
		return nil
	})
	if err != nil {
		return res, err
	}
	s := Series{Name: "max terminals"}
	for i, d := range delays {
		s.Points = append(s.Points, Point{X: d.Seconds(), Y: float64(maxes[i])})
	}
	res.Series = append(res.Series, s)
	if len(s.Points) == 2 && s.Points[0].Y > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf("multiplier = %.2fx",
			s.Points[1].Y/s.Points[0].Y))
	}
	return res, nil
}
