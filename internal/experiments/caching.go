package experiments

import (
	"fmt"

	"spiffi/internal/cache"
	"spiffi/internal/core"
	"spiffi/internal/sim"
)

// Caching is the prefix-cache and stream-merge experiment (CACHING.md):
// a memory-constrained system serves a fixed offered load while the
// request skew sweeps across Zipf z, under three caching policies —
// none (the plain buffer pool keeps all the memory), an LRU prefix
// cache, and the Zipf-rank prefix cache — with the cache budget carved
// out of the same server memory, so every variant runs on identical
// total hardware. The metric is disk reads per admitted terminal: a
// cache hit on a video's opening blocks serves the block without a
// disk transfer, and a successful merge rides a leader's in-flight
// stream for the rest of the movie, so effective caching shows up
// directly as disk I/O removed per viewer. Rank-based replacement pins
// the prefixes of the most-requested videos, so its advantage widens
// as the skew concentrates requests on few titles; LRU keeps whatever
// was touched last, so one-off requests for cold titles flush hot
// prefixes.
//
// A capacity search per variant at z = 1.0 reports the complementary
// figure of merit — the most terminals the same hardware sustains
// glitch-free — in the notes. At saturation the carve itself is the
// binding cost (a third of the buffer pool gone), so the cached
// variants trade peak capacity for per-viewer disk I/O; the sweep's
// fixed load is where the cache pays.
func Caching(f Fidelity) (Result, error) {
	res := Result{
		ID:     "caching",
		Title:  "Prefix caching and stream merging across access skew",
		XLabel: "zipf skew z",
		YLabel: "disk reads per admitted terminal",
	}

	const budget = 32 * core.MB
	variants := []struct {
		name  string
		apply func(*core.Config)
	}{
		{"none", func(c *core.Config) {}},
		{"lru", func(c *core.Config) {
			c.Cache = cache.Config{BudgetBytes: budget, Policy: cache.PolicyLRU, PrefixBlocks: 16}
		}},
		{"zipf-rank", func(c *core.Config) {
			c.Cache = cache.Config{BudgetBytes: budget, Policy: cache.PolicyZipfRank, PrefixBlocks: 16}
		}},
	}
	skews := []float64{0.5, 1.0, 1.5}

	// One flat batch in deterministic index order; the pool fans it out.
	var cfgs []core.Config
	for _, v := range variants {
		for _, z := range skews {
			cfg := cachingBase()
			cfg.Trace = f.Trace
			cfg.ZipfZ = z
			v.apply(&cfg)
			cfgs = append(cfgs, cfg)
		}
	}
	ms, err := f.pool().RunMany(cfgs)
	if err != nil {
		return res, err
	}
	for vi, v := range variants {
		s := Series{Name: v.name}
		for zi, z := range skews {
			m := ms[vi*len(skews)+zi]
			s.Points = append(s.Points, Point{X: z, Y: float64(m.DiskReads) / float64(m.Terminals)})
			res.Notes = append(res.Notes, fmt.Sprintf(
				"%s z=%.1f: diskreads=%d (%.1f/terminal) glitches=%d cache hits=%d misses=%d evictions=%d merges=%d forwarded=%d detaches=%d",
				v.name, z, m.DiskReads, float64(m.DiskReads)/float64(m.Terminals),
				m.Glitches, m.CacheHits, m.CacheMisses, m.CacheEvictions,
				m.Merges, m.MergedBlocks, m.MergeDetaches))
		}
		res.Series = append(res.Series, s)
	}

	// Capacity at z = 1.0 per variant: the same hardware's max
	// glitch-free terminal count with and without the caching tier.
	// The searches use the experiment's own workload (not f.apply's
	// timings — see cachingBase) with the fidelity's step and seeds.
	for _, v := range variants {
		cfg := cachingBase()
		cfg.ZipfZ = 1.0
		v.apply(&cfg)
		r, err := f.pool().FindMaxTerminals(cfg, core.SearchOptions{
			Lo: 60, Hi: 420, Step: f.Step, Seeds: f.Seeds,
		})
		if err != nil {
			return res, fmt.Errorf("capacity search (%s): %w", v.name, err)
		}
		res.Notes = append(res.Notes, fmt.Sprintf(
			"capacity z=1.0 %s: max terminals %d", v.name, r.MaxTerminals))
	}
	return res, nil
}

// cachingBase is the experiment's workload, deliberately independent
// of the fidelity's video/window timings: caching and merging pay off
// on session *starts*, so the measurement window has to contain them.
// Movies last 90 s against a 45 s window with starts staggered across
// 90 s, which keeps session turnover — and with it cache lookups and
// merge joins — flowing through the measured interval; stamping the
// fidelity's 6–60-minute videos instead would push every start into
// the warm-up and measure nothing but steady-state streaming. Server
// memory is tight enough that the buffer pool cannot shadow the cache
// (pool residency is shorter than the typical same-video arrival gap),
// terminals start every movie from the beginning (a viewer dropped
// mid-movie has no prefix to catch up from), and terminal buffers are
// large enough to absorb a merge join gap.
func cachingBase() core.Config {
	cfg := base()
	cfg.Terminals = 64
	cfg.ServerMemBytes = 96 * core.MB
	cfg.TerminalMemBytes = 16 * core.MB
	cfg.RandomInitialPosition = false
	cfg.Video.Length = 90 * sim.Second
	cfg.StartWindow = 90 * sim.Second
	cfg.MeasureTime = 45 * sim.Second
	return cfg
}
