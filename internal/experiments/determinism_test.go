package experiments

import (
	"bytes"
	"testing"
)

// detFidelity is the determinism suite's fidelity: bench simulation
// parameters (video length, windows, step, seeds) with trimmed sweep
// lists. Sweep points are independent (config, seed) searches, so one
// or two points per sweep exercise the parallel machinery as thoroughly
// as the full list at a fraction of the wall-clock cost.
func detFidelity() Fidelity {
	f := Bench()
	f.MemoryPointsMB = []int64{512}
	f.StripePointsKB = []int64{256, 512}
	f.ScaleFactors = []int{1, 2}
	return f
}

// runWorkers executes one experiment id with the given worker count and
// returns the results plus their canonical JSON with the execution
// provenance (workers, wall-clock) zeroed — the only fields allowed to
// differ across worker counts.
func runWorkers(t *testing.T, id string, f Fidelity, workers int) ([]Result, [][]byte) {
	t.Helper()
	f.Workers = workers
	f.run = nil
	results, err := Run(id, f)
	if err != nil {
		t.Fatalf("%s workers=%d: %v", id, workers, err)
	}
	blobs := make([][]byte, len(results))
	for i, r := range results {
		if r.Workers != workers {
			t.Fatalf("%s: result stamped workers=%d, ran with %d", id, r.Workers, workers)
		}
		r.Workers = 0
		r.WallClock = 0
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		blobs[i] = buf.Bytes()
	}
	return results, blobs
}

// diffBlobs fails the test if the two JSON renderings differ.
func diffBlobs(t *testing.T, id string, seq, par [][]byte) {
	t.Helper()
	if len(seq) != len(par) {
		t.Fatalf("%s: result count differs: %d vs %d", id, len(seq), len(par))
	}
	for i := range seq {
		if !bytes.Equal(seq[i], par[i]) {
			t.Errorf("%s result %d differs between workers=1 and workers=8:\n--- workers=1:\n%s\n--- workers=8:\n%s",
				id, i, seq[i], par[i])
		}
	}
}

// Every registered experiment must produce byte-identical Result JSON
// whatever the worker count: parallelism changes execution order and
// adds speculative evaluations, but never the data.
func TestDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy; fig09 coverage stays via TestDeterminismFig09Parallel")
	}
	seen := map[string]bool{}
	for _, id := range IDs() {
		if seen[id] {
			continue
		}
		id := id
		t.Run(id, func(t *testing.T) {
			results, seq := runWorkers(t, id, detFidelity(), 1)
			for _, r := range results {
				seen[r.ID] = true
			}
			_, par := runWorkers(t, id, detFidelity(), 8)
			diffBlobs(t, id, seq, par)
		})
	}
}

// The cheap always-on slice of the suite: fig09 (a full search plus the
// glitch curve) at the full bench fidelity, multi-worker vs sequential.
// Not skipped under -short so the race-detector pass exercises the
// parallel runner end to end through an experiment harness.
func TestDeterminismFig09Parallel(t *testing.T) {
	_, seq := runWorkers(t, "fig09", Bench(), 1)
	_, par := runWorkers(t, "fig09", Bench(), 8)
	diffBlobs(t, "fig09", seq, par)
}
