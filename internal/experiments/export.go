package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Export helpers: experiment results render to CSV (one row per X value,
// one column per series — ready for any plotting tool) and to JSON (the
// full structure, for programmatic consumption).

// WriteCSV writes the result as a CSV table mirroring Format's layout.
func (r Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{r.XLabel}
	for _, s := range r.Series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range r.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	for _, x := range xs {
		row := []string{strconv.FormatFloat(x, 'g', -1, 64)}
		for _, s := range r.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = strconv.FormatFloat(p.Y, 'g', -1, 64)
					break
				}
			}
			row = append(row, cell)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// resultJSON is the stable exported JSON shape. Workers and WallMS are
// execution provenance; omitted when unset so archives produced before
// the parallel runner still round-trip byte-identically.
type resultJSON struct {
	ID     string       `json:"id"`
	Title  string       `json:"title"`
	XLabel string       `json:"x_label"`
	YLabel string       `json:"y_label"`
	Series []seriesJSON `json:"series"`
	Notes  []string     `json:"notes,omitempty"`

	Workers int   `json:"workers,omitempty"`
	WallMS  int64 `json:"wall_ms,omitempty"`
}

type seriesJSON struct {
	Name   string       `json:"name"`
	Points [][2]float64 `json:"points"`
}

// WriteJSON writes the result as indented JSON.
func (r Result) WriteJSON(w io.Writer) error {
	out := resultJSON{
		ID:      r.ID,
		Title:   r.Title,
		XLabel:  r.XLabel,
		YLabel:  r.YLabel,
		Notes:   r.Notes,
		Workers: r.Workers,
		WallMS:  r.WallClock.Milliseconds(),
	}
	for _, s := range r.Series {
		sj := seriesJSON{Name: s.Name}
		for _, p := range s.Points {
			sj.Points = append(sj.Points, [2]float64{p.X, p.Y})
		}
		out.Series = append(out.Series, sj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses a result previously written by WriteJSON (round-trip
// support for archiving measured results alongside EXPERIMENTS.md).
func ReadJSON(rd io.Reader) (Result, error) {
	var in resultJSON
	if err := json.NewDecoder(rd).Decode(&in); err != nil {
		return Result{}, fmt.Errorf("experiments: decoding result: %w", err)
	}
	out := Result{
		ID:        in.ID,
		Title:     in.Title,
		XLabel:    in.XLabel,
		YLabel:    in.YLabel,
		Notes:     in.Notes,
		Workers:   in.Workers,
		WallClock: time.Duration(in.WallMS) * time.Millisecond,
	}
	for _, sj := range in.Series {
		s := Series{Name: sj.Name}
		for _, p := range sj.Points {
			s.Points = append(s.Points, Point{X: p[0], Y: p[1]})
		}
		out.Series = append(out.Series, s)
	}
	return out, nil
}
