package experiments

import (
	"fmt"
	"sort"
	"time"
)

// Runner regenerates one or more figures/tables at a fidelity.
type Runner func(f Fidelity) ([]Result, error)

// Registry maps experiment ids (as printed in DESIGN.md's per-experiment
// index) to runners. Combined harnesses (fig13+fig14, table2+fig17+
// fig18+table3) are registered under each id they produce.
func Registry() map[string]Runner {
	single := func(fn func(Fidelity) (Result, error)) Runner {
		return func(f Fidelity) ([]Result, error) {
			r, err := fn(f)
			if err != nil {
				return nil, err
			}
			return []Result{r}, nil
		}
	}
	striping := func(f Fidelity) ([]Result, error) {
		a, b, err := Fig13And14Striping(f)
		if err != nil {
			return nil, err
		}
		return []Result{a, b}, nil
	}
	access := func(f Fidelity) ([]Result, error) {
		a, b, err := Fig15And16AccessFrequencies(f)
		if err != nil {
			return nil, err
		}
		return []Result{a, b}, nil
	}
	scaleup := func(f Fidelity) ([]Result, error) {
		d, err := RunScaleup(f)
		if err != nil {
			return nil, err
		}
		return []Result{d.Table2(), d.Fig17(), d.Fig18(), d.Table3()}, nil
	}
	return map[string]Runner{
		"fig08":     single(Fig08Zipf),
		"fig09":     single(Fig09GlitchCurve),
		"fig10":     single(Fig10SchedStripe),
		"fig11":     single(Fig11MemoryElevator),
		"fig12":     single(Fig12MemoryRealTime),
		"fig13":     striping,
		"fig14":     striping,
		"fig15":     access,
		"fig16":     access,
		"fig19":     single(Fig19Pause),
		"table2":    scaleup,
		"fig17":     scaleup,
		"fig18":     scaleup,
		"table3":    scaleup,
		"piggyback": single(Piggyback),

		// Extensions beyond the paper's published plots.
		"ablation-rt":       single(AblationRTParams),
		"ablation-prefetch": single(AblationPrefetch),
		"ablation-cache":    single(AblationDiskCache),
		"ablation-sched":    single(AblationSchedulerZoo),
		"ablation-zoned":    single(AblationZonedDisks),
		"admission":         single(Admission),
		"vcr":               single(VCRSeek),
		"faults":            single(Faults),
		"overload":          single(Overload),
		"caching":           single(Caching),
		"failover":          single(Failover),
		"storms":            single(Storms),
	}
}

// IDs returns the registered experiment ids in sorted order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment id on the fidelity's worker pool and
// stamps each result with the worker count and wall-clock time.
func Run(id string, f Fidelity) ([]Result, error) {
	r, ok := Registry()[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	f = f.withPool()
	start := time.Now()
	results, err := r(f)
	elapsed := time.Since(start)
	for i := range results {
		results[i].Workers = f.pool().Workers()
		results[i].WallClock = elapsed
	}
	return results, err
}
