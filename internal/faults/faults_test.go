package faults

import (
	"reflect"
	"sort"
	"testing"

	"spiffi/internal/rng"
	"spiffi/internal/sim"
)

const hour = sim.Time(3600 * sim.Second)

func TestPlanDeterministic(t *testing.T) {
	cfg := Config{DiskSlowRate: 2, DiskSlowFactor: 4, DiskSlowMeanDur: 5 * sim.Second,
		DiskFailRate: 1, DiskRepairTime: 30 * sim.Second, NodeCrashRate: 0.5}
	a := NewPlan(cfg, 4, 4, hour, rng.New(7))
	b := NewPlan(cfg, 4, 4, hour, rng.New(7))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical seeds produced different plans")
	}
	if len(a) == 0 {
		t.Fatal("hour-long plan at these rates is empty")
	}
	if !sort.SliceIsSorted(a, func(i, j int) bool {
		if a[i].At != a[j].At {
			return a[i].At < a[j].At
		}
		if a[i].Kind != a[j].Kind {
			return a[i].Kind < a[j].Kind
		}
		return a[i].Index < a[j].Index
	}) {
		t.Fatal("plan not sorted by (time, kind, index)")
	}
	for _, ev := range a {
		if ev.At < 0 || ev.At >= hour {
			t.Fatalf("event outside horizon: %+v", ev)
		}
	}
}

// Each (component, fault class) pair draws from its own derived stream,
// so enabling one class must not move another class's events — the
// property that keeps fault sweeps comparable point to point.
func TestStreamsIndependent(t *testing.T) {
	failOnly := Config{DiskFailRate: 1, DiskRepairTime: 30 * sim.Second}
	both := failOnly
	both.NodeCrashRate = 2
	both.DiskSlowRate = 3
	both.DiskSlowFactor = 4
	both.DiskSlowMeanDur = 5 * sim.Second

	extract := func(plan []Event, kind Kind) []Event {
		var out []Event
		for _, ev := range plan {
			if ev.Kind == kind {
				out = append(out, ev)
			}
		}
		return out
	}
	a := NewPlan(failOnly, 4, 4, hour, rng.New(1))
	b := extract(NewPlan(both, 4, 4, hour, rng.New(1)), KindDiskFail)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("enabling other fault classes moved the disk-fail events")
	}
}

func TestArrivalRate(t *testing.T) {
	// 16 disks at 2 events/disk-hour over 1 hour: expect ~32 events;
	// the Poisson spread makes [16, 48] a ~4-sigma interval.
	cfg := Config{DiskFailRate: 2, DiskRepairTime: sim.Second}
	n := len(NewPlan(cfg, 4, 4, hour, rng.New(3)))
	if n < 16 || n > 48 {
		t.Fatalf("events = %d, want ~32", n)
	}
}

func TestEnabledAndNormalize(t *testing.T) {
	var zero Config
	if zero.Enabled() {
		t.Fatal("zero config enabled")
	}
	if plan := NewPlan(zero, 4, 4, hour, rng.New(1)); len(plan) != 0 {
		t.Fatalf("zero config planned %d events", len(plan))
	}
	if NewNetModel(zero, rng.New(1)) != nil {
		t.Fatal("zero config built a net model")
	}
	c := Config{DiskSlowRate: 1}
	c.Normalize()
	if c.DiskSlowFactor != 4 || c.DiskSlowMeanDur != 5*sim.Second {
		t.Fatalf("slowdown defaults not filled: %+v", c)
	}
	if !c.Enabled() {
		t.Fatal("slowdown config not enabled")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Config{
		{DiskFailRate: -1},
		{NetLossProb: 1},
		{NetLossProb: -0.1},
		{DiskSlowRate: 1, DiskSlowFactor: 0.5, DiskSlowMeanDur: sim.Second},
		{DiskSlowRate: 1, DiskSlowFactor: 2, DiskSlowMeanDur: -sim.Second},
		{NodeCrashRate: 1, NodeRestartTime: -sim.Second},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d (%+v): expected error", i, c)
		}
	}
}
