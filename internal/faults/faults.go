// Package faults builds deterministic fault-injection plans for the SPIFFI
// simulation: transient disk slowdowns, fail-stop disk failures with
// optional repair, node crashes with optional restart, and network message
// loss and latency jitter.
//
// The paper's experiments assume fault-free hardware; this package probes
// the degraded-mode behavior the full system needs around that core — the
// retry/failover machinery in the terminals, NACKs from the server, and
// per-cause glitch accounting.
//
// Determinism: every fault stream is an independent derived RNG
// (rng.Source.DeriveIndexed), so a plan is a pure function of (seed,
// config, horizon) and adding fault injection never perturbs the random
// streams the fault-free simulation consumes. Event times are drawn as
// Poisson processes (exponential inter-arrivals) per component, then the
// merged plan is sorted by (time, kind, index) for a reproducible
// application order.
package faults

import (
	"fmt"
	"sort"

	"spiffi/internal/rng"
	"spiffi/internal/sim"
)

// Config parameterizes fault injection. Rates are mean events per
// component-hour (a DiskFailRate of 2 fail-stops each disk about twice an
// hour); zero disables that fault class. The zero value disables
// everything and reproduces fault-free runs bit for bit.
type Config struct {
	// Transient disk degradation: service times stretch by DiskSlowFactor
	// for an exponentially distributed duration with mean DiskSlowMeanDur.
	DiskSlowRate    float64      // slowdown onsets per disk-hour
	DiskSlowFactor  float64      // service-time multiplier (default 4)
	DiskSlowMeanDur sim.Duration // mean slowdown length (default 5s)

	// Fail-stop disk failures: queued and in-flight requests complete with
	// an error, new submissions are rejected, and service resumes after
	// DiskRepairTime (0 = the disk never comes back).
	DiskFailRate   float64      // fail-stops per disk-hour
	DiskRepairTime sim.Duration // outage length; 0 = permanent

	// Node crashes: the node drops requests and suppresses replies while
	// down, and all its disks fail-stop, recovering together after
	// NodeRestartTime (0 = the node never comes back).
	NodeCrashRate   float64      // crashes per node-hour
	NodeRestartTime sim.Duration // outage length; 0 = permanent

	// Network faults: each message is independently dropped with
	// NetLossProb, and surviving messages gain a uniform extra latency in
	// [0, NetJitterMax).
	NetLossProb  float64      // per-message drop probability
	NetJitterMax sim.Duration // max extra per-message latency
}

// Enabled reports whether any fault class is active.
func (c Config) Enabled() bool {
	return c.DiskSlowRate > 0 || c.DiskFailRate > 0 || c.NodeCrashRate > 0 ||
		c.NetLossProb > 0 || c.NetJitterMax > 0
}

// Normalize fills defaults for enabled fault classes.
func (c *Config) Normalize() {
	if c.DiskSlowRate > 0 {
		if c.DiskSlowFactor == 0 {
			c.DiskSlowFactor = 4
		}
		if c.DiskSlowMeanDur == 0 {
			c.DiskSlowMeanDur = 5 * sim.Second
		}
	}
}

// Validate rejects inconsistent configurations.
func (c Config) Validate() error {
	switch {
	case c.DiskSlowRate < 0 || c.DiskFailRate < 0 || c.NodeCrashRate < 0:
		return fmt.Errorf("faults: negative event rate")
	case c.DiskSlowRate > 0 && c.DiskSlowFactor < 1:
		return fmt.Errorf("faults: disk slow factor %g below 1", c.DiskSlowFactor)
	case c.DiskSlowRate > 0 && c.DiskSlowMeanDur <= 0:
		return fmt.Errorf("faults: non-positive disk slowdown duration")
	case c.NetLossProb < 0 || c.NetLossProb >= 1:
		return fmt.Errorf("faults: network loss probability %g outside [0,1)", c.NetLossProb)
	case c.NetJitterMax < 0 || c.DiskRepairTime < 0 || c.NodeRestartTime < 0:
		return fmt.Errorf("faults: negative duration")
	}
	return nil
}

// Kind classifies a scheduled fault event.
type Kind int

// Fault event kinds, in plan tie-break order.
const (
	KindDiskSlow Kind = iota
	KindDiskFail
	KindNodeCrash
)

func (k Kind) String() string {
	switch k {
	case KindDiskSlow:
		return "disk-slow"
	case KindDiskFail:
		return "disk-fail"
	default:
		return "node-crash"
	}
}

// Event is one scheduled fault.
type Event struct {
	At       sim.Time
	Kind     Kind
	Index    int          // global disk index (disk kinds) or node index
	Factor   float64      // service-time multiplier (KindDiskSlow only)
	Duration sim.Duration // slowdown length, repair time, or restart time
}

// NewPlan draws the fault schedule for a simulation spanning [0, horizon):
// an independent Poisson arrival stream per component per fault class,
// merged and sorted by (time, kind, index). The source is only derived
// from, never advanced, so callers' other streams are unaffected.
func NewPlan(cfg Config, nodes, disksPerNode int, horizon sim.Time, src *rng.Source) []Event {
	var plan []Event
	totalDisks := nodes * disksPerNode
	if cfg.DiskSlowRate > 0 {
		for d := 0; d < totalDisks; d++ {
			s := src.DeriveIndexed("fault-disk-slow", d)
			for _, at := range arrivals(s, cfg.DiskSlowRate, horizon) {
				plan = append(plan, Event{
					At:       at,
					Kind:     KindDiskSlow,
					Index:    d,
					Factor:   cfg.DiskSlowFactor,
					Duration: sim.DurationOfSeconds(s.Exp(cfg.DiskSlowMeanDur.Seconds())),
				})
			}
		}
	}
	if cfg.DiskFailRate > 0 {
		for d := 0; d < totalDisks; d++ {
			s := src.DeriveIndexed("fault-disk-fail", d)
			for _, at := range arrivals(s, cfg.DiskFailRate, horizon) {
				plan = append(plan, Event{
					At:       at,
					Kind:     KindDiskFail,
					Index:    d,
					Duration: cfg.DiskRepairTime,
				})
			}
		}
	}
	if cfg.NodeCrashRate > 0 {
		for n := 0; n < nodes; n++ {
			s := src.DeriveIndexed("fault-node-crash", n)
			for _, at := range arrivals(s, cfg.NodeCrashRate, horizon) {
				plan = append(plan, Event{
					At:       at,
					Kind:     KindNodeCrash,
					Index:    n,
					Duration: cfg.NodeRestartTime,
				})
			}
		}
	}
	sort.Slice(plan, func(i, j int) bool {
		a, b := plan[i], plan[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Index < b.Index
	})
	return plan
}

// arrivals draws Poisson event times in [0, horizon) at `rate` events per
// hour. Interleaving the duration draw with the arrival draw is fine: the
// stream is private to one (component, fault class) pair.
func arrivals(s *rng.Source, rate float64, horizon sim.Time) []sim.Time {
	meanGap := 3600.0 / rate // seconds between events
	var out []sim.Time
	t := sim.Time(0)
	for {
		t = t.Add(sim.DurationOfSeconds(s.Exp(meanGap)))
		if t >= horizon {
			return out
		}
		out = append(out, t)
	}
}

// NetModel injects message loss and latency jitter; it implements the
// network package's Hook interface. Draws happen in Send order from a
// private derived stream, so seeded runs are reproducible.
type NetModel struct {
	lossProb float64
	jitter   sim.Duration
	src      *rng.Source
}

// NewNetModel returns a hook for the config's network faults, or nil when
// the config injects none (callers install nil as "no hook").
func NewNetModel(cfg Config, src *rng.Source) *NetModel {
	if cfg.NetLossProb <= 0 && cfg.NetJitterMax <= 0 {
		return nil
	}
	return &NetModel{
		lossProb: cfg.NetLossProb,
		jitter:   cfg.NetJitterMax,
		src:      src.Derive("fault-net"),
	}
}

// Mangle implements network.Hook.
func (m *NetModel) Mangle(int64) (drop bool, extra sim.Duration) {
	if m.lossProb > 0 && m.src.Float64() < m.lossProb {
		return true, 0
	}
	if m.jitter > 0 {
		extra = sim.Duration(m.src.Float64() * float64(m.jitter))
	}
	return false, extra
}
