package bufferpool

// Policy is a page replacement algorithm: it orders resident pages and
// nominates eviction victims. The pool calls it with interleaving-safe
// single-threaded simulation semantics.
type Policy interface {
	// Name identifies the algorithm in reports.
	Name() string
	// OnInsert places a newly allocated page, which entered the pool via
	// a prefetch (prefetched=true) or a demand miss.
	OnInsert(pg *Page, prefetched bool)
	// OnReference records a demand reference to a resident page.
	OnReference(pg *Page)
	// Victim nominates the page to evict, or nil if none is evictable.
	// The page is not removed; the pool calls OnEvict when it commits.
	Victim() *Page
	// OnEvict removes the page from the policy's structures.
	OnEvict(pg *Page)
}

// GlobalLRU is the basic SPIFFI policy (§5.2.1): a single LRU chain that
// does not distinguish prefetched from referenced pages. The victim is
// the first available page from the LRU end.
type GlobalLRU struct {
	lru chain
}

// NewGlobalLRU returns an empty global LRU policy.
func NewGlobalLRU() *GlobalLRU { return &GlobalLRU{} }

// Name implements Policy.
func (g *GlobalLRU) Name() string { return "global-lru" }

// OnInsert implements Policy.
func (g *GlobalLRU) OnInsert(pg *Page, prefetched bool) {
	pg.prefetched = prefetched
	g.lru.pushTail(pg)
}

// OnReference implements Policy.
func (g *GlobalLRU) OnReference(pg *Page) {
	pg.prefetched = false
	g.lru.remove(pg)
	g.lru.pushTail(pg)
}

// Victim implements Policy.
func (g *GlobalLRU) Victim() *Page { return g.lru.firstEvictable() }

// OnEvict implements Policy.
func (g *GlobalLRU) OnEvict(pg *Page) { g.lru.remove(pg) }

// LovePrefetch is the paper's two-chain policy (§5.2.1, Figure 4):
// prefetched pages live on their own LRU chain and move to the
// referenced-pages chain on first reference. Victims come from the
// referenced chain first — video data is consumed once and almost never
// re-referenced, so protecting unconsumed prefetched pages (and
// sacrificing already-consumed referenced pages) minimizes wasted
// prefetch I/O and memory.
type LovePrefetch struct {
	prefetched chain
	referenced chain
}

// NewLovePrefetch returns an empty love-prefetch policy.
func NewLovePrefetch() *LovePrefetch { return &LovePrefetch{} }

// Name implements Policy.
func (l *LovePrefetch) Name() string { return "love-prefetch" }

// OnInsert implements Policy.
func (l *LovePrefetch) OnInsert(pg *Page, prefetched bool) {
	pg.prefetched = prefetched
	if prefetched {
		l.prefetched.pushTail(pg)
	} else {
		l.referenced.pushTail(pg)
	}
}

// OnReference implements Policy.
func (l *LovePrefetch) OnReference(pg *Page) {
	pg.chain.remove(pg)
	pg.prefetched = false
	l.referenced.pushTail(pg)
}

// Victim implements Policy.
func (l *LovePrefetch) Victim() *Page {
	if pg := l.referenced.firstEvictable(); pg != nil {
		return pg
	}
	return l.prefetched.firstEvictable()
}

// OnEvict implements Policy.
func (l *LovePrefetch) OnEvict(pg *Page) { pg.chain.remove(pg) }

// PrefetchedLen and ReferencedLen expose chain sizes for tests and
// instrumentation.
func (l *LovePrefetch) PrefetchedLen() int { return l.prefetched.Len() }

// ReferencedLen returns the referenced-chain length.
func (l *LovePrefetch) ReferencedLen() int { return l.referenced.Len() }

// PolicyKind selects a replacement policy in configurations.
type PolicyKind string

// The two policies the paper compares.
const (
	PolicyGlobalLRU    PolicyKind = "global-lru"
	PolicyLovePrefetch PolicyKind = "love-prefetch"
)

// New builds a policy instance.
func (k PolicyKind) New() Policy {
	switch k {
	case PolicyGlobalLRU:
		return NewGlobalLRU()
	case PolicyLovePrefetch:
		return NewLovePrefetch()
	default:
		panic("bufferpool: unknown policy kind " + string(k))
	}
}
