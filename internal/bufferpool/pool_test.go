package bufferpool

import (
	"testing"
	"testing/quick"

	"spiffi/internal/sim"
)

// runInProc executes fn inside a simulation process and drives the kernel
// to completion.
func runInProc(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	k := sim.NewKernel()
	defer k.Close()
	k.Spawn("test", fn)
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestAcquireMissFetchHit(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	b := New(k, 4, NewGlobalLRU())
	k.Spawn("t", func(p *sim.Proc) {
		id := PageID{Video: 1, Block: 7}
		pg, out := b.Acquire(p, id, 0, false)
		if out != MustFetch {
			t.Errorf("first acquire = %v, want MustFetch", out)
		}
		if pg.Valid() {
			t.Error("page valid before fetch")
		}
		b.FetchComplete(pg)
		b.Unpin(pg)

		pg2, out2 := b.Acquire(p, id, 0, false)
		if out2 != Hit {
			t.Errorf("second acquire = %v, want Hit", out2)
		}
		if pg2 != pg {
			t.Error("hit returned a different page")
		}
		b.Unpin(pg2)
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	s := b.Stats()
	if s.Misses != 1 || s.DemandHits != 1 || s.DemandRefs != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInFlightSecondRequesterWaits(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	b := New(k, 4, NewGlobalLRU())
	id := PageID{Video: 0, Block: 0}
	var order []string
	k.Spawn("fetcher", func(p *sim.Proc) {
		pg, out := b.Acquire(p, id, 0, false)
		if out != MustFetch {
			t.Errorf("out = %v", out)
		}
		p.Sleep(100) // simulated disk read
		b.FetchComplete(pg)
		order = append(order, "fetched")
		b.Unpin(pg)
	})
	k.SpawnAt(10, "waiter", func(p *sim.Proc) {
		pg, out := b.Acquire(p, id, 1, false)
		if out != InFlight {
			t.Errorf("out = %v, want InFlight", out)
		}
		pg.Ready.Wait(p)
		if !pg.Valid() {
			t.Error("page not valid after Ready")
		}
		order = append(order, "consumed")
		b.Unpin(pg)
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "fetched" || order[1] != "consumed" {
		t.Fatalf("order = %v", order)
	}
	if s := b.Stats(); s.InFlightHits != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// fill inserts n valid unpinned pages for video 9.
func fill(p *sim.Proc, b *Pool, n int) []*Page {
	pages := make([]*Page, n)
	for i := 0; i < n; i++ {
		pg, out := b.Acquire(p, PageID{Video: 9, Block: i}, 0, false)
		if out != MustFetch {
			panic("fill expected MustFetch")
		}
		b.FetchComplete(pg)
		b.Unpin(pg)
		pages[i] = pg
	}
	return pages
}

func TestGlobalLRUEvictsOldest(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	b := New(k, 3, NewGlobalLRU())
	k.Spawn("t", func(p *sim.Proc) {
		fill(p, b, 3)
		// Touch block 0 so block 1 is now LRU.
		pg, _ := b.Acquire(p, PageID{Video: 9, Block: 0}, 0, false)
		b.Unpin(pg)
		// Insert a new page: block 1 must be evicted.
		npg, out := b.Acquire(p, PageID{Video: 9, Block: 99}, 0, false)
		if out != MustFetch {
			t.Errorf("out = %v", out)
		}
		b.FetchComplete(npg)
		b.Unpin(npg)
		if b.Contains(PageID{Video: 9, Block: 1}) {
			t.Error("LRU page (block 1) survived eviction")
		}
		if !b.Contains(PageID{Video: 9, Block: 0}) {
			t.Error("recently used page (block 0) was evicted")
		}
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestPinnedPagesNotEvicted(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	b := New(k, 2, NewGlobalLRU())
	k.Spawn("t", func(p *sim.Proc) {
		// Pin one page, leave the other unpinned.
		pinned, _ := b.Acquire(p, PageID{Block: 1}, 0, false)
		b.FetchComplete(pinned)
		loose, _ := b.Acquire(p, PageID{Block: 2}, 0, false)
		b.FetchComplete(loose)
		b.Unpin(loose)
		// Next allocation must evict the unpinned page, not the pinned.
		pg, _ := b.Acquire(p, PageID{Block: 3}, 0, false)
		b.FetchComplete(pg)
		b.Unpin(pg)
		if !b.Contains(PageID{Block: 1}) {
			t.Error("pinned page evicted")
		}
		if b.Contains(PageID{Block: 2}) {
			t.Error("unpinned page survived")
		}
		b.Unpin(pinned)
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestLovePrefetchProtectsPrefetchedPages(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	love := NewLovePrefetch()
	b := New(k, 4, love)
	k.Spawn("t", func(p *sim.Proc) {
		// Two prefetched pages (older) and two referenced pages (newer).
		for i := 0; i < 2; i++ {
			pg, _ := b.Acquire(p, PageID{Video: 1, Block: i}, -1, true)
			b.FetchComplete(pg)
			b.Unpin(pg)
		}
		for i := 0; i < 2; i++ {
			pg, _ := b.Acquire(p, PageID{Video: 2, Block: i}, 0, false)
			b.FetchComplete(pg)
			b.Unpin(pg)
		}
		if love.PrefetchedLen() != 2 || love.ReferencedLen() != 2 {
			t.Errorf("chains = %d/%d, want 2/2", love.PrefetchedLen(), love.ReferencedLen())
		}
		// New allocation: a referenced page must be sacrificed even though
		// prefetched pages are older (global LRU would take those).
		pg, _ := b.Acquire(p, PageID{Video: 3, Block: 0}, 0, false)
		b.FetchComplete(pg)
		b.Unpin(pg)
		if !b.Contains(PageID{Video: 1, Block: 0}) || !b.Contains(PageID{Video: 1, Block: 1}) {
			t.Error("prefetched page evicted while referenced pages were available")
		}
		if b.Contains(PageID{Video: 2, Block: 0}) {
			t.Error("oldest referenced page should have been the victim")
		}
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestLovePrefetchReferenceMovesChains(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	love := NewLovePrefetch()
	b := New(k, 4, love)
	k.Spawn("t", func(p *sim.Proc) {
		pg, _ := b.Acquire(p, PageID{Block: 5}, -1, true) // prefetch in
		b.FetchComplete(pg)
		b.Unpin(pg)
		if !pg.Prefetched() {
			t.Error("page should start on prefetched chain")
		}
		pg2, out := b.Acquire(p, PageID{Block: 5}, 3, false) // demand ref
		if out != Hit || pg2 != pg {
			t.Errorf("out=%v", out)
		}
		b.Unpin(pg2)
		if pg.Prefetched() {
			t.Error("referenced page must move to referenced chain")
		}
		if love.PrefetchedLen() != 0 || love.ReferencedLen() != 1 {
			t.Errorf("chains = %d/%d", love.PrefetchedLen(), love.ReferencedLen())
		}
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestLovePrefetchFallsBackToPrefetchedChain(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	b := New(k, 2, NewLovePrefetch())
	k.Spawn("t", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			pg, _ := b.Acquire(p, PageID{Block: i}, -1, true)
			b.FetchComplete(pg)
			b.Unpin(pg)
		}
		// No referenced pages exist; must evict from prefetched chain.
		pg, out := b.Acquire(p, PageID{Block: 9}, 0, false)
		if out != MustFetch {
			t.Errorf("out = %v", out)
		}
		b.FetchComplete(pg)
		b.Unpin(pg)
		if b.Contains(PageID{Block: 0}) {
			t.Error("oldest prefetched page should be the fallback victim")
		}
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestAcquireBlocksUntilUnpin(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	b := New(k, 1, NewGlobalLRU())
	var got sim.Time = -1
	var hold *Page
	k.Spawn("holder", func(p *sim.Proc) {
		pg, _ := b.Acquire(p, PageID{Block: 1}, 0, false)
		b.FetchComplete(pg)
		hold = pg
		// Keep the only frame pinned until t=500.
		p.Sleep(500)
		b.Unpin(hold)
	})
	k.SpawnAt(10, "blocked", func(p *sim.Proc) {
		pg, out := b.Acquire(p, PageID{Block: 2}, 1, false)
		got = p.Now()
		if out != MustFetch {
			t.Errorf("out = %v", out)
		}
		b.FetchComplete(pg)
		b.Unpin(pg)
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got != 500 {
		t.Fatalf("blocked acquire completed at %v, want 500", got)
	}
	if b.Stats().AllocWaits != 1 {
		t.Fatalf("AllocWaits = %d", b.Stats().AllocWaits)
	}
}

func TestSharingStatsFigure16(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	b := New(k, 8, NewGlobalLRU())
	k.Spawn("t", func(p *sim.Proc) {
		id := PageID{Video: 4, Block: 2}
		pg, _ := b.Acquire(p, id, 0, false) // terminal 0 references
		b.FetchComplete(pg)
		b.Unpin(pg)
		pg, _ = b.Acquire(p, id, 0, false) // same terminal again: not shared
		b.Unpin(pg)
		pg, _ = b.Acquire(p, id, 1, false) // another terminal: shared
		b.Unpin(pg)
		pg, _ = b.Acquire(p, id, 2, false) // a third: shared
		b.Unpin(pg)
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	s := b.Stats()
	if s.SharedRefs != 2 {
		t.Fatalf("SharedRefs = %d, want 2", s.SharedRefs)
	}
	if s.DemandRefs != 4 {
		t.Fatalf("DemandRefs = %d", s.DemandRefs)
	}
	if got := s.SharedFraction(); got != 0.5 {
		t.Fatalf("SharedFraction = %v", got)
	}
}

func TestPrefetchSkipsResidentPage(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	b := New(k, 4, NewLovePrefetch())
	k.Spawn("t", func(p *sim.Proc) {
		id := PageID{Block: 3}
		pg, _ := b.Acquire(p, id, 0, false)
		b.FetchComplete(pg)
		b.Unpin(pg)
		_, out := b.Acquire(p, id, -1, true)
		if out != Hit {
			t.Errorf("prefetch of resident page = %v, want Hit", out)
		}
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if b.Stats().PrefetchSkip != 1 {
		t.Fatalf("PrefetchSkip = %d", b.Stats().PrefetchSkip)
	}
	// Prefetch probes must not count as demand references.
	if b.Stats().DemandRefs != 1 {
		t.Fatalf("DemandRefs = %d, want 1", b.Stats().DemandRefs)
	}
}

// Property: frames are conserved — resident pages + free frames always
// equals capacity, across random workloads.
func TestFrameConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		k := sim.NewKernel()
		defer k.Close()
		b := New(k, 4, NewLovePrefetch())
		ok := true
		k.Spawn("t", func(p *sim.Proc) {
			var pinned []*Page
			for _, op := range ops {
				id := PageID{Block: int(op % 16)}
				if op%3 == 0 && len(pinned) > 0 {
					b.Unpin(pinned[0])
					pinned = pinned[1:]
					continue
				}
				if len(pinned) >= 3 {
					// Never pin all frames: Acquire would deadlock this
					// single-process property test.
					b.Unpin(pinned[0])
					pinned = pinned[1:]
				}
				pg, out := b.Acquire(p, id, int(op%5), op%7 == 0)
				if out == MustFetch {
					b.FetchComplete(pg)
				}
				pinned = append(pinned, pg)
				if b.Resident()+b.free != b.Capacity() {
					ok = false
					return
				}
			}
			for _, pg := range pinned {
				b.Unpin(pg)
			}
		})
		if err := k.RunAll(); err != nil {
			return false
		}
		return ok && b.Resident()+b.free == b.Capacity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyKindFactory(t *testing.T) {
	if PolicyGlobalLRU.New().Name() != "global-lru" {
		t.Fatal("global lru factory")
	}
	if PolicyLovePrefetch.New().Name() != "love-prefetch" {
		t.Fatal("love prefetch factory")
	}
}
