package bufferpool

import (
	"fmt"

	"spiffi/internal/sim"
	"spiffi/internal/trace"
)

// Outcome reports how an Acquire was satisfied.
type Outcome int

// Acquire outcomes.
const (
	// Hit: the page is resident and valid.
	Hit Outcome = iota
	// InFlight: the page is resident but its fetch is still outstanding;
	// wait on Page.Ready before using the data.
	InFlight
	// MustFetch: a frame was allocated and the caller owns the fetch; it
	// must issue the disk read and call FetchComplete.
	MustFetch
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case InFlight:
		return "in-flight"
	default:
		return "must-fetch"
	}
}

// Stats aggregates buffer pool counters over the measurement window.
type Stats struct {
	DemandRefs   int64 // demand (terminal) buffer references
	DemandHits   int64 // satisfied without a new disk read (valid page)
	InFlightHits int64 // satisfied by an already-outstanding fetch
	Misses       int64 // demand references that had to fetch
	SharedRefs   int64 // demand refs to a page previously referenced by another terminal (Fig 16)
	PrefetchSkip int64 // prefetches dropped because the page was resident
	Evictions    int64
	AllocWaits   int64 // times an acquire blocked waiting for a frame
	FetchFails   int64 // fetches aborted because the disk fail-stopped
}

// SharedFraction returns SharedRefs/DemandRefs (Figure 16's metric).
func (s Stats) SharedFraction() float64 {
	if s.DemandRefs == 0 {
		return 0
	}
	return float64(s.SharedRefs) / float64(s.DemandRefs)
}

// HitFraction returns the demand hit rate including in-flight hits.
func (s Stats) HitFraction() float64 {
	if s.DemandRefs == 0 {
		return 0
	}
	return float64(s.DemandHits+s.InFlightHits) / float64(s.DemandRefs)
}

// Pool is one node's buffer pool.
type Pool struct {
	k        *sim.Kernel
	capacity int
	free     int
	table    map[PageID]*Page
	policy   Policy
	waiters  []*sim.Proc
	stats    Stats

	rec  *trace.Recorder // nil unless tracing is enabled
	node int             // owning node id, stamped into trace events
}

// New creates a pool of `capacity` stripe-block frames.
func New(k *sim.Kernel, capacity int, policy Policy) *Pool {
	if capacity < 1 {
		panic(fmt.Sprintf("bufferpool: capacity %d", capacity))
	}
	return &Pool{
		k:        k,
		capacity: capacity,
		free:     capacity,
		table:    make(map[PageID]*Page, capacity),
		policy:   policy,
	}
}

// SetTrace attaches a trace recorder (nil is fine: emits become
// no-ops) and records the owning node's id for event attribution.
func (b *Pool) SetTrace(rec *trace.Recorder, node int) {
	b.rec = rec
	b.node = node
}

// Capacity returns the frame count.
func (b *Pool) Capacity() int { return b.capacity }

// Resident returns the number of pages in the table.
func (b *Pool) Resident() int { return len(b.table) }

// Policy returns the replacement policy.
func (b *Pool) Policy() Policy { return b.policy }

// Contains reports whether the block is resident (valid or in flight).
// Delayed prefetching uses it to skip redundant prefetches cheaply.
func (b *Pool) Contains(id PageID) bool {
	_, ok := b.table[id]
	return ok
}

// Acquire is the single entry point for both demand requests
// (prefetch=false, terminal = requesting terminal) and prefetches
// (prefetch=true). The returned page is pinned; the caller must Unpin it
// when done (for MustFetch, typically after FetchComplete and any reply).
//
// Acquire blocks while every frame is pinned or in flight, which is
// exactly the paper's low-memory stall regime.
func (b *Pool) Acquire(p *sim.Proc, id PageID, terminal int, prefetch bool) (*Page, Outcome) {
	for {
		if pg, ok := b.table[id]; ok {
			return b.acquireResident(pg, terminal, prefetch)
		}
		if b.free > 0 {
			b.free--
			return b.insertNew(id, terminal, prefetch), MustFetch
		}
		if v := b.policy.Victim(); v != nil {
			b.evict(v)
			continue
		}
		b.stats.AllocWaits++
		b.waiters = append(b.waiters, p)
		p.Block()
		// Re-check everything: the world changed while we slept.
	}
}

func (b *Pool) acquireResident(pg *Page, terminal int, prefetch bool) (*Page, Outcome) {
	if prefetch {
		// The prefetcher found the block already resident: nothing to do.
		b.stats.PrefetchSkip++
		pg.pin++
		if pg.state == stateValid {
			return pg, Hit
		}
		return pg, InFlight
	}
	b.stats.DemandRefs++
	if pg.referencedByOther(terminal) {
		b.stats.SharedRefs++
	}
	if pg.prefetched {
		// The demand reference a prefetched page was held for has
		// arrived — under love-prefetch, the protected chain paid off.
		b.rec.PoolProtect(b.node, terminal, pg.ID.Video, pg.ID.Block)
	}
	pg.noteReference(terminal)
	b.policy.OnReference(pg)
	pg.pin++
	if pg.state == stateValid {
		b.stats.DemandHits++
		b.rec.PoolHit(b.node, terminal, pg.ID.Video, pg.ID.Block, false)
		return pg, Hit
	}
	b.stats.InFlightHits++
	b.rec.PoolHit(b.node, terminal, pg.ID.Video, pg.ID.Block, true)
	return pg, InFlight
}

func (b *Pool) insertNew(id PageID, terminal int, prefetch bool) *Page {
	pg := &Page{
		ID:    id,
		state: stateFetching,
		pin:   1,
		Ready: sim.NewEvent(b.k),
	}
	if prefetch {
		b.rec.PoolPrefetch(b.node, terminal, id.Video, id.Block)
	} else {
		b.stats.DemandRefs++
		b.stats.Misses++
		pg.noteReference(terminal)
		b.rec.PoolMiss(b.node, terminal, id.Video, id.Block)
	}
	b.table[id] = pg
	b.policy.OnInsert(pg, prefetch)
	return pg
}

func (b *Pool) evict(pg *Page) {
	if !pg.evictable() {
		panic("bufferpool: evicting unevictable page")
	}
	b.rec.PoolEvict(b.node, pg.ID.Video, pg.ID.Block, pg.prefetched)
	b.policy.OnEvict(pg)
	delete(b.table, pg.ID)
	b.free++
	b.stats.Evictions++
}

// FetchComplete marks the page's data as arrived and wakes processes
// waiting on Page.Ready. The caller still holds its pin.
func (b *Pool) FetchComplete(pg *Page) {
	if pg.state != stateFetching || pg.defunct {
		panic("bufferpool: FetchComplete on non-fetching page")
	}
	pg.state = stateValid
	pg.Ready.Fire()
}

// FetchFailed aborts an outstanding fetch whose disk read died (the drive
// fail-stopped). The page is removed from the table and the policy so a
// later acquire of the same block allocates a fresh frame; its frame
// returns to the free list; Ready fires so in-flight waiters wake — they
// must check Page.Valid() and treat false as a failed read. The caller and
// any waiters still Unpin as usual (no-ops on the defunct page).
func (b *Pool) FetchFailed(pg *Page) {
	if pg.state != stateFetching || pg.defunct {
		panic("bufferpool: FetchFailed on non-fetching page")
	}
	pg.defunct = true
	b.policy.OnEvict(pg)
	delete(b.table, pg.ID)
	b.free++
	b.stats.FetchFails++
	b.wakeWaiter()
	pg.Ready.Fire()
}

// Unpin releases one pin. When a page becomes evictable, one frame
// waiter is woken to retry its allocation.
func (b *Pool) Unpin(pg *Page) {
	if pg.defunct {
		return // frame already reclaimed by FetchFailed
	}
	if pg.pin <= 0 {
		panic("bufferpool: unpin of unpinned page")
	}
	pg.pin--
	if pg.evictable() {
		b.wakeWaiter()
	}
}

// wakeWaiter unblocks the oldest process waiting for a frame, if any.
func (b *Pool) wakeWaiter() {
	if len(b.waiters) == 0 {
		return
	}
	w := b.waiters[0]
	copy(b.waiters, b.waiters[1:])
	b.waiters = b.waiters[:len(b.waiters)-1]
	b.k.Wake(w)
}

// Stats returns a copy of the window counters.
func (b *Pool) Stats() Stats { return b.stats }

// ResetStats zeroes the window counters (to discard warm-up).
func (b *Pool) ResetStats() { b.stats = Stats{} }
