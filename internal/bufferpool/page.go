// Package bufferpool implements the SPIFFI video-server buffer pool
// (§5.2.1): a fixed set of stripe-block frames, a page table keyed by
// (video, block), and pluggable page replacement — the basic global LRU
// algorithm and the paper's "love prefetch" two-chain algorithm that
// favors prefetched-but-unreferenced pages over already-referenced ones.
// Processes that need a frame when none is evictable block until one is
// unpinned (the paper's "server began to run out of free pages" regime).
package bufferpool

import (
	"spiffi/internal/sim"
)

// PageID identifies a stripe block.
type PageID struct {
	Video int
	Block int
}

// pageState tracks a page's fetch lifecycle.
type pageState uint8

const (
	stateFetching pageState = iota // frame owned, disk read outstanding
	stateValid                     // data present
)

// Page is one resident stripe block.
type Page struct {
	ID PageID

	state pageState
	pin   int

	// Ready fires when the outstanding fetch completes; waiters of an
	// in-flight page block on it.
	Ready *sim.Event

	// prefetched reports the page currently sits on the prefetched-pages
	// chain (it was brought in by a prefetch and has not yet been
	// referenced by any terminal).
	prefetched bool

	// defunct marks a page whose fetch failed (disk fail-stop): it has
	// been removed from the table and the policy, its frame returned to
	// the free list. Waiters woken by Ready must check Valid() — false
	// means the read died. Remaining Unpins on a defunct page are no-ops.
	defunct bool

	// refBy lists terminals that have demand-referenced this page while
	// resident, for the paper's Figure 16 sharing statistic. Videos are
	// shared by at most a handful of terminals at once, so a small slice
	// beats a map.
	refBy []int32

	// Intrusive chain links managed by the replacement policy.
	prev, next *Page
	chain      *chain
}

// Valid reports whether the page's data has arrived.
func (pg *Page) Valid() bool { return pg.state == stateValid }

// Pinned reports whether the page is pinned.
func (pg *Page) Pinned() bool { return pg.pin > 0 }

// Prefetched reports whether the page sits on the prefetched chain.
func (pg *Page) Prefetched() bool { return pg.prefetched }

// referencedByOther reports whether any terminal other than t has
// demand-referenced the page while resident.
func (pg *Page) referencedByOther(t int) bool {
	for _, r := range pg.refBy {
		if int(r) != t {
			return true
		}
	}
	return false
}

// noteReference records a demand reference by terminal t.
func (pg *Page) noteReference(t int) {
	for _, r := range pg.refBy {
		if int(r) == t {
			return
		}
	}
	pg.refBy = append(pg.refBy, int32(t))
}

// evictable reports whether the replacement policy may take this frame.
func (pg *Page) evictable() bool { return pg.pin == 0 && pg.state == stateValid }

// chain is an intrusive doubly-linked LRU list of pages: head is the
// least recently used end, tail the most recently used.
type chain struct {
	head, tail *Page
	size       int
}

func (c *chain) pushTail(pg *Page) {
	pg.chain = c
	pg.prev = c.tail
	pg.next = nil
	if c.tail != nil {
		c.tail.next = pg
	} else {
		c.head = pg
	}
	c.tail = pg
	c.size++
}

func (c *chain) remove(pg *Page) {
	if pg.chain != c {
		panic("bufferpool: removing page from wrong chain")
	}
	if pg.prev != nil {
		pg.prev.next = pg.next
	} else {
		c.head = pg.next
	}
	if pg.next != nil {
		pg.next.prev = pg.prev
	} else {
		c.tail = pg.prev
	}
	pg.prev, pg.next, pg.chain = nil, nil, nil
	c.size--
}

// firstEvictable scans from the LRU end for an evictable page.
func (c *chain) firstEvictable() *Page {
	for pg := c.head; pg != nil; pg = pg.next {
		if pg.evictable() {
			return pg
		}
	}
	return nil
}

// Len returns the number of pages on the chain.
func (c *chain) Len() int { return c.size }
