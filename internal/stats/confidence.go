package stats

import "math"

// Student-t two-sided critical values t_{alpha/2, df} for 90% and 95%
// confidence, df = 1..30; beyond 30 the normal approximation is used.
var t90 = [...]float64{
	6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
	1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
	1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
}

var t95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical returns the two-sided Student-t critical value for the given
// confidence level (0.90 or 0.95) and degrees of freedom. Other levels
// fall back to the 90% table; df > 30 uses the normal quantile.
func TCritical(level float64, df int) float64 {
	if df < 1 {
		return math.Inf(1)
	}
	table := t90[:]
	norm := 1.645
	if level >= 0.95 {
		table = t95[:]
		norm = 1.960
	}
	if df <= len(table) {
		return table[df-1]
	}
	return norm
}

// Interval is a symmetric confidence interval around a sample mean.
type Interval struct {
	Mean      float64
	HalfWidth float64
	N         int
	Level     float64
}

// ConfidenceInterval computes the Student-t interval for the samples at
// the given confidence level.
func ConfidenceInterval(samples []float64, level float64) Interval {
	var t Tally
	for _, s := range samples {
		t.Add(s)
	}
	iv := Interval{Mean: t.Mean(), N: int(t.N()), Level: level}
	if t.N() < 2 {
		iv.HalfWidth = math.Inf(1)
		return iv
	}
	iv.HalfWidth = TCritical(level, int(t.N())-1) * t.StdDev() / math.Sqrt(float64(t.N()))
	return iv
}

// WithinRelative reports whether the interval's half-width is at most
// frac of its mean — the paper's §7.1 stopping rule is
// WithinRelative(0.05) at level 0.90. A zero mean only qualifies when the
// half-width is exactly zero.
func (iv Interval) WithinRelative(frac float64) bool {
	if iv.Mean == 0 {
		return iv.HalfWidth == 0
	}
	return iv.HalfWidth <= frac*math.Abs(iv.Mean)
}
