package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a log-scaled latency histogram: bucket i covers
// [base*2^i, base*2^(i+1)). It summarizes response-time distributions —
// means hide exactly the tail that causes glitches, so the simulator
// reports percentiles too.
type Histogram struct {
	base    float64 // lower bound of bucket 0
	buckets []int64
	under   int64 // samples below base
	count   int64
	sum     float64
	max     float64
}

// NewHistogram creates a histogram with the given bucket-0 lower bound
// and bucket count; samples beyond the last bucket clamp into it.
func NewHistogram(base float64, buckets int) *Histogram {
	if base <= 0 || buckets < 1 {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{base: base, buckets: make([]int64, buckets)}
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if v < h.base {
		h.under++
		return
	}
	// Log2 of the quotient is only a first guess at the bucket index:
	// both the division and math.Log2 round, so a sample near (or
	// exactly on) a bucket edge can land one bucket off. The boundary
	// comparisons below make bucketing exact — math.Ldexp scales by a
	// power of two without rounding — so edge values deterministically
	// satisfy lower(i) <= v < lower(i+1).
	i := int(math.Log2(v / h.base))
	if i >= 0 && v < math.Ldexp(h.base, i) {
		i-- // Log2 rounded up across the lower edge
	} else if v >= math.Ldexp(h.base, i+1) {
		i++ // Log2 rounded down across the upper edge
	}
	if i < 0 {
		// Only reachable through rounding in v/h.base when v is within
		// one ulp of base; v >= base held above, so bucket 0 is correct.
		i = 0
	}
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max returns the largest sample.
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) using
// bucket upper edges; exact to within one power of two.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.count)))
	seen := h.under
	if seen >= target {
		return h.base
	}
	for i, c := range h.buckets {
		seen += c
		if seen >= target {
			return math.Ldexp(h.base, i+1)
		}
	}
	return h.max
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.under, h.count, h.sum, h.max = 0, 0, 0, 0
}

// String renders non-empty buckets with counts, for reports.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.4g max=%.4g", h.count, h.Mean(), h.max)
	if h.under > 0 {
		fmt.Fprintf(&b, " | <%.3g: %d", h.base, h.under)
	}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		lo := math.Ldexp(h.base, i)
		fmt.Fprintf(&b, " | %.3g-%.3g: %d", lo, lo*2, c)
	}
	return b.String()
}
