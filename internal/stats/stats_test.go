package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTallyBasics(t *testing.T) {
	var ty Tally
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		ty.Add(v)
	}
	if ty.N() != 8 {
		t.Fatalf("n = %d", ty.N())
	}
	if ty.Mean() != 5 {
		t.Fatalf("mean = %v, want 5", ty.Mean())
	}
	if ty.Min() != 2 || ty.Max() != 9 {
		t.Fatalf("min/max = %v/%v", ty.Min(), ty.Max())
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if got, want := ty.Variance(), 32.0/7.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("variance = %v, want %v", got, want)
	}
}

func TestTallyEmptyAndReset(t *testing.T) {
	var ty Tally
	if ty.Mean() != 0 || ty.Variance() != 0 {
		t.Fatal("empty tally should report zeros")
	}
	ty.Add(5)
	ty.Reset()
	if ty.N() != 0 || ty.Sum() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestTallyVarianceNonNegativeProperty(t *testing.T) {
	f := func(vals []float64) bool {
		var ty Tally
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Clamp to a physically plausible range; the quick generator
			// produces values near ±MaxFloat64 whose squares overflow.
			ty.Add(math.Mod(v, 1e9))
		}
		return ty.Variance() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeWeightedMean(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 10) // 10 over [0,4)
	w.Set(4, 20) // 20 over [4,10)
	got := w.Mean(10)
	want := (10*4 + 20*6) / 10.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	if w.Max() != 20 {
		t.Fatalf("max = %v", w.Max())
	}
}

func TestTimeWeightedReset(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 100)
	w.Reset(50)
	w.Set(60, 0)
	// Over [50,100]: value 100 for 10s, 0 for 40s.
	got := w.Mean(100)
	if math.Abs(got-20) > 1e-9 {
		t.Fatalf("mean after reset = %v, want 20", got)
	}
}

func TestPeakRateMeter(t *testing.T) {
	m := NewPeakRateMeter(1.0)
	m.Record(0.1, 100)
	m.Record(0.5, 200) // window 0: 300 bytes
	m.Record(1.2, 50)  // window 1: 50
	m.Record(2.9, 500) // window 2: 500
	if got := m.PeakRate(); got != 500 {
		t.Fatalf("peak = %v, want 500", got)
	}
	if m.Total() != 850 {
		t.Fatalf("total = %v", m.Total())
	}
	if got := m.MeanRate(0, 10); math.Abs(got-85) > 1e-9 {
		t.Fatalf("mean rate = %v, want 85", got)
	}
}

func TestPeakRateMeterCurrentWindowCounts(t *testing.T) {
	m := NewPeakRateMeter(2.0)
	m.Record(0.5, 900)
	// Peak must include the still-open window.
	if got := m.PeakRate(); got != 450 {
		t.Fatalf("peak = %v, want 450", got)
	}
}

func TestConfidenceIntervalKnownValues(t *testing.T) {
	// 5 samples, mean 10, sample variance 1.25 ->
	// half width = 2.132 * sqrt(1.25/5) = 1.066
	samples := []float64{8.58578643, 9.29289321, 10, 10.70710678, 11.41421356}
	iv := ConfidenceInterval(samples, 0.90)
	if math.Abs(iv.Mean-10) > 1e-6 {
		t.Fatalf("mean = %v", iv.Mean)
	}
	if math.Abs(iv.HalfWidth-1.066) > 1e-3 {
		t.Fatalf("half width = %v", iv.HalfWidth)
	}
	if !iv.WithinRelative(0.11) {
		t.Fatal("should be within 11%")
	}
	if iv.WithinRelative(0.05) {
		t.Fatal("should not be within 5%")
	}
}

func TestConfidenceIntervalFewSamples(t *testing.T) {
	iv := ConfidenceInterval([]float64{5}, 0.90)
	if !math.IsInf(iv.HalfWidth, 1) {
		t.Fatal("single sample should have infinite half-width")
	}
	if iv.WithinRelative(0.05) {
		t.Fatal("single sample can never satisfy the stopping rule")
	}
}

func TestConfidenceZeroVariance(t *testing.T) {
	iv := ConfidenceInterval([]float64{200, 200, 200}, 0.90)
	if iv.HalfWidth != 0 {
		t.Fatalf("half width = %v, want 0", iv.HalfWidth)
	}
	if !iv.WithinRelative(0.05) {
		t.Fatal("identical samples satisfy any relative bound")
	}
}

func TestTCriticalTableShape(t *testing.T) {
	if TCritical(0.90, 1) != 6.314 {
		t.Fatal("df=1 90%")
	}
	if TCritical(0.95, 10) != 2.228 {
		t.Fatal("df=10 95%")
	}
	if TCritical(0.90, 1000) != 1.645 {
		t.Fatal("large df should use normal quantile")
	}
	for df := 2; df <= 30; df++ {
		if TCritical(0.90, df) >= TCritical(0.90, df-1) {
			t.Fatalf("t table not decreasing at df=%d", df)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1.0, 8) // buckets [1,2) [2,4) [4,8)...
	for _, v := range []float64{0.5, 1.5, 3, 3.9, 5, 300} {
		h.Add(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 300 {
		t.Fatalf("max = %v", h.Max())
	}
	if h.under != 1 {
		t.Fatalf("under = %d", h.under)
	}
	if h.buckets[0] != 1 || h.buckets[1] != 2 || h.buckets[2] != 1 {
		t.Fatalf("buckets = %v", h.buckets)
	}
	// 300 is beyond bucket 7's range [128,256): clamps into last bucket.
	if h.buckets[7] != 1 {
		t.Fatalf("overflow clamp: %v", h.buckets)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1.0, 16)
	for i := 0; i < 90; i++ {
		h.Add(1.5) // bucket [1,2)
	}
	for i := 0; i < 10; i++ {
		h.Add(100) // bucket [64,128)
	}
	if q := h.Quantile(0.5); q != 2 {
		t.Fatalf("p50 = %v, want 2 (upper edge of [1,2))", q)
	}
	if q := h.Quantile(0.99); q != 128 {
		t.Fatalf("p99 = %v, want 128", q)
	}
}

func TestHistogramEmptyAndReset(t *testing.T) {
	h := NewHistogram(1.0, 4)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Add(3)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset failed")
	}
}

func TestHistogramMeanMatchesTally(t *testing.T) {
	h := NewHistogram(0.001, 20)
	var ty Tally
	for i := 1; i <= 1000; i++ {
		v := float64(i) * 0.01
		h.Add(v)
		ty.Add(v)
	}
	if math.Abs(h.Mean()-ty.Mean()) > 1e-9 {
		t.Fatalf("histogram mean %v != tally mean %v", h.Mean(), ty.Mean())
	}
}
