package stats

import (
	"math"
	"testing"
)

// bucketOf reports which bucket a single sample lands in, observed
// through Quantile(1), which returns the exact upper edge
// Ldexp(base, i+1) of the occupied bucket (-1 = under base).
func bucketOf(t *testing.T, base, v float64, buckets int) int {
	t.Helper()
	h := NewHistogram(base, buckets)
	h.Add(v)
	q := h.Quantile(1)
	if q == base {
		return -1
	}
	for i := 0; i < buckets; i++ {
		if q == math.Ldexp(base, i+1) {
			return i
		}
	}
	t.Fatalf("Quantile(1) = %g is not a bucket edge for base %g", q, base)
	return 0
}

// TestHistogramBucketEdges pins down bucketing at the bucket
// boundaries: a value exactly on the edge base*2^i must land in bucket
// i (the bucket whose half-open interval [base*2^i, base*2^(i+1)) it
// starts), one ulp below must land in bucket i-1, one ulp above in
// bucket i. The naive int(Log2(v/base)) index gets several of these
// wrong — e.g. base=0.001, v=1.024 divides to 1023.9999999999999 and
// Log2 then rounds the exact boundary into the bucket below — so the
// test sweeps every edge for a mix of exact and inexact bases.
func TestHistogramBucketEdges(t *testing.T) {
	const buckets = 30
	// 0.001 is the respHist base used by core; 10e-6 and 1e-6 are the
	// trace histogram bases; the rest probe other rounding patterns.
	for _, base := range []float64{0.001, 10e-6, 1e-6, 1.0, 0.375, 3.7, 7e-3} {
		for i := 0; i < buckets-1; i++ { // last bucket clamps; tested separately
			edge := math.Ldexp(base, i)
			if got := bucketOf(t, base, edge, buckets); got != i {
				t.Errorf("base %g: exact edge %g -> bucket %d, want %d", base, edge, got, i)
			}
			below := math.Nextafter(edge, 0)
			wantBelow := i - 1
			if got := bucketOf(t, base, below, buckets); got != wantBelow {
				t.Errorf("base %g: just below edge %g -> bucket %d, want %d", base, below, got, wantBelow)
			}
			above := math.Nextafter(edge, math.Inf(1))
			if got := bucketOf(t, base, above, buckets); got != i {
				t.Errorf("base %g: just above edge %g -> bucket %d, want %d", base, above, got, i)
			}
		}
	}
}

// TestHistogramBucketInvariant checks the defining property directly
// for a dense sweep of awkward values: the chosen bucket i always
// satisfies lower(i) <= v < lower(i+1), except for the documented
// clamps (under base, beyond the last bucket).
func TestHistogramBucketInvariant(t *testing.T) {
	const buckets = 20
	base := 0.001
	last := buckets - 1
	for k := 0; k < buckets; k++ {
		for _, f := range []float64{1, 1.0000000000000002, 1.3, 1.9999999999999998, 2} {
			v := math.Ldexp(base, k) * f
			i := bucketOf(t, base, v, buckets)
			if i == last && v >= math.Ldexp(base, last) {
				continue // clamp bucket holds everything from its lower edge up
			}
			if i < 0 || v < math.Ldexp(base, i) || v >= math.Ldexp(base, i+1) {
				t.Errorf("v=%g landed in bucket %d [%g, %g) — outside",
					v, i, math.Ldexp(base, i), math.Ldexp(base, i+1))
			}
		}
	}
}

// TestHistogramClamps pins the documented clamping behaviour.
func TestHistogramClamps(t *testing.T) {
	if got := bucketOf(t, 1.0, 0.5, 8); got != -1 {
		t.Errorf("below-base sample -> bucket %d, want under", got)
	}
	if got := bucketOf(t, 1.0, 1e9, 8); got != 7 {
		t.Errorf("huge sample -> bucket %d, want clamp into last (7)", got)
	}
}
