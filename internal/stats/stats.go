// Package stats provides the measurement machinery for the SPIFFI
// simulation: sample tallies, time-weighted averages, windowed peak-rate
// meters (for the paper's Figure 18 aggregate network bandwidth), and the
// Student-t confidence intervals behind the paper's §7.1 stopping rule
// ("90% confident that the results were within 5%").
package stats

import "math"

// Tally accumulates independent samples and reports summary statistics.
type Tally struct {
	n          int64
	sum, sumSq float64
	min, max   float64
}

// Add records one sample.
func (t *Tally) Add(v float64) {
	if t.n == 0 || v < t.min {
		t.min = v
	}
	if t.n == 0 || v > t.max {
		t.max = v
	}
	t.n++
	t.sum += v
	t.sumSq += v * v
}

// N returns the sample count.
func (t *Tally) N() int64 { return t.n }

// Sum returns the sample total.
func (t *Tally) Sum() float64 { return t.sum }

// Mean returns the sample mean, or 0 with no samples.
func (t *Tally) Mean() float64 {
	if t.n == 0 {
		return 0
	}
	return t.sum / float64(t.n)
}

// Min returns the smallest sample, or 0 with no samples.
func (t *Tally) Min() float64 { return t.min }

// Max returns the largest sample, or 0 with no samples.
func (t *Tally) Max() float64 { return t.max }

// Variance returns the unbiased sample variance, or 0 with <2 samples.
func (t *Tally) Variance() float64 {
	if t.n < 2 {
		return 0
	}
	n := float64(t.n)
	v := (t.sumSq - t.sum*t.sum/n) / (n - 1)
	if v < 0 {
		return 0 // numerical noise
	}
	return v
}

// StdDev returns the sample standard deviation.
func (t *Tally) StdDev() float64 { return math.Sqrt(t.Variance()) }

// Reset discards all samples.
func (t *Tally) Reset() { *t = Tally{} }

// TimeWeighted tracks a piecewise-constant value over simulated time and
// reports its time integral average (e.g. mean queue length).
type TimeWeighted struct {
	value    float64
	lastT    float64
	start    float64
	integral float64
	max      float64
	started  bool
}

// Set records that the value changed to v at time t (seconds).
func (w *TimeWeighted) Set(t, v float64) {
	if !w.started {
		w.start, w.lastT, w.started = t, t, true
	} else {
		w.integral += w.value * (t - w.lastT)
		w.lastT = t
	}
	w.value = v
	if v > w.max {
		w.max = v
	}
}

// Mean returns the time average over [start, t].
func (w *TimeWeighted) Mean(t float64) float64 {
	if !w.started || t <= w.start {
		return 0
	}
	return (w.integral + w.value*(t-w.lastT)) / (t - w.start)
}

// Max returns the largest value observed.
func (w *TimeWeighted) Max() float64 { return w.max }

// Reset restarts the integral at time t keeping the current value.
func (w *TimeWeighted) Reset(t float64) {
	w.integral = 0
	w.start, w.lastT = t, t
	w.max = w.value
	w.started = true
}

// PeakRateMeter measures the peak transfer rate over fixed-width windows:
// bytes recorded in each window are summed and the largest window total is
// retained. The paper's Figure 18 reports peak aggregate network
// bandwidth this way.
type PeakRateMeter struct {
	window  float64 // seconds
	bucket  int64   // current window index
	current float64 // bytes in current window
	peak    float64 // bytes in the fullest window
	total   float64 // bytes overall
	started bool
}

// NewPeakRateMeter creates a meter with the given window width (seconds).
func NewPeakRateMeter(windowSeconds float64) *PeakRateMeter {
	if windowSeconds <= 0 {
		panic("stats: non-positive window")
	}
	return &PeakRateMeter{window: windowSeconds}
}

// Record adds bytes transferred at time t (seconds).
func (m *PeakRateMeter) Record(t, bytes float64) {
	b := int64(t / m.window)
	if !m.started || b != m.bucket {
		if m.started && m.current > m.peak {
			m.peak = m.current
		}
		m.bucket = b
		m.current = 0
		m.started = true
	}
	m.current += bytes
	m.total += bytes
}

// PeakRate returns the highest observed window rate in bytes/second.
func (m *PeakRateMeter) PeakRate() float64 {
	p := m.peak
	if m.current > p {
		p = m.current
	}
	return p / m.window
}

// Total returns the total bytes recorded.
func (m *PeakRateMeter) Total() float64 { return m.total }

// MeanRate returns the average rate over [t0, t1] in bytes/second.
func (m *PeakRateMeter) MeanRate(t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	return m.total / (t1 - t0)
}

// Reset discards all recorded bytes.
func (m *PeakRateMeter) Reset() {
	m.bucket, m.current, m.peak, m.total, m.started = 0, 0, 0, 0, false
}
