// Package cli provides the shared flag surface of the spiffi command
// line tools, mapping flags onto a core.Config.
package cli

import (
	"flag"
	"fmt"
	"os"
	"time"

	"spiffi/internal/bufferpool"
	"spiffi/internal/cache"
	"spiffi/internal/core"
	"spiffi/internal/dsched"
	"spiffi/internal/faults"
	"spiffi/internal/prefetch"
	"spiffi/internal/sim"
	"spiffi/internal/terminal"
	"spiffi/internal/trace"
	"spiffi/internal/workload"
)

// Flags holds the parsed common flags.
type Flags struct {
	Terminals  *int
	Nodes      *int
	Disks      *int // per node
	Videos     *int // per disk
	StripeKB   *int64
	ServerMB   *int64
	TerminalKB *int64
	Zipf       *float64
	Sched      *string
	Classes    *int
	SpacingS   *float64
	Groups     *int
	Replace    *string
	Prefetch   *string
	MaxAdvS    *float64
	Striped    *bool
	VideoMin   *float64
	MeasureS   *float64
	StartS     *float64
	Seed       *uint64
	Pause      *bool
	PiggyS     *float64
	VCRSeeks   *float64
	VCRSkim    *bool

	// Fault injection & degraded-mode operation.
	FaultDiskSlow  *float64
	FaultSlowFac   *float64
	FaultDiskFail  *float64
	FaultRepairS   *float64
	FaultNodeCrash *float64
	FaultRestartS  *float64
	FaultNetLoss   *float64
	FaultJitterMS  *float64
	Mirror         *bool
	MirrorNode     *bool
	Failover       *bool
	RejoinWarmupS  *float64
	ReqTimeoutS    *float64
	Retries        *int
	BackoffMS      *float64
	BackoffCapMS   *float64
	RetryJitterMS  *float64

	// Overload control & recovery (internal/overload, OVERLOAD.md).
	AdmitLimit    *int
	Adaptive      *bool
	Shed          *bool
	PatienceS     *float64
	RebuildMBs    *float64
	HoldAfterCutS *float64
	RaiseStreak   *int

	// Prefix caching & stream merging (internal/cache, CACHING.md).
	CacheMB      *int64
	CachePolicy  *string
	PrefixBlocks *int
	CacheDecay   *int64

	// Workload scenarios (internal/workload, WORKLOADS.md).
	Workload *string

	// Workers is not part of core.Config: it sizes the worker pool for
	// tools that evaluate many runs (searches, sweeps).
	Workers *int

	// Observability (internal/trace, OBSERVABILITY.md).
	Trace    *string // export format ("" = tracing off)
	TraceOut *string // output path ("" = format default, "-" = stdout)
	TraceCap *int    // ring capacity in events (0 = default)
}

// Register installs the common flags on fs.
func Register(fs *flag.FlagSet) *Flags {
	return &Flags{
		Terminals:  fs.Int("terminals", 200, "number of video terminals"),
		Nodes:      fs.Int("nodes", 4, "server nodes (CPUs)"),
		Disks:      fs.Int("disks", 4, "disks per node"),
		Videos:     fs.Int("videos", 4, "videos per disk"),
		StripeKB:   fs.Int64("stripe", 512, "stripe size in KB"),
		ServerMB:   fs.Int64("servermem", 4096, "aggregate server memory in MB"),
		TerminalKB: fs.Int64("termmem", 2048, "terminal memory in KB"),
		Zipf:       fs.Float64("zipf", 1.0, "video access skew z (0 = uniform)"),
		Sched:      fs.String("sched", "elevator", "disk scheduler: elevator|fcfs|round-robin|gss|real-time"),
		Classes:    fs.Int("classes", 3, "real-time priority classes"),
		SpacingS:   fs.Float64("spacing", 4, "real-time priority spacing (seconds)"),
		Groups:     fs.Int("groups", 1, "GSS groups"),
		Replace:    fs.String("replace", "global-lru", "page replacement: global-lru|love-prefetch"),
		Prefetch:   fs.String("prefetch", "", "prefetching: off|basic|real-time|delayed (default: per scheduler)"),
		MaxAdvS:    fs.Float64("maxadvance", 8, "delayed prefetching max advance (seconds)"),
		Striped:    fs.Bool("striped", true, "stripe videos across all disks"),
		VideoMin:   fs.Float64("videolen", 60, "video length in minutes"),
		MeasureS:   fs.Float64("measure", 600, "measured window (simulated seconds)"),
		StartS:     fs.Float64("startwindow", 60, "terminal start stagger window (seconds)"),
		Seed:       fs.Uint64("seed", 1, "simulation seed"),
		Pause:      fs.Bool("pause", false, "terminals pause twice per movie for ~2 minutes"),
		PiggyS:     fs.Float64("piggyback", 0, "piggyback start delay in seconds (0 = off)"),
		VCRSeeks:   fs.Float64("vcr", 0, "mean rewind/fast-forward seeks per movie (0 = off)"),
		VCRSkim:    fs.Bool("vcrskim", false, "seeks use the visual-search skim scheme"),

		FaultDiskSlow:  fs.Float64("faultdiskslow", 0, "transient disk slowdowns per disk-hour (0 = off)"),
		FaultSlowFac:   fs.Float64("faultslowfactor", 4, "service-time multiplier during a disk slowdown"),
		FaultDiskFail:  fs.Float64("faultdiskfail", 0, "disk fail-stops per disk-hour (0 = off)"),
		FaultRepairS:   fs.Float64("faultrepair", 30, "disk repair time in seconds (0 = permanent)"),
		FaultNodeCrash: fs.Float64("faultnodecrash", 0, "node crashes per node-hour (0 = off)"),
		FaultRestartS:  fs.Float64("faultrestart", 60, "node restart time in seconds (0 = permanent)"),
		FaultNetLoss:   fs.Float64("faultnetloss", 0, "per-message network drop probability (0 = off)"),
		FaultJitterMS:  fs.Float64("faultnetjitter", 0, "max extra network latency in ms (0 = off)"),
		Mirror:         fs.Bool("mirror", false, "store a declustered replica of every video"),
		MirrorNode:     fs.Bool("mirrornode", false, "place replicas cross-node (interleaved declustering; requires -mirror)"),
		Failover:       fs.Bool("failover", false, "redirect around suspect nodes and re-admit with priority (requires -mirror)"),
		RejoinWarmupS:  fs.Float64("rejoinwarmup", 0, "adaptive-limit hold after a node rejoins, seconds (0 = default 30 with -failover)"),
		ReqTimeoutS:    fs.Float64("reqtimeout", 0, "terminal request timeout in seconds (0 = default when faults on)"),
		Retries:        fs.Int("retries", 0, "max retries per block (0 = default when faults on)"),
		BackoffMS:      fs.Float64("backoff", 0, "first retry backoff in ms, doubling per retry (0 = default)"),
		BackoffCapMS:   fs.Float64("backoffcap", 0, "retry backoff cap in ms (0 = 64x the base backoff)"),
		RetryJitterMS:  fs.Float64("retryjitter", 0, "uniform jitter bound added to each retry backoff in ms (0 = off)"),

		AdmitLimit:    fs.Int("admit", 0, "admission limit on concurrent streams (0 = off)"),
		Adaptive:      fs.Bool("adaptive", false, "adapt the admission limit from measured disk slack"),
		Shed:          fs.Bool("shed", false, "shed low-priority streams to half rate under overload"),
		PatienceS:     fs.Float64("patience", 0, "admission queue patience in seconds (0 = default 10; <0 = wait forever)"),
		RebuildMBs:    fs.Float64("rebuildrate", 0, "mirror rebuild rate in MB/s after disk repair (0 = off)"),
		HoldAfterCutS: fs.Float64("holdaftercut", 0, "suppress adaptive limit raises for this many seconds after each cut (0 = off)"),
		RaiseStreak:   fs.Int("raisestreak", 0, "consecutive healthy estimator ticks required before a limit raise (0 = raise immediately)"),

		CacheMB:      fs.Int64("cache", 0, "prefix-cache budget in MB, carved from server memory (0 = off)"),
		CachePolicy:  fs.String("cachepolicy", "", "cache replacement: lru|zipf-rank (default lru with -cache)"),
		PrefixBlocks: fs.Int("prefixblocks", 0, "cacheable prefix depth in blocks per video (0 = default 8 with -cache)"),
		CacheDecay:   fs.Int64("cachedecay", 0, "halve cached popularity counts every N lookups (0 = never; churn-aware zipf-rank)"),

		Workload: fs.String("workload", "", "workload scenario spec, e.g. 'think=10s; steady:60s; premiere:45s load=3 promote=0 share=0.7' (see WORKLOADS.md; empty = off)"),

		Workers: fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS); results are identical for any value"),

		Trace:    fs.String("trace", "", "record structured events and export as jsonl|chrome|summary (empty = off)"),
		TraceOut: fs.String("trace-out", "", "trace output path (default trace.jsonl/trace.json, summary to stdout; '-' = stdout)"),
		TraceCap: fs.Int("tracecap", 0, "trace ring capacity in events (0 = default, 65536)"),
	}
}

// TraceOptions materializes trace.Options from the parsed flags.
func (f *Flags) TraceOptions() trace.Options {
	return trace.Options{Enabled: *f.Trace != "", Capacity: *f.TraceCap}
}

// ExportTrace writes a trace snapshot per the -trace/-trace-out flags
// and returns the destination it wrote ("" when tracing is off or there
// is nothing to write). The default destination keeps stdout clean for
// the metrics report: summaries print inline, event dumps go to
// trace.jsonl (JSONL) or trace.json (Chrome/Perfetto).
func (f *Flags) ExportTrace(d *trace.Data) (string, error) {
	format := *f.Trace
	if format == "" || d == nil {
		return "", nil
	}
	path := *f.TraceOut
	if path == "" {
		switch format {
		case "chrome":
			path = "trace.json"
		case "summary":
			path = "-"
		default:
			path = "trace." + format
		}
	}
	if path == "-" {
		return "stdout", trace.Export(os.Stdout, d, format)
	}
	out, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := trace.Export(out, d, format); err != nil {
		out.Close()
		return "", err
	}
	return path, out.Close()
}

// Config materializes a core.Config from the parsed flags.
func (f *Flags) Config() (core.Config, error) {
	cfg := core.DefaultConfig(*f.Terminals)
	cfg.Seed = *f.Seed
	cfg.Nodes = *f.Nodes
	cfg.DisksPerNode = *f.Disks
	cfg.VideosPerDisk = *f.Videos
	cfg.StripeBytes = *f.StripeKB * core.KB
	cfg.ServerMemBytes = *f.ServerMB * core.MB
	cfg.TerminalMemBytes = *f.TerminalKB * core.KB
	cfg.ZipfZ = *f.Zipf
	cfg.Striped = *f.Striped
	cfg.Video.Length = sim.DurationOfSeconds(*f.VideoMin * 60)
	cfg.MeasureTime = sim.DurationOfSeconds(*f.MeasureS)
	cfg.StartWindow = sim.DurationOfSeconds(*f.StartS)

	switch *f.Sched {
	case "elevator":
		cfg.Sched = dsched.Config{Kind: dsched.KindElevator}
	case "fcfs":
		cfg.Sched = dsched.Config{Kind: dsched.KindFCFS}
	case "round-robin":
		cfg.Sched = dsched.Config{Kind: dsched.KindRoundRobin}
	case "gss":
		cfg.Sched = dsched.Config{Kind: dsched.KindGSS, Groups: *f.Groups}
	case "real-time":
		cfg.Sched = dsched.Config{
			Kind:    dsched.KindRealTime,
			Classes: *f.Classes,
			Spacing: sim.DurationOfSeconds(*f.SpacingS),
		}
	default:
		return cfg, fmt.Errorf("unknown scheduler %q", *f.Sched)
	}

	switch *f.Replace {
	case "global-lru":
		cfg.Replacement = bufferpool.PolicyGlobalLRU
	case "love-prefetch":
		cfg.Replacement = bufferpool.PolicyLovePrefetch
	default:
		return cfg, fmt.Errorf("unknown replacement policy %q", *f.Replace)
	}

	switch *f.Prefetch {
	case "":
		// Per-scheduler default via Normalize.
	case "off":
		cfg.Prefetch = prefetch.Config{Mode: prefetch.ModeOff}
	case "basic":
		cfg.Prefetch = prefetch.Config{Mode: prefetch.ModeBasic}
	case "real-time":
		cfg.Prefetch = prefetch.Config{Mode: prefetch.ModeRealTime}
	case "delayed":
		cfg.Prefetch = prefetch.Config{
			Mode:       prefetch.ModeDelayed,
			MaxAdvance: sim.DurationOfSeconds(*f.MaxAdvS),
		}
	default:
		return cfg, fmt.Errorf("unknown prefetch mode %q", *f.Prefetch)
	}

	if *f.Pause {
		cfg.Pause = &terminal.PauseConfig{MeanPauses: 2, MeanDuration: 2 * sim.Minute}
	}
	if *f.PiggyS > 0 {
		cfg.PiggybackDelay = sim.DurationOfSeconds(*f.PiggyS)
	}
	if *f.VCRSeeks > 0 {
		cfg.VCR = &terminal.VCRConfig{
			MeanSeeksPerMovie: *f.VCRSeeks,
			MeanDistanceFrac:  0.25,
			ForwardProb:       0.5,
		}
		if *f.VCRSkim {
			cfg.VCR.Skim = true
			cfg.VCR.SkimStrideBlocks = 8
			cfg.VCR.SkimSegmentFrames = 30
		}
	}

	cfg.Faults = faults.Config{
		DiskSlowRate:    *f.FaultDiskSlow,
		DiskSlowFactor:  *f.FaultSlowFac,
		DiskFailRate:    *f.FaultDiskFail,
		DiskRepairTime:  sim.DurationOfSeconds(*f.FaultRepairS),
		NodeCrashRate:   *f.FaultNodeCrash,
		NodeRestartTime: sim.DurationOfSeconds(*f.FaultRestartS),
		NetLossProb:     *f.FaultNetLoss,
		NetJitterMax:    sim.DurationOfSeconds(*f.FaultJitterMS / 1000),
	}
	cfg.ReplicateVideos = *f.Mirror
	cfg.MirrorCrossNode = *f.MirrorNode
	cfg.Failover = *f.Failover
	cfg.RejoinWarmup = sim.DurationOfSeconds(*f.RejoinWarmupS)
	cfg.Trace = f.TraceOptions()
	cfg.RequestTimeout = sim.DurationOfSeconds(*f.ReqTimeoutS)
	cfg.MaxRetries = *f.Retries
	cfg.RetryBackoff = sim.DurationOfSeconds(*f.BackoffMS / 1000)
	cfg.RetryBackoffCap = sim.DurationOfSeconds(*f.BackoffCapMS / 1000)
	cfg.RetryJitter = sim.DurationOfSeconds(*f.RetryJitterMS / 1000)

	cfg.Overload.AdmitLimit = *f.AdmitLimit
	cfg.Overload.Adaptive = *f.Adaptive
	cfg.Overload.Shed = *f.Shed
	cfg.Overload.Patience = sim.DurationOfSeconds(*f.PatienceS)
	cfg.Overload.RebuildRate = int64(*f.RebuildMBs * float64(core.MB))
	cfg.Overload.HoldAfterCut = sim.DurationOfSeconds(*f.HoldAfterCutS)
	cfg.Overload.RaiseStreak = *f.RaiseStreak

	cfg.Cache.BudgetBytes = *f.CacheMB * core.MB
	cfg.Cache.Policy = cache.PolicyKind(*f.CachePolicy)
	cfg.Cache.PrefixBlocks = *f.PrefixBlocks
	cfg.Cache.DecayEvery = *f.CacheDecay
	if !cfg.Cache.Enabled() && (*f.CachePolicy != "" || *f.PrefixBlocks != 0 || *f.CacheDecay != 0) {
		return cfg, fmt.Errorf("-cachepolicy/-prefixblocks/-cachedecay require -cache")
	}

	if *f.Workload != "" {
		wl, err := workload.ParseSpec(*f.Workload)
		if err != nil {
			return cfg, err
		}
		cfg.Workload = wl
	}
	return cfg, nil
}

// FormatDuration renders a wall-clock duration compactly.
func FormatDuration(d time.Duration) string { return d.Round(time.Millisecond).String() }
