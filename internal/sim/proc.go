package sim

// Proc is a simulation process: a goroutine that runs user logic and
// yields to the kernel whenever it waits for simulated time to pass or
// for a condition to be signalled. At most one process runs at a time.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
	kill   bool
}

// Spawn creates a process executing fn and schedules it to start at the
// current simulated time (after already-scheduled events at this time).
// The name appears in diagnostics only.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.SpawnAt(k.now, name, fn)
}

// SpawnAt is Spawn with a delayed start time.
func (k *Kernel) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	k.live[p] = struct{}{}
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil && r != errKilled {
				k.setPanic(r)
			}
			delete(k.live, p)
			k.yield <- struct{}{}
		}()
		if p.kill {
			panic(errKilled)
		}
		fn(p)
	}()
	k.At(t, func() { k.dispatch(p) })
	return p
}

// dispatch transfers control to p and waits until p blocks or terminates.
// It runs in kernel context (from an event callback).
func (k *Kernel) dispatch(p *Proc) {
	p.resume <- struct{}{}
	<-k.yield
}

// Kernel returns the kernel the process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Name returns the diagnostic name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.k.now }

// Block parks the process until some other party calls Kernel.Wake(p).
// It is the building block for condition-style synchronization: the
// caller must have registered p on some waiter list first.
func (p *Proc) Block() {
	p.k.yield <- struct{}{}
	<-p.resume
	if p.kill {
		panic(errKilled)
	}
}

// Wake schedules p to resume at the current simulated time. It may be
// called from kernel context or from another process. Waking a process
// that is not blocked in Block (or a timed wait) corrupts the handoff
// protocol, so primitives must track waiter state carefully.
func (k *Kernel) Wake(p *Proc) {
	k.At(k.now, func() { k.dispatch(p) })
}

// WakeAt schedules p to resume at absolute time t.
func (k *Kernel) WakeAt(t Time, p *Proc) {
	k.At(t, func() { k.dispatch(p) })
}

// Sleep suspends the process for d of simulated time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	p.k.WakeAt(p.k.now.Add(d), p)
	p.Block()
}

// SleepUntil suspends the process until absolute time t. Times at or
// before now return after yielding once (preserving event ordering).
func (p *Proc) SleepUntil(t Time) {
	if t < p.k.now {
		t = p.k.now
	}
	p.k.WakeAt(t, p)
	p.Block()
}
