package sim

import (
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var got []int
	k.At(30, func() { got = append(got, 3) })
	k.At(10, func() { got = append(got, 1) })
	k.At(20, func() { got = append(got, 2) })
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30 {
		t.Fatalf("now = %v, want 30", k.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		k.At(5, func() { got = append(got, i) })
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events out of FIFO order at %d: %v", i, got[:i+1])
		}
	}
}

func TestRunStopsAtUntil(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	fired := 0
	k.At(10, func() { fired++ })
	k.At(20, func() { fired++ })
	k.At(30, func() { fired++ })
	if err := k.Run(20); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (events at or before until)", fired)
	}
	if k.Now() != 20 {
		t.Fatalf("now = %v, want 20", k.Now())
	}
	if err := k.Run(100); err != nil {
		t.Fatal(err)
	}
	if fired != 3 {
		t.Fatalf("fired = %d after resume, want 3", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	k.At(10, func() {})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.At(5, func() {})
}

func TestProcessSleep(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var wakes []Time
	k.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10 * Nanosecond)
			wakes = append(wakes, p.Now())
		}
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []Time{10, 20, 30}
	for i := range want {
		if wakes[i] != want[i] {
			t.Fatalf("wakes = %v, want %v", wakes, want)
		}
	}
}

func TestSpawnAtDelaysStart(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var started Time = -1
	k.SpawnAt(42, "late", func(p *Proc) { started = p.Now() })
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if started != 42 {
		t.Fatalf("started at %v, want 42", started)
	}
}

func TestProcessPanicPropagates(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	k.Spawn("bomb", func(p *Proc) {
		p.Sleep(5)
		panic("boom")
	})
	err := k.RunAll()
	if err == nil {
		t.Fatal("expected error from process panic")
	}
}

func TestMaxEventsGuard(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	k.MaxEvents = 100
	var loop func()
	loop = func() { k.After(1, loop) }
	k.After(1, loop)
	if err := k.RunAll(); err == nil {
		t.Fatal("expected MaxEvents error")
	}
}

// Regression: the guard used to be checked after dispatch, so the kernel
// ran one event past the stated limit. The check now happens before
// dispatch — exactly MaxEvents events run, never MaxEvents+1.
func TestMaxEventsExactAbortCount(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	k.MaxEvents = 5
	ran := 0
	for i := 1; i <= 10; i++ {
		k.After(Duration(i), func() { ran++ })
	}
	if err := k.RunAll(); err == nil {
		t.Fatal("expected MaxEvents error")
	}
	if ran != 5 || k.Events() != 5 {
		t.Fatalf("dispatched %d events (counter %d), want exactly MaxEvents=5", ran, k.Events())
	}
}

// A calendar holding exactly MaxEvents events drains without error: the
// guard fires only when the limit would be exceeded.
func TestMaxEventsExactFitIsNoError(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	k.MaxEvents = 5
	for i := 1; i <= 5; i++ {
		k.After(Duration(i), func() {})
	}
	if err := k.RunAll(); err != nil {
		t.Fatalf("exact-fit calendar errored: %v", err)
	}
	if k.Events() != 5 {
		t.Fatalf("events = %d, want 5", k.Events())
	}
}

func TestCloseKillsParkedProcesses(t *testing.T) {
	before := runtime.NumGoroutine()
	for trial := 0; trial < 20; trial++ {
		k := NewKernel()
		ev := NewEvent(k)
		for i := 0; i < 10; i++ {
			k.Spawn("waiter", func(p *Proc) { ev.Wait(p) }) // parks forever
		}
		if err := k.Run(1000); err != nil {
			t.Fatal(err)
		}
		k.Close()
	}
	// Give the runtime a moment to retire goroutines.
	for i := 0; i < 100; i++ {
		runtime.Gosched()
	}
	after := runtime.NumGoroutine()
	if after > before+5 {
		t.Fatalf("goroutines leaked: before=%d after=%d", before, after)
	}
}

func TestFacilityFIFOAndHoldTimes(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	f := NewFacility(k, "cpu")
	var order []int
	var times []Time
	for i := 0; i < 4; i++ {
		i := i
		k.Spawn("user", func(p *Proc) {
			f.Use(p, 10*Nanosecond)
			order = append(order, i)
			times = append(times, p.Now())
		})
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("service order = %v, want FIFO", order)
		}
		if want := Time(10 * (i + 1)); times[i] != want {
			t.Fatalf("completion %d at %v, want %v", i, times[i], want)
		}
	}
	if f.Served() != 4 {
		t.Fatalf("served = %d, want 4", f.Served())
	}
}

func TestFacilityUtilization(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	f := NewFacility(k, "cpu")
	k.Spawn("user", func(p *Proc) {
		f.Use(p, 30*Nanosecond) // busy [0,30)
		p.Sleep(30)             // idle [30,60)
		f.Use(p, 40*Nanosecond) // busy [60,100)
	})
	if err := k.Run(100); err != nil {
		t.Fatal(err)
	}
	got := f.Utilization()
	if got < 0.69 || got > 0.71 {
		t.Fatalf("utilization = %v, want 0.70", got)
	}
}

func TestFacilityResetStatsMidBusy(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	f := NewFacility(k, "cpu")
	k.Spawn("user", func(p *Proc) {
		f.Use(p, 100*Nanosecond)
	})
	k.At(50, func() { f.ResetStats() })
	if err := k.Run(100); err != nil {
		t.Fatal(err)
	}
	got := f.Utilization()
	if got < 0.99 || got > 1.01 {
		t.Fatalf("post-reset utilization = %v, want 1.0 (busy the whole window)", got)
	}
}

func TestMailboxFIFO(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	m := NewMailbox[int](k)
	var got []int
	k.Spawn("recv", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, m.Get(p))
		}
	})
	k.Spawn("send", func(p *Proc) {
		for i := 0; i < 5; i++ {
			m.Put(i)
			p.Sleep(1)
		}
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("got %v, want 0..4 in order", got)
		}
	}
	if m.Len() != 0 {
		t.Fatalf("mailbox len = %d, want 0", m.Len())
	}
}

func TestMailboxBuffersWhenNoReceiver(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	m := NewMailbox[string](k)
	m.Put("a")
	m.Put("b")
	if m.Len() != 2 {
		t.Fatalf("len = %d, want 2", m.Len())
	}
	var got []string
	k.Spawn("recv", func(p *Proc) {
		got = append(got, m.Get(p), m.Get(p))
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got[0] != "a" || got[1] != "b" {
		t.Fatalf("got %v", got)
	}
}

func TestMailboxMultipleWaitersServedInOrder(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	m := NewMailbox[int](k)
	var got []int
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn("recv", func(p *Proc) {
			v := m.Get(p)
			got = append(got, i*100+v)
		})
	}
	k.At(10, func() { m.Put(1); m.Put(2); m.Put(3) })
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 102, 203} // receiver 0 gets msg 1, etc.
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestEventWaitBeforeAndAfterFire(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	e := NewEvent(k)
	var wokeAt []Time
	k.Spawn("early", func(p *Proc) {
		e.Wait(p)
		wokeAt = append(wokeAt, p.Now())
	})
	k.At(50, func() { e.Fire() })
	k.SpawnAt(70, "late", func(p *Proc) {
		e.Wait(p) // already fired: returns immediately
		wokeAt = append(wokeAt, p.Now())
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if wokeAt[0] != 50 || wokeAt[1] != 70 {
		t.Fatalf("wokeAt = %v, want [50 70]", wokeAt)
	}
	if !e.Fired() {
		t.Fatal("event not marked fired")
	}
}

func TestEventDoubleFireIsNoop(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	e := NewEvent(k)
	woke := 0
	k.Spawn("w", func(p *Proc) { e.Wait(p); woke++ })
	k.At(10, func() { e.Fire(); e.Fire() })
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if woke != 1 {
		t.Fatalf("woke = %d, want 1", woke)
	}
}

func TestSemaphore(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	s := NewSemaphore(k, 2)
	var inside, peak int
	for i := 0; i < 6; i++ {
		k.Spawn("worker", func(p *Proc) {
			s.Acquire(p)
			inside++
			if inside > peak {
				peak = inside
			}
			p.Sleep(10)
			inside--
			s.Release()
		})
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if peak != 2 {
		t.Fatalf("peak concurrency = %d, want 2", peak)
	}
	if s.Available() != 2 {
		t.Fatalf("final count = %d, want 2", s.Available())
	}
}

// TestDeterminism runs the same randomized workload twice and requires
// identical completion traces.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		k := NewKernel()
		defer k.Close()
		r := rand.New(rand.NewSource(seed))
		f := NewFacility(k, "f")
		var trace []Time
		for i := 0; i < 50; i++ {
			start := Time(r.Intn(1000))
			hold := Duration(1 + r.Intn(20))
			k.SpawnAt(start, "w", func(p *Proc) {
				f.Use(p, hold)
				trace = append(trace, p.Now())
			})
		}
		if err := k.RunAll(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any batch of event times, dispatch order is the sorted
// order (stable by insertion for ties).
func TestHeapDispatchOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		k := NewKernel()
		defer k.Close()
		type tagged struct {
			t   Time
			idx int
		}
		var want []tagged
		var got []tagged
		for i, v := range raw {
			tm := Time(v)
			i := i
			want = append(want, tagged{tm, i})
			k.At(tm, func() { got = append(got, tagged{k.Now(), i}) })
		}
		if err := k.RunAll(); err != nil {
			return false
		}
		sort.SliceStable(want, func(a, b int) bool { return want[a].t < want[b].t })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEventDispatch(b *testing.B) {
	k := NewKernel()
	defer k.Close()
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < b.N {
			k.After(1, fn)
		}
	}
	k.After(1, fn)
	b.ResetTimer()
	if err := k.RunAll(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkProcessHandoff(b *testing.B) {
	k := NewKernel()
	defer k.Close()
	k.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	if err := k.RunAll(); err != nil {
		b.Fatal(err)
	}
}

func TestSleepUntilPastClampsToNow(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var woke Time = -1
	k.SpawnAt(100, "w", func(p *Proc) {
		p.SleepUntil(50) // in the past: yields once, resumes at now
		woke = p.Now()
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if woke != 100 {
		t.Fatalf("woke at %v, want 100", woke)
	}
}

func TestNegativeSleepPanics(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	k.Spawn("w", func(p *Proc) {
		p.Sleep(-1)
	})
	if err := k.RunAll(); err == nil {
		t.Fatal("negative sleep must surface as an error")
	}
}

func TestWakeOrderingDeterministic(t *testing.T) {
	// Multiple processes woken at the same instant resume in wake order.
	k := NewKernel()
	defer k.Close()
	e := NewEvent(k)
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		k.Spawn("w", func(p *Proc) {
			e.Wait(p)
			order = append(order, i)
		})
	}
	k.At(10, func() { e.Fire() })
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("wake order = %v", order)
		}
	}
}

func TestNestedSpawn(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	depth := 0
	var spawn func(p *Proc)
	spawn = func(p *Proc) {
		depth++
		if depth < 5 {
			k.Spawn("child", spawn)
		}
		p.Sleep(1)
	}
	k.Spawn("root", spawn)
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if depth != 5 {
		t.Fatalf("depth = %d", depth)
	}
}

func TestFacilityQueuedPeak(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	f := NewFacility(k, "f")
	for i := 0; i < 4; i++ {
		k.Spawn("w", func(p *Proc) { f.Use(p, 10) })
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if f.QueuedPeak() != 3 {
		t.Fatalf("queued peak = %d, want 3", f.QueuedPeak())
	}
}

func TestEventsCounterAdvances(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	for i := 0; i < 10; i++ {
		k.At(Time(i), func() {})
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if k.Events() != 10 {
		t.Fatalf("events = %d", k.Events())
	}
	if k.Pending() != 0 {
		t.Fatalf("pending = %d", k.Pending())
	}
}

func TestRunOnClosedKernelErrors(t *testing.T) {
	k := NewKernel()
	k.Close()
	if err := k.Run(10); err == nil {
		t.Fatal("run on closed kernel must error")
	}
}
