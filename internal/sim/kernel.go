package sim

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// ErrKilled is the panic value used to unwind process goroutines when the
// kernel shuts down. User code never observes it: the process wrapper
// recovers it.
var errKilled = errors.New("sim: process killed by kernel shutdown")

// event is a calendar entry. fn runs in kernel context and must not block;
// waking a process is done by scheduling its resumption, never inline.
type event struct {
	t   Time
	seq uint64
	fn  func()
}

// Kernel is the simulation executive: an event calendar plus the handoff
// machinery that lets goroutine-based processes run one at a time.
//
// A Kernel is not safe for concurrent use from multiple OS-level
// goroutines other than via the process protocol; all user logic runs
// either inside kernel-context event callbacks or inside processes.
type Kernel struct {
	now    Time
	heap   []event
	seq    uint64
	events uint64 // total events dispatched

	yield chan struct{} // process -> kernel: "I'm blocked or done"

	live map[*Proc]struct{} // processes that have a parked goroutine

	panicVal   any
	panicStack []byte
	closed     bool

	// MaxEvents, when non-zero, aborts Run with an error once that many
	// events have been dispatched and more remain — the check happens
	// before each dispatch, so exactly MaxEvents events ever run. It is a
	// guard against accidental infinite event loops in tests.
	MaxEvents uint64
}

// NewKernel returns a kernel with time zero and an empty calendar.
func NewKernel() *Kernel {
	return &Kernel{
		yield: make(chan struct{}),
		live:  make(map[*Proc]struct{}),
	}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Events returns the number of calendar events dispatched so far. It is
// useful for performance reporting and runaway-loop diagnostics.
func (k *Kernel) Events() uint64 { return k.events }

// Pending returns the number of events currently on the calendar.
func (k *Kernel) Pending() int { return len(k.heap) }

// At schedules fn to run in kernel context at absolute time t. Scheduling
// in the past is a programming error and panics. fn must not block.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	k.push(event{t: t, seq: k.seq, fn: fn})
}

// After schedules fn to run in kernel context d from now.
func (k *Kernel) After(d Duration, fn func()) { k.At(k.now.Add(d), fn) }

// Run dispatches events in (time, seq) order until the calendar is empty
// or the next event lies beyond `until`, whichever comes first, then sets
// the clock to `until`. Events exactly at `until` are dispatched. It
// returns an error if a process panicked or MaxEvents was exceeded.
func (k *Kernel) Run(until Time) error {
	if k.closed {
		return errors.New("sim: kernel is closed")
	}
	for len(k.heap) > 0 {
		if k.heap[0].t > until {
			break
		}
		if k.MaxEvents != 0 && k.events >= k.MaxEvents {
			return fmt.Errorf("sim: exceeded MaxEvents=%d at t=%v", k.MaxEvents, k.now)
		}
		ev := k.pop()
		k.now = ev.t
		k.events++
		ev.fn()
		if k.panicVal != nil {
			return fmt.Errorf("sim: process panic: %v\n%s", k.panicVal, k.panicStack)
		}
	}
	if until > k.now {
		k.now = until
	}
	return nil
}

// RunAll dispatches events until the calendar is empty.
func (k *Kernel) RunAll() error {
	for len(k.heap) > 0 {
		if err := k.Run(k.heap[0].t); err != nil {
			return err
		}
	}
	return nil
}

// Close terminates every parked process goroutine. It must be called when
// the kernel is discarded (typically via defer) so repeated simulations do
// not leak goroutines. After Close the kernel cannot be used.
func (k *Kernel) Close() {
	if k.closed {
		return
	}
	k.closed = true
	for p := range k.live {
		p.kill = true
		p.resume <- struct{}{}
		<-k.yield
	}
	k.live = nil
	k.heap = nil
}

// --- binary min-heap on (t, seq) ---

func (k *Kernel) push(ev event) {
	k.heap = append(k.heap, ev)
	i := len(k.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less(k.heap[i], k.heap[parent]) {
			break
		}
		k.heap[i], k.heap[parent] = k.heap[parent], k.heap[i]
		i = parent
	}
}

func (k *Kernel) pop() event {
	top := k.heap[0]
	n := len(k.heap) - 1
	k.heap[0] = k.heap[n]
	k.heap = k.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && less(k.heap[l], k.heap[smallest]) {
			smallest = l
		}
		if r < n && less(k.heap[r], k.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		k.heap[i], k.heap[smallest] = k.heap[smallest], k.heap[i]
		i = smallest
	}
	return top
}

func less(a, b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

func (k *Kernel) setPanic(v any) {
	if k.panicVal == nil {
		k.panicVal = v
		k.panicStack = debug.Stack()
	}
}
