package sim

// Facility is a single server with a FIFO queue, the CSIM notion used here
// to model CPUs. A process holds the facility for a service duration;
// contenders queue in arrival order. Utilization statistics are tracked
// against a measurement window that can be reset (to discard warm-up).
type Facility struct {
	k    *Kernel
	name string

	busy  bool
	queue []*Proc

	busyStart   Time // valid when busy
	windowStart Time
	busyTime    Duration
	served      int64
	queuedPeak  int
}

// NewFacility creates an idle facility.
func NewFacility(k *Kernel, name string) *Facility {
	return &Facility{k: k, name: name}
}

// Use acquires the facility FIFO, holds it for d, and releases it.
func (f *Facility) Use(p *Proc, d Duration) {
	f.Acquire(p)
	p.Sleep(d)
	f.Release()
}

// Acquire takes ownership of the facility, queueing FIFO behind current
// users. Ownership is handed directly to the head waiter on release, so
// later arrivals can never barge.
func (f *Facility) Acquire(p *Proc) {
	if f.busy {
		f.queue = append(f.queue, p)
		if len(f.queue) > f.queuedPeak {
			f.queuedPeak = len(f.queue)
		}
		p.Block()
		// Ownership was transferred to us by Release; busy stays true.
		return
	}
	f.busy = true
	f.busyStart = f.k.now
}

// Release gives up ownership. If waiters are queued the facility stays
// busy and the head waiter becomes the owner.
func (f *Facility) Release() {
	f.served++
	if len(f.queue) > 0 {
		w := f.queue[0]
		copy(f.queue, f.queue[1:])
		f.queue = f.queue[:len(f.queue)-1]
		f.k.Wake(w)
		return
	}
	f.busy = false
	f.busyTime += f.k.now.Sub(f.busyStart)
}

// ResetStats restarts the utilization window at the current time,
// discarding accumulated busy time (used to exclude warm-up).
func (f *Facility) ResetStats() {
	f.busyTime = 0
	f.served = 0
	f.queuedPeak = 0
	f.windowStart = f.k.now
	if f.busy {
		f.busyStart = f.k.now
	}
}

// Utilization reports the fraction of the measurement window the facility
// was busy, in [0, 1].
func (f *Facility) Utilization() float64 {
	window := f.k.now.Sub(f.windowStart)
	if window <= 0 {
		return 0
	}
	busy := f.busyTime
	if f.busy {
		busy += f.k.now.Sub(f.busyStart)
	}
	return float64(busy) / float64(window)
}

// Served reports the number of completed service periods in the window.
func (f *Facility) Served() int64 { return f.served }

// QueuedPeak reports the maximum queue length observed in the window.
func (f *Facility) QueuedPeak() int { return f.queuedPeak }

// Name returns the facility's diagnostic name.
func (f *Facility) Name() string { return f.name }
