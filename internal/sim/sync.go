package sim

// Mailbox is an unbounded FIFO message queue. Senders never block;
// receivers block until a message is available. Messages are delivered
// to waiting receivers in the order the receivers arrived.
type Mailbox[T any] struct {
	k       *Kernel
	items   []T
	head    int
	waiters []*mboxWaiter[T]
}

type mboxWaiter[T any] struct {
	p   *Proc
	val T
}

// NewMailbox creates an empty mailbox.
func NewMailbox[T any](k *Kernel) *Mailbox[T] {
	return &Mailbox[T]{k: k}
}

// Put enqueues v, waking the oldest waiting receiver if any. It may be
// called from kernel context or from a process and never blocks.
func (m *Mailbox[T]) Put(v T) {
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		copy(m.waiters, m.waiters[1:])
		m.waiters = m.waiters[:len(m.waiters)-1]
		w.val = v
		m.k.Wake(w.p)
		return
	}
	m.items = append(m.items, v)
}

// Get dequeues the oldest message, blocking the calling process until one
// is available.
func (m *Mailbox[T]) Get(p *Proc) T {
	if m.head < len(m.items) {
		v := m.items[m.head]
		var zero T
		m.items[m.head] = zero
		m.head++
		if m.head == len(m.items) {
			m.items = m.items[:0]
			m.head = 0
		}
		return v
	}
	w := &mboxWaiter[T]{p: p}
	m.waiters = append(m.waiters, w)
	p.Block()
	return w.val
}

// Len reports the number of queued (undelivered) messages.
func (m *Mailbox[T]) Len() int { return len(m.items) - m.head }

// Event is a one-shot completion: processes Wait until someone Fires it.
// Waits after the fire return immediately. It models request/reply
// rendezvous (e.g. a terminal waiting for a block to arrive).
type Event struct {
	k       *Kernel
	fired   bool
	waiters []*Proc
}

// NewEvent creates an unfired event.
func NewEvent(k *Kernel) *Event { return &Event{k: k} }

// Fired reports whether Fire has been called.
func (e *Event) Fired() bool { return e.fired }

// Fire marks the event complete and wakes all waiters in arrival order.
// Firing twice is a no-op.
func (e *Event) Fire() {
	if e.fired {
		return
	}
	e.fired = true
	for _, p := range e.waiters {
		e.k.Wake(p)
	}
	e.waiters = nil
}

// Wait blocks the calling process until the event fires.
func (e *Event) Wait(p *Proc) {
	if e.fired {
		return
	}
	e.waiters = append(e.waiters, p)
	p.Block()
}

// Semaphore is a counting semaphore with FIFO wakeup.
type Semaphore struct {
	k       *Kernel
	count   int
	waiters []*Proc
}

// NewSemaphore creates a semaphore with the given initial count.
func NewSemaphore(k *Kernel, count int) *Semaphore {
	return &Semaphore{k: k, count: count}
}

// Acquire takes one unit, blocking while the count is zero.
func (s *Semaphore) Acquire(p *Proc) {
	if s.count > 0 && len(s.waiters) == 0 {
		s.count--
		return
	}
	s.waiters = append(s.waiters, p)
	p.Block()
	// The releaser consumed a unit on our behalf.
}

// Release returns one unit, waking the oldest waiter if any.
func (s *Semaphore) Release() {
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		copy(s.waiters, s.waiters[1:])
		s.waiters = s.waiters[:len(s.waiters)-1]
		s.k.Wake(w)
		return
	}
	s.count++
}

// Available reports the current count.
func (s *Semaphore) Available() int { return s.count }
