// Package sim implements a deterministic, process-oriented discrete-event
// simulation kernel in the style of CSIM (Schwetman 1990), the simulation
// language the SPIFFI paper used.
//
// Processes are goroutines, but exactly one process (or the kernel itself)
// is ever runnable at a time: a process that performs a simulation wait
// hands control back to the kernel and is resumed by a calendar event.
// All wake-ups flow through a single event calendar ordered by
// (time, sequence number), so runs are bit-for-bit reproducible given
// deterministic process logic and seeded random streams.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation. Using an integer representation keeps event ordering exact
// and runs reproducible across platforms.
type Time int64

// Duration is a span of simulated time in nanoseconds. It is a distinct
// type from time.Duration only to make unit errors impossible to compile;
// the scale (nanoseconds) is identical.
type Duration = time.Duration

// Common duration constructors, mirroring the time package for readability
// at call sites.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// TimeInfinity is the far-future sentinel: later than any reachable
// simulation instant, used for "never" deadlines (lowest-priority
// prefetches) and permanent failures (no repair scheduled). It is 1<<62,
// not MaxInt64, so that subtracting any realistic Time still yields a
// positive Duration; adding a positive Duration to it, however, can wrap
// negative — code must treat TimeInfinity as unreachable and never
// extend it. This is the single audited home of that overflow caveat.
const TimeInfinity Time = 1 << 62

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// DurationOfSeconds converts a floating-point second count into a Duration.
func DurationOfSeconds(s float64) Duration { return Duration(s * float64(Second)) }

func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }
