// Benchmarks regenerating every table and figure of the SPIFFI paper's
// evaluation, at the "bench" fidelity (full 16-disk system, shortened
// videos and windows — see internal/experiments). Each benchmark
// iteration regenerates the whole figure and reports its headline number
// as a custom metric, so `go test -bench=. -benchmem` doubles as a
// shape check of the reproduction.
//
// For paper-scale runs use: go run ./cmd/spiffi-bench -fidelity full
package spiffi_test

import (
	"testing"

	"spiffi"
	"spiffi/internal/experiments"
)

// reportSeries attaches each series' final point as a benchmark metric.
func reportSeries(b *testing.B, r experiments.Result) {
	b.Helper()
	for _, s := range r.Series {
		if len(s.Points) == 0 {
			continue
		}
		b.ReportMetric(s.Points[len(s.Points)-1].Y, sanitize(r.ID+"/"+s.Name))
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '(', ')', ',':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

func runSingle(b *testing.B, fn func(experiments.Fidelity) (experiments.Result, error)) {
	for i := 0; i < b.N; i++ {
		r, err := fn(experiments.Bench())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSeries(b, r)
		}
	}
}

func BenchmarkFig08Zipf(b *testing.B) { runSingle(b, experiments.Fig08Zipf) }

func BenchmarkFig09GlitchCurve(b *testing.B) { runSingle(b, experiments.Fig09GlitchCurve) }

func BenchmarkFig10SchedStripe(b *testing.B) { runSingle(b, experiments.Fig10SchedStripe) }

func BenchmarkFig11MemoryElevator(b *testing.B) { runSingle(b, experiments.Fig11MemoryElevator) }

func BenchmarkFig12MemoryRealTime(b *testing.B) { runSingle(b, experiments.Fig12MemoryRealTime) }

func BenchmarkFig13Striping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f13, f14, err := experiments.Fig13And14Striping(experiments.Bench())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSeries(b, f13)
			_ = f14
		}
	}
}

func BenchmarkFig14DiskUtil(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, f14, err := experiments.Fig13And14Striping(experiments.Bench())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSeries(b, f14)
		}
	}
}

func BenchmarkFig15AccessFreq(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f15, _, err := experiments.Fig15And16AccessFrequencies(experiments.Bench())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSeries(b, f15)
		}
	}
}

func BenchmarkFig16Sharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, f16, err := experiments.Fig15And16AccessFrequencies(experiments.Bench())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSeries(b, f16)
		}
	}
}

func benchScaleup(b *testing.B, pick func(*experiments.ScaleupData) experiments.Result) {
	for i := 0; i < b.N; i++ {
		d, err := experiments.RunScaleup(experiments.Bench())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSeries(b, pick(d))
		}
	}
}

func BenchmarkTable2Scaleup(b *testing.B) {
	benchScaleup(b, func(d *experiments.ScaleupData) experiments.Result { return d.Table2() })
}

func BenchmarkFig17CPUUtil(b *testing.B) {
	benchScaleup(b, func(d *experiments.ScaleupData) experiments.Result { return d.Fig17() })
}

func BenchmarkFig18NetBandwidth(b *testing.B) {
	benchScaleup(b, func(d *experiments.ScaleupData) experiments.Result { return d.Fig18() })
}

func BenchmarkTable3DiskCost(b *testing.B) {
	benchScaleup(b, func(d *experiments.ScaleupData) experiments.Result { return d.Table3() })
}

func BenchmarkFig19Pause(b *testing.B) { runSingle(b, experiments.Fig19Pause) }

func BenchmarkPiggyback(b *testing.B) { runSingle(b, experiments.Piggyback) }

// Ablations beyond the paper's published plots (see DESIGN.md).

func BenchmarkAblationRTParams(b *testing.B) { runSingle(b, experiments.AblationRTParams) }

func BenchmarkAblationPrefetch(b *testing.B) { runSingle(b, experiments.AblationPrefetch) }

func BenchmarkAblationDiskCache(b *testing.B) { runSingle(b, experiments.AblationDiskCache) }

func BenchmarkAblationSchedulerZoo(b *testing.B) { runSingle(b, experiments.AblationSchedulerZoo) }

func BenchmarkAblationZonedDisks(b *testing.B) { runSingle(b, experiments.AblationZonedDisks) }

func BenchmarkAdmissionBounds(b *testing.B) { runSingle(b, experiments.Admission) }

func BenchmarkVCRSeek(b *testing.B) { runSingle(b, experiments.VCRSeek) }

// benchWorkersSweep regenerates Figure 11 — a 12-search memory sweep,
// the embarrassingly parallel shape the worker pool targets — at quick
// fidelity with a fixed worker count. Compare the Workers1 and WorkersN
// variants to measure the pool's speedup on a given machine:
//
//	go test -bench QuickWorkers -benchtime 1x -run '^$' .
//
// Results are bit-identical across the variants; only wall-clock moves.
// On a single-core host the N-worker run cannot be faster (and pays a
// little speculative work); the speedup materializes with GOMAXPROCS > 1.
func benchWorkersSweep(b *testing.B, workers int) {
	f := experiments.Quick()
	f.Workers = workers
	for i := 0; i < b.N; i++ {
		results, err := experiments.Run("fig11", f)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSeries(b, results[0])
		}
	}
}

func BenchmarkFig11QuickWorkers1(b *testing.B) { benchWorkersSweep(b, 1) }

// BenchmarkFig11QuickWorkersN uses GOMAXPROCS workers.
func BenchmarkFig11QuickWorkersN(b *testing.B) { benchWorkersSweep(b, 0) }

// BenchmarkSingleRun measures the simulator itself: one 200-terminal,
// 16-disk run at bench fidelity, reporting simulation events/second.
func BenchmarkSingleRun(b *testing.B) {
	cfg := spiffi.DefaultConfig(200)
	cfg.Video.Length = 6 * spiffi.Minute
	cfg.MeasureTime = 45 * spiffi.Second
	cfg.StartWindow = 20 * spiffi.Second
	var events uint64
	for i := 0; i < b.N; i++ {
		m, err := spiffi.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += m.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "sim-events/s")
}

// BenchmarkSingleRunTraced is BenchmarkSingleRun with the structured
// event recorder on: the delta against the untraced benchmark is the
// enabled-tracing cost (ring writes plus three online histograms).
// Disabled tracing is guarded separately — and analytically — by
// TestTracingNeutralityAndOverhead.
func BenchmarkSingleRunTraced(b *testing.B) {
	cfg := spiffi.DefaultConfig(200)
	cfg.Video.Length = 6 * spiffi.Minute
	cfg.MeasureTime = 45 * spiffi.Second
	cfg.StartWindow = 20 * spiffi.Second
	cfg.Trace = spiffi.TraceOptions{Enabled: true}
	var events, emitted uint64
	for i := 0; i < b.N; i++ {
		m, err := spiffi.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += m.Events
		if m.Trace != nil {
			emitted += m.Trace.Total
		}
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "sim-events/s")
	b.ReportMetric(float64(emitted)/float64(b.N), "trace-events/run")
}
