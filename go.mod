module spiffi

go 1.23
