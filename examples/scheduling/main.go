// Scheduling: a miniature of the paper's Figure 10 — compare the five
// disk scheduling algorithms (elevator, one-group GSS, round-robin, and
// two real-time variants) by the maximum number of glitch-free terminals
// each supports on the 16-disk base system.
//
// Expected shape (the paper's result): elevator and both real-time
// variants are nearly identical and best; GSS(1) close behind;
// round-robin clearly worst because it ignores seek distances.
//
//	go run ./examples/scheduling
package main

import (
	"fmt"
	"log"

	"spiffi"
)

func main() {
	schedulers := []struct {
		name string
		cfg  spiffi.SchedConfig
	}{
		{"elevator", spiffi.SchedConfig{Kind: spiffi.SchedElevator}},
		{"gss(1 group)", spiffi.GSSSched(1)},
		{"round-robin", spiffi.SchedConfig{Kind: spiffi.SchedRoundRobin}},
		{"real-time(2,4s)", spiffi.RealTimeSched(2, 4*spiffi.Second)},
		{"real-time(3,4s)", spiffi.RealTimeSched(3, 4*spiffi.Second)},
	}

	fmt.Println("scheduler        max glitch-free terminals (16 disks, 512KB stripe)")
	for _, s := range schedulers {
		cfg := spiffi.DefaultConfig(1)
		cfg.Sched = s.cfg
		// Fast example settings; the full experiment is
		// `spiffi-bench -exp fig10`.
		cfg.Video.Length = 8 * spiffi.Minute
		cfg.MeasureTime = 90 * spiffi.Second
		cfg.StartWindow = 30 * spiffi.Second

		res, err := spiffi.FindMaxTerminals(cfg, spiffi.SearchOptions{Step: 20})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %d\n", s.name, res.MaxTerminals)
	}
}
