// VCR: the paper's §8.1 interactive operations — rewind and
// fast-forward. A seek jumps to a new position and re-primes ("at most a
// few seconds"); the optional visual search fetches one block out of
// every several while traversing, giving the choppy scan picture without
// reading the skipped video. The paper predicts neither significantly
// loads the server; this example measures both.
//
//	go run ./examples/vcr
package main

import (
	"fmt"
	"log"

	"spiffi"
)

func main() {
	base := spiffi.DefaultConfig(1)
	base.Replacement = spiffi.ReplaceLovePrefetch
	base.ServerMemBytes = 512 * spiffi.MB
	base.Video.Length = 8 * spiffi.Minute
	base.MeasureTime = 90 * spiffi.Second
	base.StartWindow = 30 * spiffi.Second

	jump := base
	jump.VCR = &spiffi.VCRConfig{
		MeanSeeksPerMovie: 2,
		MeanDistanceFrac:  0.25,
		ForwardProb:       0.5,
	}

	skim := jump
	v := *jump.VCR
	v.Skim = true
	v.SkimStrideBlocks = 8
	v.SkimSegmentFrames = 30 // one second shown per sampled block
	skim.VCR = &v

	for _, c := range []struct {
		name string
		cfg  spiffi.Config
	}{
		{"no seeks", base},
		{"jump seeks (2/movie)", jump},
		{"visual search", skim},
	} {
		res, err := spiffi.FindMaxTerminals(c.cfg, spiffi.SearchOptions{Step: 20})
		if err != nil {
			log.Fatal(err)
		}
		line := fmt.Sprintf("%-22s max glitch-free terminals = %d", c.name, res.MaxTerminals)
		if len(res.AtMax) > 0 && res.AtMax[0].Seeks > 0 {
			m := res.AtMax[0]
			line += fmt.Sprintf("   (%d seeks, avg resume %.2fs)",
				m.Seeks, m.SeekRePrimeAvg.Seconds())
		}
		fmt.Println(line)
	}
	fmt.Println("\n(§8.1 expects all three to be close: seeks re-prime in seconds and")
	fmt.Println(" the skim reads only the sampled blocks)")
}
