// Piggyback: the paper's §8.2 idea — delay the start of popular movies
// briefly ("play a few commercials") so that terminals requesting the
// same movie can be batched onto one shared stream. The paper reports a
// 5-minute delay more than doubles the number of supportable terminals.
//
//	go run ./examples/piggyback
package main

import (
	"fmt"
	"log"

	"spiffi"
)

func main() {
	base := spiffi.DefaultConfig(1)
	base.Replacement = spiffi.ReplaceLovePrefetch
	base.ServerMemBytes = 512 * spiffi.MB
	base.Video.Length = 8 * spiffi.Minute
	base.MeasureTime = 90 * spiffi.Second
	base.StartWindow = 30 * spiffi.Second

	// The paper's 5-minute delay scaled to 8-minute movies (~40 s).
	delayed := base
	delayed.PiggybackDelay = 40 * spiffi.Second

	var results []int
	for _, c := range []struct {
		name string
		cfg  spiffi.Config
	}{{"no piggybacking", base}, {"40s start delay", delayed}} {
		opt := spiffi.SearchOptions{Step: 20}
		if c.cfg.PiggybackDelay > 0 {
			opt.Hi = 1600 // batching multiplies capacity; widen the cap
		}
		res, err := spiffi.FindMaxTerminals(c.cfg, opt)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res.MaxTerminals)
		fmt.Printf("%-18s max glitch-free terminals = %d\n", c.name, res.MaxTerminals)
	}
	if results[0] > 0 {
		fmt.Printf("\npiggybacking multiplier: %.2fx (paper: >2x with a 5-minute delay)\n",
			float64(results[1])/float64(results[0]))
	}
}
