// Quickstart: simulate the SPIFFI paper's base video-on-demand system —
// 4 nodes, 16 disks, 64 videos, 512 KB stripes — at 200 terminals, and
// print whether it delivered glitch-free video along with the headline
// utilization numbers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"spiffi"
)

func main() {
	// The paper's §7 base configuration. Everything about the system —
	// disks, CPUs, network, video encoding, algorithms — is in Config
	// and can be overridden field by field.
	cfg := spiffi.DefaultConfig(200)

	// Shorten the run so the example finishes in about a second: ten
	// minute videos, a two-minute measured window. (The defaults
	// simulate one-hour movies like the paper.)
	cfg.Video.Length = 10 * spiffi.Minute
	cfg.MeasureTime = 2 * spiffi.Minute
	cfg.StartWindow = 30 * spiffi.Second

	m, err := spiffi.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("terminals:          %d\n", m.Terminals)
	fmt.Printf("glitch-free:        %v (glitches=%d)\n", m.GlitchFree(), m.Glitches)
	fmt.Printf("disk utilization:   %.1f%% avg, %.1f%% max\n", m.DiskUtilAvg*100, m.DiskUtilMax*100)
	fmt.Printf("cpu utilization:    %.1f%% avg\n", m.CPUUtilAvg*100)
	fmt.Printf("peak net bandwidth: %.1f MB/s\n", m.PeakNetBandwidth/1e6)
	fmt.Printf("buffer hit rate:    %.1f%%\n", m.Pool.HitFraction()*100)
	fmt.Printf("blocks served:      %d\n", m.BlocksServed)

	// The paper's primary metric: how many terminals can this hardware
	// support with zero glitches? (Coarse 20-terminal resolution keeps
	// the example fast; spiffi-maxterm searches at 5.)
	res, err := spiffi.FindMaxTerminals(cfg, spiffi.SearchOptions{Step: 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmax glitch-free terminals: %d (found in %d runs)\n",
		res.MaxTerminals, res.Runs)
}
