// Scaleup: a miniature of the paper's Table 2 — double the disks (and
// videos and server memory) and see whether the supported terminal count
// doubles too. The paper's key scalability claim is that the real-time
// disk scheduler scales nearly linearly while elevator falls behind
// unless terminals are given more memory.
//
//	go run ./examples/scaleup
package main

import (
	"fmt"
	"log"

	"spiffi"
)

func main() {
	configs := []struct {
		name  string
		sched spiffi.SchedConfig
		mem   int64 // base server memory, MB
	}{
		{"elevator / 128MB", spiffi.SchedConfig{Kind: spiffi.SchedElevator}, 128},
		{"real-time / 512MB", spiffi.RealTimeSched(3, 4*spiffi.Second), 512},
	}

	fmt.Println("configuration        16 disks   32 disks   scaleup")
	for _, c := range configs {
		var maxes []int
		for _, factor := range []int{1, 2} {
			cfg := spiffi.DefaultConfig(1)
			cfg.DisksPerNode = 4 * factor // 4 CPUs regardless of disks (§7.6)
			cfg.ServerMemBytes = c.mem * int64(factor) * spiffi.MB
			cfg.Sched = c.sched
			cfg.Replacement = spiffi.ReplaceLovePrefetch
			if c.sched.Kind == spiffi.SchedRealTime {
				cfg.Prefetch = spiffi.PrefetchConfig{
					Mode:       spiffi.PrefetchDelayed,
					MaxAdvance: 8 * spiffi.Second,
				}
			}
			cfg.Video.Length = 8 * spiffi.Minute
			cfg.MeasureTime = 90 * spiffi.Second
			cfg.StartWindow = 30 * spiffi.Second

			res, err := spiffi.FindMaxTerminals(cfg, spiffi.SearchOptions{Step: 20})
			if err != nil {
				log.Fatal(err)
			}
			maxes = append(maxes, res.MaxTerminals)
		}
		scale := float64(maxes[1]) / (2 * float64(maxes[0]))
		fmt.Printf("%-20s %-10d %-10d %.2f\n", c.name, maxes[0], maxes[1], scale)
	}
	fmt.Println("\n(scaleup = terminals at 2x disks / twice the base terminals; 1.00 is linear)")
}
