// Memory: a miniature of the paper's Figures 11 and 12 — how little
// server memory can the video server run on? Compares global LRU against
// the paper's love-prefetch page replacement (elevator scheduling), and
// love prefetch with delayed prefetching under real-time scheduling.
//
// Expected shape: with love prefetch (and, under real-time scheduling,
// delayed prefetching) the server keeps its capacity with far less
// memory than global LRU needs — the paper's argument for buying disks,
// not RAM.
//
//	go run ./examples/memory
package main

import (
	"fmt"
	"log"

	"spiffi"
)

func search(cfg spiffi.Config) int {
	cfg.Video.Length = 8 * spiffi.Minute
	cfg.MeasureTime = 90 * spiffi.Second
	cfg.StartWindow = 30 * spiffi.Second
	res, err := spiffi.FindMaxTerminals(cfg, spiffi.SearchOptions{Step: 20})
	if err != nil {
		log.Fatal(err)
	}
	return res.MaxTerminals
}

func main() {
	memories := []int64{128, 512, 2048}

	fmt.Println("-- elevator scheduling (Figure 11) --")
	fmt.Println("server MB   global-lru   love-prefetch")
	for _, mb := range memories {
		lru := spiffi.DefaultConfig(1)
		lru.ServerMemBytes = mb * spiffi.MB
		love := lru
		love.Replacement = spiffi.ReplaceLovePrefetch
		fmt.Printf("%-11d %-12d %d\n", mb, search(lru), search(love))
	}

	fmt.Println("\n-- real-time scheduling (Figure 12) --")
	fmt.Println("server MB   love-prefetch   love+delayed(8s)")
	for _, mb := range memories {
		love := spiffi.DefaultConfig(1)
		love.ServerMemBytes = mb * spiffi.MB
		love.Sched = spiffi.RealTimeSched(3, 4*spiffi.Second)
		love.Replacement = spiffi.ReplaceLovePrefetch
		delayed := love
		delayed.Prefetch = spiffi.PrefetchConfig{
			Mode:       spiffi.PrefetchDelayed,
			MaxAdvance: 8 * spiffi.Second,
		}
		fmt.Printf("%-11d %-15d %d\n", mb, search(love), search(delayed))
	}
}
