// Command tracing demonstrates the observability layer end to end on a
// Figure-10-style workload: the paper's 16-disk base system under
// elevator disk scheduling with 512 KB stripes, shortened to bench
// scale so the whole demo runs in seconds.
//
// It runs one traced simulation, prints the plain-text trace summary,
// and writes two files to the working directory:
//
//	spiffi-trace.jsonl - one JSON object per event (jq/awk-friendly)
//	spiffi-trace.json  - Chrome trace-event JSON; open at
//	                     https://ui.perfetto.dev or chrome://tracing
//
// The Chrome file is re-parsed before the program exits, so `make
// trace-demo` doubles as a format regression check. The event schema
// and both formats are documented in OBSERVABILITY.md.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"spiffi"
)

func main() {
	cfg := spiffi.DefaultConfig(120)
	cfg.Video.Length = 6 * spiffi.Minute
	cfg.MeasureTime = 45 * spiffi.Second
	cfg.StartWindow = 20 * spiffi.Second
	cfg.StripeBytes = 512 * spiffi.KB
	cfg.Sched = spiffi.SchedConfig{Kind: spiffi.SchedElevator}
	cfg.Trace = spiffi.TraceOptions{Enabled: true}

	m, err := spiffi.Run(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Print(m.String())
	if m.Trace == nil {
		fail(fmt.Errorf("tracing was enabled but no trace came back"))
	}

	fmt.Println("\n--- trace summary ---")
	if err := spiffi.ExportTrace(os.Stdout, m.Trace, "summary"); err != nil {
		fail(err)
	}

	write := func(path, format string) {
		f, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		if err := spiffi.ExportTrace(f, m.Trace, format); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%s)\n", path, format)
	}
	write("spiffi-trace.jsonl", "jsonl")
	write("spiffi-trace.json", "chrome")

	// Regression check: the Chrome export must be valid JSON with a
	// traceEvents array, or Perfetto would refuse the file.
	blob, err := os.ReadFile("spiffi-trace.json")
	if err != nil {
		fail(err)
	}
	var parsed struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &parsed); err != nil {
		fail(fmt.Errorf("chrome trace does not parse: %w", err))
	}
	if len(parsed.TraceEvents) == 0 {
		fail(fmt.Errorf("chrome trace parsed but holds no events"))
	}
	fmt.Printf("chrome trace OK: %d trace events; open spiffi-trace.json at https://ui.perfetto.dev\n",
		len(parsed.TraceEvents))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracing example:", err)
	os.Exit(1)
}
