// Pause: the paper's §8.1/Figure 19 result — letting every subscriber
// pause each movie (on average twice, for minutes at a time) costs the
// server essentially nothing, because a paused terminal simply stops
// consuming and its buffer refills for free.
//
//	go run ./examples/pause
package main

import (
	"fmt"
	"log"

	"spiffi"
)

func main() {
	base := spiffi.DefaultConfig(1)
	base.Replacement = spiffi.ReplaceLovePrefetch
	base.ServerMemBytes = 512 * spiffi.MB
	base.Video.Length = 8 * spiffi.Minute
	base.MeasureTime = 90 * spiffi.Second
	base.StartWindow = 30 * spiffi.Second

	paused := base
	paused.Pause = &spiffi.PauseConfig{
		MeanPauses: 2,
		// Scaled to the example's 8-minute videos the way the paper's
		// 2-minute pauses relate to its 1-hour movies.
		MeanDuration: 16 * spiffi.Second,
	}

	for _, c := range []struct {
		name string
		cfg  spiffi.Config
	}{{"no pauses", base}, {"with pauses", paused}} {
		res, err := spiffi.FindMaxTerminals(c.cfg, spiffi.SearchOptions{Step: 20})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s max glitch-free terminals = %d\n", c.name, res.MaxTerminals)
	}
	fmt.Println("\n(the two should be essentially equal — Figure 19)")
}
