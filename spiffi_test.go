// Tests of the public API surface.
package spiffi_test

import (
	"testing"

	"spiffi"
)

func fastConfig(terminals int) spiffi.Config {
	cfg := spiffi.DefaultConfig(terminals)
	cfg.Nodes = 2
	cfg.DisksPerNode = 2
	cfg.VideosPerDisk = 4
	cfg.ServerMemBytes = 64 * spiffi.MB
	cfg.Video.Length = 2 * spiffi.Minute
	cfg.StartWindow = 10 * spiffi.Second
	cfg.MeasureTime = 45 * spiffi.Second
	return cfg
}

func TestDefaultConfigMatchesPaperBase(t *testing.T) {
	cfg := spiffi.DefaultConfig(200)
	if cfg.Nodes != 4 || cfg.DisksPerNode != 4 {
		t.Fatal("base system is 4 CPUs x 4 disks")
	}
	if cfg.NumVideos() != 64 {
		t.Fatalf("videos = %d, want 64", cfg.NumVideos())
	}
	if cfg.StripeBytes != 512*spiffi.KB {
		t.Fatal("stripe size")
	}
	if cfg.ServerMemBytes != 4*spiffi.GB || cfg.TerminalMemBytes != 2*spiffi.MB {
		t.Fatal("memory defaults")
	}
	if cfg.Video.BitRate != 4_000_000 {
		t.Fatal("bit rate")
	}
	if cfg.ZipfZ != 1.0 {
		t.Fatal("zipf default")
	}
}

func TestPublicRun(t *testing.T) {
	m, err := spiffi.Run(fastConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	if !m.GlitchFree() {
		t.Fatalf("light load glitched: %+v", m)
	}
}

func TestPublicSearch(t *testing.T) {
	res, err := spiffi.FindMaxTerminals(fastConfig(1), spiffi.SearchOptions{Step: 16, Hi: 128})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxTerminals <= 0 {
		t.Fatal("no capacity found")
	}
}

func TestSchedConstructors(t *testing.T) {
	rt := spiffi.RealTimeSched(3, 4*spiffi.Second)
	if rt.Kind != spiffi.SchedRealTime || rt.Classes != 3 || rt.Spacing != 4*spiffi.Second {
		t.Fatalf("RealTimeSched = %+v", rt)
	}
	g := spiffi.GSSSched(2)
	if g.Kind != spiffi.SchedGSS || g.Groups != 2 {
		t.Fatalf("GSSSched = %+v", g)
	}
	if rt.String() != "real-time(3,4s)" {
		t.Fatalf("String = %q", rt.String())
	}
}

func TestGlitchCurvePublic(t *testing.T) {
	curve, err := spiffi.GlitchCurve(fastConfig(1), []int{8})
	if err != nil {
		t.Fatal(err)
	}
	if curve[8] != 0 {
		t.Fatalf("8 terminals glitched %d times", curve[8])
	}
}
