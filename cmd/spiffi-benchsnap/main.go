// Command spiffi-benchsnap emits a machine-readable performance
// snapshot of the simulator — the ROADMAP's "committed perf
// trajectory" data points (BENCH_<pr>.json at the repo root). It
// measures the two numbers the bench harness watches:
//
//   - single-run throughput: one 200-terminal, 16-disk run at bench
//     fidelity (the BenchmarkSingleRun shape), untraced and traced, in
//     simulation events per wall-clock second;
//   - worker scaling: the Figure-11 memory sweep (an embarrassingly
//     parallel 12-search workload) with 1 worker vs GOMAXPROCS workers.
//
// Usage:
//
//	go run ./cmd/spiffi-benchsnap -out BENCH_6.json [-runs 3]
//
// Numbers are wall-clock and host-dependent: snapshots are comparable
// only against snapshots from the same class of machine. The simulation
// results themselves are deterministic; only the timings move.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"spiffi"
	"spiffi/internal/experiments"
)

type singleRun struct {
	Runs           int     `json:"runs"`
	Events         uint64  `json:"sim_events_per_run"`
	WallMSPerRun   float64 `json:"wall_ms_per_run"`
	EventsPerSec   float64 `json:"sim_events_per_sec"`
	TraceEventsRun uint64  `json:"trace_events_per_run,omitempty"`
}

type workerScaling struct {
	Sweep     string  `json:"sweep"`
	Workers1  float64 `json:"workers_1_wall_ms"`
	WorkersN  int     `json:"workers_n"`
	WorkersNT float64 `json:"workers_n_wall_ms"`
	Speedup   float64 `json:"speedup"`
}

type snapshot struct {
	Schema        int           `json:"schema"`
	Date          string        `json:"date"`
	GoVersion     string        `json:"go_version"`
	GOOS          string        `json:"goos"`
	GOARCH        string        `json:"goarch"`
	GOMAXPROCS    int           `json:"gomaxprocs"`
	SingleRun     singleRun     `json:"single_run"`
	SingleTraced  singleRun     `json:"single_run_traced"`
	WorkerScaling workerScaling `json:"worker_scaling"`
}

func benchCfg(traced bool) spiffi.Config {
	cfg := spiffi.DefaultConfig(200)
	cfg.Video.Length = 6 * spiffi.Minute
	cfg.MeasureTime = 45 * spiffi.Second
	cfg.StartWindow = 20 * spiffi.Second
	if traced {
		cfg.Trace = spiffi.TraceOptions{Enabled: true}
	}
	return cfg
}

func measureSingle(runs int, traced bool) (singleRun, error) {
	var out singleRun
	out.Runs = runs
	var events, traceEvents uint64
	start := time.Now()
	for i := 0; i < runs; i++ {
		m, err := spiffi.Run(benchCfg(traced))
		if err != nil {
			return out, err
		}
		events += m.Events
		if m.Trace != nil {
			traceEvents += m.Trace.Total
		}
	}
	elapsed := time.Since(start)
	out.Events = events / uint64(runs)
	out.WallMSPerRun = float64(elapsed.Milliseconds()) / float64(runs)
	out.EventsPerSec = float64(events) / elapsed.Seconds()
	out.TraceEventsRun = traceEvents / uint64(runs)
	return out, nil
}

func measureSweep(workers int) (float64, error) {
	f := experiments.Bench()
	f.Workers = workers
	start := time.Now()
	if _, err := experiments.Run("fig11", f); err != nil {
		return 0, err
	}
	return float64(time.Since(start).Milliseconds()), nil
}

func main() {
	out := flag.String("out", "BENCH_6.json", "output path ('-' = stdout)")
	runs := flag.Int("runs", 3, "single-run iterations to average over")
	flag.Parse()

	snap := snapshot{
		Schema:     1,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	var err error
	if snap.SingleRun, err = measureSingle(*runs, false); err != nil {
		fail(err)
	}
	if snap.SingleTraced, err = measureSingle(*runs, true); err != nil {
		fail(err)
	}
	// Worker scaling: 1 worker first (the cold libraries warm up on the
	// serial pass, biasing, if anything, against the parallel speedup).
	if snap.WorkerScaling.Workers1, err = measureSweep(1); err != nil {
		fail(err)
	}
	snap.WorkerScaling.Sweep = "fig11/bench"
	snap.WorkerScaling.WorkersN = runtime.GOMAXPROCS(0)
	if snap.WorkerScaling.WorkersNT, err = measureSweep(0); err != nil {
		fail(err)
	}
	if snap.WorkerScaling.WorkersNT > 0 {
		snap.WorkerScaling.Speedup = snap.WorkerScaling.Workers1 / snap.WorkerScaling.WorkersNT
	}

	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s: %.0f sim-events/s untraced, %.0f traced, %dx-worker sweep speedup %.2f\n",
		*out, snap.SingleRun.EventsPerSec, snap.SingleTraced.EventsPerSec,
		snap.WorkerScaling.WorkersN, snap.WorkerScaling.Speedup)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "spiffi-benchsnap:", err)
	os.Exit(1)
}
