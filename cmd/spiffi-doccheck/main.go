// Command spiffi-doccheck keeps the documentation honest. It walks the
// repo's root-level markdown files and fails on two kinds of drift:
//
//   - broken intra-repo links: a [text](target) whose target — resolved
//     relative to the file, with any #fragment stripped — does not exist
//     on disk. External links (http/https/mailto) and pure-anchor links
//     (#section) are skipped; fragments are not verified.
//
//   - undocumented flags: every flag the simulator CLI registers
//     (internal/cli.Register, shared by all cmd/ binaries) must appear
//     in README.md as `-name`, so `-h` output and the README flag
//     reference cannot drift apart.
//
// Run it via `make doc-check` (part of `make verify`). Exit status 1
// lists every finding; 0 means the docs match the tree and the CLI.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"spiffi/internal/cli"
)

// linkRE matches inline markdown links [text](target). Reference-style
// links and autolinks are rare in this repo and not checked.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()

	var problems []string

	mds, err := filepath.Glob(filepath.Join(*root, "*.md"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, md := range mds {
		data, err := os.ReadFile(md)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, target := range links(string(data)) {
			p := filepath.Join(filepath.Dir(md), filepath.FromSlash(target))
			if _, err := os.Stat(p); err != nil {
				problems = append(problems,
					fmt.Sprintf("%s: broken link %q (no such file %s)", filepath.Base(md), target, p))
			}
		}
	}

	readme, err := os.ReadFile(filepath.Join(*root, "README.md"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, name := range flagNames() {
		if !strings.Contains(string(readme), "-"+name) {
			problems = append(problems,
				fmt.Sprintf("README.md: flag -%s (in every binary's -h output) is undocumented", name))
		}
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Printf("doc-check: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Printf("doc-check: %d markdown files, %d CLI flags, all clean\n", len(mds), len(flagNames()))
}

// links extracts the intra-repo link targets from a markdown document:
// everything but external schemes and pure-anchor links, with any
// #fragment stripped.
func links(doc string) []string {
	var out []string
	for _, m := range linkRE.FindAllStringSubmatch(doc, -1) {
		target := m[1]
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
		}
		if target == "" {
			continue // pure anchor: [text](#section)
		}
		if u, err := url.Parse(target); err == nil && u.Scheme != "" {
			continue // http, https, mailto, ...
		}
		out = append(out, target)
	}
	return out
}

// flagNames returns every flag name the shared CLI registers, in
// registration-independent sorted order.
func flagNames() []string {
	fs := flag.NewFlagSet("doccheck", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	cli.Register(fs)
	var names []string
	fs.VisitAll(func(f *flag.Flag) { names = append(names, f.Name) })
	return names
}
