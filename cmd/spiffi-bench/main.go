// Command spiffi-bench regenerates the SPIFFI paper's tables and
// figures. Each experiment id corresponds to one published plot or
// table (see DESIGN.md's per-experiment index).
//
//	spiffi-bench -exp fig10 -fidelity quick   # one experiment
//	spiffi-bench -exp all -fidelity quick     # the whole evaluation
//	spiffi-bench -list                        # available ids
//
// Fidelity levels: bench (seconds), quick (a minute or two per
// experiment, the default), full (the paper's own scale; slow).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"spiffi/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	fidelity := flag.String("fidelity", "quick", "bench|quick|full")
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "text", "text|csv|json")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS); results are identical for any value")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	f, ok := experiments.ByName(*fidelity)
	if !ok {
		fmt.Fprintf(os.Stderr, "spiffi-bench: unknown fidelity %q\n", *fidelity)
		os.Exit(2)
	}
	f.Workers = *workers

	ids := experiments.IDs()
	if *exp != "all" {
		ids = []string{*exp}
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			continue
		}
		start := time.Now()
		results, err := experiments.Run(id, f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spiffi-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		for _, r := range results {
			seen[r.ID] = true
			switch *format {
			case "csv":
				fmt.Printf("# %s: %s\n", r.ID, r.Title)
				if err := r.WriteCSV(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, "spiffi-bench:", err)
					os.Exit(1)
				}
				fmt.Println()
			case "json":
				if err := r.WriteJSON(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, "spiffi-bench:", err)
					os.Exit(1)
				}
			default:
				fmt.Println(r.Format())
			}
		}
		if *format == "text" {
			fmt.Printf("(%s fidelity, wall %v)\n\n", f.Name, time.Since(start).Round(time.Second))
		}
	}
}
