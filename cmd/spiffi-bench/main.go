// Command spiffi-bench regenerates the SPIFFI paper's tables and
// figures. Each experiment id corresponds to one published plot or
// table (see DESIGN.md's per-experiment index).
//
//	spiffi-bench -exp fig10 -fidelity quick   # one experiment
//	spiffi-bench -exp all -fidelity quick     # the whole evaluation
//	spiffi-bench -list                        # available ids
//
// Fidelity levels: bench (seconds), quick (a minute or two per
// experiment, the default), full (the paper's own scale; slow).
//
// Observability (OBSERVABILITY.md): -trace records structured events in
// every simulation and files one export per consumed at-max run;
// -pprof serves net/http/pprof for live CPU/heap profiling of the
// harness itself; -runtime-trace captures a Go execution trace.
//
//	spiffi-bench -exp fig09 -fidelity bench -trace chrome -trace-out /tmp/traces
//	spiffi-bench -exp fig10 -pprof localhost:6060 -runtime-trace bench.trace
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"sync"
	"time"

	rtrace "runtime/trace"

	"spiffi/internal/experiments"
	"spiffi/internal/trace"
)

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	fidelity := flag.String("fidelity", "quick", "bench|quick|full")
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "text", "text|csv|json")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS); results are identical for any value")
	traceFmt := flag.String("trace", "", "record per-run structured events and file jsonl|chrome|summary exports (empty = off)")
	traceOut := flag.String("trace-out", ".", "directory for per-run trace files (with -trace)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	runtimeTrace := flag.String("runtime-trace", "", "write a Go runtime execution trace to this file")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	f, ok := experiments.ByName(*fidelity)
	if !ok {
		fmt.Fprintf(os.Stderr, "spiffi-bench: unknown fidelity %q\n", *fidelity)
		os.Exit(2)
	}
	f.Workers = *workers

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "spiffi-bench: pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof serving on http://%s/debug/pprof/\n", *pprofAddr)
	}
	if *runtimeTrace != "" {
		out, err := os.Create(*runtimeTrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spiffi-bench: runtime trace:", err)
			os.Exit(1)
		}
		if err := rtrace.Start(out); err != nil {
			fmt.Fprintln(os.Stderr, "spiffi-bench: runtime trace:", err)
			os.Exit(1)
		}
		defer func() {
			rtrace.Stop()
			out.Close()
			fmt.Fprintf(os.Stderr, "runtime trace written to %s (view: go tool trace %s)\n",
				*runtimeTrace, *runtimeTrace)
		}()
	}

	// currentID tells the concurrency-safe sink which experiment a trace
	// belongs to; experiments run one at a time, so a plain string the
	// loop below updates between Run calls suffices.
	var currentID string
	if *traceFmt != "" {
		ext := map[string]string{"jsonl": ".jsonl", "chrome": ".json", "summary": ".txt"}[*traceFmt]
		if ext == "" {
			fmt.Fprintf(os.Stderr, "spiffi-bench: unknown trace format %q\n", *traceFmt)
			os.Exit(2)
		}
		f.Trace = trace.Options{Enabled: true}
		var mu sync.Mutex
		used := map[string]int{}
		f.TraceSink = func(label string, d *trace.Data) {
			mu.Lock()
			// Labels repeat when sweep points land on the same maximum;
			// number duplicates so every consumed run keeps its file.
			name := fmt.Sprintf("%s-%s", currentID, label)
			used[name]++
			if n := used[name]; n > 1 {
				name = fmt.Sprintf("%s-%d", name, n)
			}
			mu.Unlock()
			path := filepath.Join(*traceOut, name+ext)
			out, err := os.Create(path)
			if err == nil {
				err = trace.Export(out, d, *traceFmt)
				if cerr := out.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "spiffi-bench: trace export:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "trace written to %s\n", path)
		}
	}

	ids := experiments.IDs()
	if *exp != "all" {
		ids = []string{*exp}
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			continue
		}
		currentID = id
		start := time.Now()
		results, err := experiments.Run(id, f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spiffi-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		for _, r := range results {
			seen[r.ID] = true
			switch *format {
			case "csv":
				fmt.Printf("# %s: %s\n", r.ID, r.Title)
				if err := r.WriteCSV(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, "spiffi-bench:", err)
					os.Exit(1)
				}
				fmt.Println()
			case "json":
				if err := r.WriteJSON(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, "spiffi-bench:", err)
					os.Exit(1)
				}
			default:
				fmt.Println(r.Format())
			}
		}
		if *format == "text" {
			fmt.Printf("(%s fidelity, wall %v)\n\n", f.Name, time.Since(start).Round(time.Second))
		}
	}
}
