// Command spiffi-maxterm searches for the maximum number of terminals a
// configuration supports with zero glitches — the paper's primary
// performance metric (§7.1).
//
// Example — reproduce the base system's capacity:
//
//	spiffi-maxterm -step 5 -seeds 3
//
// The -confidence flag applies the paper's stopping rule (90% confident
// the estimate is within 5%), adding replications until it holds.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"spiffi/internal/cli"
	"spiffi/internal/core"
)

func main() {
	fs := flag.NewFlagSet("spiffi-maxterm", flag.ExitOnError)
	flags := cli.Register(fs)
	step := fs.Int("step", 5, "search resolution in terminals")
	lo := fs.Int("lo", 0, "search lower bound (0 = auto)")
	hi := fs.Int("hi", 0, "search upper bound (0 = auto)")
	seeds := fs.Int("seeds", 1, "replications per evaluated count")
	confidence := fs.Bool("confidence", false, "apply the §7.1 stopping rule (90%/±5%)")
	verbose := fs.Bool("v", false, "trace every evaluated run")
	fs.Parse(os.Args[1:])

	cfg, err := flags.Config()
	if err != nil {
		fmt.Fprintln(os.Stderr, "spiffi-maxterm:", err)
		os.Exit(2)
	}
	opt := core.SearchOptions{Lo: *lo, Hi: *hi, Step: *step}
	for s := 0; s < *seeds; s++ {
		opt.Seeds = append(opt.Seeds, cfg.Seed+uint64(s)*101)
	}
	if *verbose {
		opt.Trace = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	runner := core.NewRunner(*flags.Workers)
	start := time.Now()
	if *confidence {
		iv, maxima, err := runner.ConfidentMax(cfg, opt, 0.90, 0.05, 3, 10)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spiffi-maxterm:", err)
			os.Exit(1)
		}
		fmt.Printf("max terminals = %.0f ± %.1f (90%% confidence, seeds=%v)\n",
			iv.Mean, iv.HalfWidth, maxima)
		fmt.Printf("workers=%d wall=%v\n", runner.Workers(), cli.FormatDuration(time.Since(start)))
		return
	}

	res, err := runner.FindMaxTerminals(cfg, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spiffi-maxterm:", err)
		os.Exit(1)
	}
	fmt.Printf("max terminals = %d (step %d, %d runs consumed, %d executed, workers %d, wall %v)\n",
		res.MaxTerminals, *step, res.Runs, res.TotalRuns, runner.Workers(),
		cli.FormatDuration(time.Since(start)))
	if len(res.AtMax) > 0 {
		m := res.AtMax[0]
		fmt.Printf("at max: disk util avg %.1f%%, cpu util avg %.1f%%, peak net %.1f MB/s\n",
			m.DiskUtilAvg*100, m.CPUUtilAvg*100, m.PeakNetBandwidth/1e6)
		// With -trace, export the first passing run at the maximum — the
		// same run whose utilization figures print above. (The confidence
		// path above runs many searches and exports nothing.)
		if dest, err := flags.ExportTrace(m.Trace); err != nil {
			fmt.Fprintln(os.Stderr, "spiffi-maxterm: trace export:", err)
			os.Exit(1)
		} else if dest != "" && dest != "stdout" {
			fmt.Printf("trace of the at-max run written to %s\n", dest)
		}
	}
}
