// Command spiffi-sim runs one SPIFFI video-on-demand simulation and
// prints a full metrics report.
//
// Example — the paper's 16-disk base system at 200 terminals:
//
//	spiffi-sim -terminals 200 -measure 300
//
// Example — real-time scheduling with delayed prefetching at 512 MB:
//
//	spiffi-sim -terminals 200 -sched real-time -replace love-prefetch \
//	    -prefetch delayed -servermem 512
//
// Example — trace an overloaded run and explain its first glitch:
//
//	spiffi-sim -terminals 280 -measure 120 -trace summary -postmortem 15
//
// See OBSERVABILITY.md for the event schema and export formats.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"spiffi/internal/cli"
	"spiffi/internal/core"
	"spiffi/internal/trace"
)

func main() {
	fs := flag.NewFlagSet("spiffi-sim", flag.ExitOnError)
	flags := cli.Register(fs)
	verbose := fs.Bool("v", false, "verbose output")
	postmortem := fs.Int("postmortem", 0,
		"with -trace: print the last N trace events before the first retained glitch (0 = off)")
	fs.Parse(os.Args[1:])

	cfg, err := flags.Config()
	if err != nil {
		fmt.Fprintln(os.Stderr, "spiffi-sim:", err)
		os.Exit(2)
	}
	start := time.Now()
	m, err := core.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spiffi-sim:", err)
		os.Exit(1)
	}
	fmt.Print(m.String())
	if dest, err := flags.ExportTrace(m.Trace); err != nil {
		fmt.Fprintln(os.Stderr, "spiffi-sim: trace export:", err)
		os.Exit(1)
	} else if dest != "" && dest != "stdout" {
		fmt.Printf("trace written to %s\n", dest)
	}
	if *postmortem > 0 && m.Trace != nil {
		if gs := m.Trace.Glitches(); len(gs) > 0 {
			if err := trace.WritePostMortem(os.Stdout, m.Trace, gs[0], *postmortem); err != nil {
				fmt.Fprintln(os.Stderr, "spiffi-sim: post-mortem:", err)
				os.Exit(1)
			}
		}
	}
	if *verbose {
		fmt.Printf("pool: refs=%d hits=%d inflight=%d misses=%d evictions=%d allocWaits=%d\n",
			m.Pool.DemandRefs, m.Pool.DemandHits, m.Pool.InFlightHits,
			m.Pool.Misses, m.Pool.Evictions, m.Pool.AllocWaits)
		fmt.Printf("nodes: requests=%d prefetches=%d deadlineUps=%d\n",
			m.Nodes.Requests, m.Nodes.Prefetches, m.Nodes.DeadlineUps)
		fmt.Printf("events=%d wall=%v\n", m.Events, cli.FormatDuration(time.Since(start)))
	}
	if !m.GlitchFree() {
		os.Exit(3) // scripting convenience: non-zero when the run glitched
	}
}
