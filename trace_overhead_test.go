// The observability layer's two contracts with the simulator (see
// OBSERVABILITY.md): enabling tracing never changes what the simulation
// computes, and leaving it disabled costs less than 2% of a run.
//
// The overhead bound is checked analytically rather than by wall-clock
// A/B (which flakes on loaded CI machines): with tracing disabled every
// instrumentation point is exactly one nil-receiver method call, so the
// disabled-path cost of a run is (emit count) x (nil-emit cost). The
// emit count comes from a traced run of the same configuration, the
// nil-emit cost from a measured loop, and their product must stay under
// 2% of the untraced run's wall time.
package spiffi_test

import (
	"reflect"
	"testing"
	"time"

	"spiffi"
	"spiffi/internal/trace"
)

// nilRec lives at package scope so the compiler cannot specialize the
// measured loop on a provably nil receiver.
var nilRec *trace.Recorder

func TestTracingNeutralityAndOverhead(t *testing.T) {
	cfg := fastConfig(12)

	// Traced run first: it also warms the shared MPEG library cache, so
	// the untraced timing below measures simulation, not generation.
	cfg.Trace = spiffi.TraceOptions{Enabled: true}
	traced, err := spiffi.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if traced.Trace == nil {
		t.Fatal("tracing enabled but Metrics.Trace is nil")
	}
	if traced.Trace.Total == 0 {
		t.Fatal("tracing enabled but no events were recorded")
	}

	cfg.Trace = spiffi.TraceOptions{}
	start := time.Now()
	plain, err := spiffi.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if plain.Trace != nil {
		t.Fatal("tracing disabled but Metrics.Trace is non-nil")
	}

	// Neutrality: the recorder schedules no events and draws no random
	// numbers, so every other metric must match exactly.
	emits := traced.Trace.Total
	traced.Trace = nil
	if !reflect.DeepEqual(traced, plain) {
		t.Errorf("tracing perturbed the simulation:\ntraced:   %+v\nuntraced: %+v", traced, plain)
	}

	// Overhead: measure the nil-emit cost and scale by the emit count.
	const iters = 1 << 22
	lap := time.Now()
	for i := 0; i < iters; i++ {
		nilRec.DiskDispatch(1, 2, 3, false, 4)
	}
	perEmit := float64(time.Since(lap).Nanoseconds()) / iters
	overheadNs := float64(emits) * perEmit
	budgetNs := 0.02 * float64(elapsed.Nanoseconds())
	t.Logf("disabled-path cost: %d emits x %.2f ns = %.0f µs against a %.0f µs budget (2%% of %v)",
		emits, perEmit, overheadNs/1e3, budgetNs/1e3, elapsed)
	if overheadNs >= budgetNs {
		t.Errorf("disabled tracing costs %.0f µs, over the 2%% budget of %.0f µs",
			overheadNs/1e3, budgetNs/1e3)
	}
}
