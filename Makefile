# Tier-1 verification for the SPIFFI simulator. `make verify` is what CI
# (and pre-commit discipline) runs: build, vet, the full test suite, and
# a race-detector pass in short mode. The simulation-heavy experiment
# tests skip themselves under -short, but the parallel-runner coverage
# (core search parity and the fig09 worker-determinism check) does not,
# so the race pass always exercises multi-worker execution.

GO ?= go

.PHONY: all build vet test race determinism verify bench bench-workers

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -timeout 30m ./...

race:
	$(GO) test -race -short ./...

# The full worker-determinism suite: every registered experiment must
# produce byte-identical results with Workers=1 and Workers=8.
determinism:
	$(GO) test -run Determinism -timeout 30m -v ./...

verify: build vet test race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# 1-worker vs GOMAXPROCS-worker quick-fidelity sweep (see bench_test.go).
bench-workers:
	$(GO) test -bench QuickWorkers -benchtime 1x -timeout 60m -run '^$$' .
