# Tier-1 verification for the SPIFFI simulator. `make verify` is what CI
# (and pre-commit discipline) runs: build, vet, the full test suite, and
# a race-detector pass in short mode (the simulation-heavy experiment
# tests skip themselves under -short; everything concurrent still runs).

GO ?= go

.PHONY: all build vet test race verify bench

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

verify: build vet test race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...
