# Tier-1 verification for the SPIFFI simulator. `make verify` is what CI
# (and pre-commit discipline) runs: build, vet, the full test suite, and
# a race-detector pass in short mode. The simulation-heavy experiment
# tests skip themselves under -short, but the parallel-runner coverage
# (core search parity and the fig09 worker-determinism check) does not,
# so the race pass always exercises multi-worker execution.

GO ?= go

.PHONY: all build vet test race determinism verify bench bench-workers bench-snapshot trace-guard trace-demo staticcheck govulncheck chaos chaos-soak doc-check fuzz-workload fuzz-seed

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -timeout 30m ./...

race:
	$(GO) test -race -short ./...

# The full worker-determinism suite: every registered experiment must
# produce byte-identical results with Workers=1 and Workers=8.
determinism:
	$(GO) test -run Determinism -timeout 30m -v ./...

# Observability guards (OBSERVABILITY.md): disabled tracing must perturb
# nothing and stay under 2% overhead, and the trace package's exporters
# must hold their formats. Both run in short mode, so `verify` exercises
# them twice (here and in the race pass); the explicit target keeps the
# contract visible and quick to iterate on.
trace-guard:
	$(GO) test -short -run TracingNeutralityAndOverhead .
	$(GO) test -short ./internal/trace/

# Optional linters: run when installed, skip (without failing) when the
# environment does not have them — this repo vendors nothing and `make
# verify` must work with only the Go toolchain present.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping"; \
	fi

# Chaos soak (FAULTS.md): seeded randomized fault schedules — node
# crashes, disk fail-stops and slowdowns, network loss — under the race
# detector with run-end invariant checks (admission slot conservation,
# impacted = recovered + lost, protected streams never shed-glitched,
# same-seed metric equality). The -short budget runs one seed so
# `verify` stays quick; drop it (CHAOS_SOAK_FLAGS=) to soak every seed.
CHAOS_SOAK_FLAGS ?= -short
chaos-soak:
	$(GO) test -race $(CHAOS_SOAK_FLAGS) -run ChaosSoak -timeout 10m ./internal/core/

# Documentation drift: broken intra-repo markdown links and CLI flags
# missing from README.md (cmd/spiffi-doccheck).
doc-check:
	$(GO) run ./cmd/spiffi-doccheck

# Workload-schedule fuzzing (WORKLOADS.md). fuzz-seed replays the
# checked-in corpus plus the f.Add seeds as plain unit tests — cheap and
# deterministic, so it rides `verify`. fuzz-workload explores new inputs
# for a bounded burst; run it when touching the spec parser or compiler.
fuzz-seed:
	$(GO) test -run FuzzWorkloadSchedule ./internal/workload/

fuzz-workload:
	$(GO) test -fuzz FuzzWorkloadSchedule -fuzztime 30s ./internal/workload/

verify: build vet staticcheck govulncheck test race trace-guard chaos-soak fuzz-seed doc-check

# Seeded chaos suite under the race detector: fault injection, overload
# control, admission, retry and rebuild tests (FAULTS.md, OVERLOAD.md).
# Deterministic seeds make every failure reproducible.
chaos:
	$(GO) test -race -run 'Fault|FailStop|Retry|Nack|Admission|Estimator|Rebuild|Overload|Shed|Degraded|Crash|Patience' \
		./internal/core/ ./internal/terminal/ ./internal/admission/ ./internal/overload/ ./internal/faults/ ./internal/server/ ./internal/disk/

# End-to-end observability demo: run a traced Figure-10-style workload,
# write JSONL + Chrome trace files, and validate the Chrome JSON parses
# (the example program fails if it does not).
trace-demo:
	$(GO) run ./examples/tracing

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# 1-worker vs GOMAXPROCS-worker quick-fidelity sweep (see bench_test.go).
bench-workers:
	$(GO) test -bench QuickWorkers -benchtime 1x -timeout 60m -run '^$$' .

# Committed perf trajectory (ROADMAP): write the BENCH_<pr>.json
# snapshot — single-run throughput (untraced + traced) and the fig11
# worker-scaling speedup. Set BENCH_OUT to name the data point.
BENCH_OUT ?= BENCH_9.json
bench-snapshot:
	$(GO) run ./cmd/spiffi-benchsnap -out $(BENCH_OUT)
